//! The follower node: continuous ingest plus read-only serving.
//!
//! [`Replica::start`] connects to a leader, learns the shard count from
//! the `Welcome`, opens (or recovers) a local [`FollowerDb`] with the
//! same layout, and starts an ingest thread that applies the shipped WAL
//! stream continuously. The replica can additionally serve read-only SQL
//! (`SELECT` only) over its own listener — stale-bounded reads offloaded
//! from the leader, answered from continuously maintained views.
//!
//! A dropped leader connection ends the ingest thread; the follower's
//! durable state is a legal prefix of the leader's history (that is the
//! [`chronicle_durability::WalIngest`] contract), so a fresh
//! [`Replica::start`] — or a crash and restart — resumes where it left
//! off. Corrupt shipped bytes are refused loudly, never applied.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use chronicle_db::{DurabilityOptions, FollowerDb, ShardedDb};
use chronicle_sql::{parse, Statement};
use chronicle_types::{ChronicleError, Result};

use crate::conn::Conn;
use crate::proto::{Message, Role, WireStats, PROTOCOL_VERSION};

const STOP_POLL: Duration = Duration::from_millis(50);

/// Apply-progress signal: the ingest thread bumps the generation after
/// every applied message and [`Replica::wait_applied`] sleeps on the
/// condvar instead of polling.
#[derive(Debug, Default)]
struct Progress {
    generation: Mutex<u64>,
    changed: Condvar,
}

impl Progress {
    fn bump(&self) {
        *self.generation.lock().expect("progress lock") += 1;
        self.changed.notify_all();
    }
}

fn net_err(context: &str, e: std::io::Error) -> ChronicleError {
    ChronicleError::Durability {
        detail: format!("network: {context}: {e}"),
    }
}

/// A running follower node.
#[derive(Debug)]
pub struct Replica {
    follower: Arc<Mutex<FollowerDb>>,
    stop: Arc<AtomicBool>,
    ingest: Option<JoinHandle<Result<()>>>,
    serve_threads: Vec<JoinHandle<()>>,
    serve_addr: Option<SocketAddr>,
    progress: Arc<Progress>,
}

impl Replica {
    /// Connect to the leader at `leader_addr`, open the local follower
    /// database at `path` (shard count comes from the leader), and start
    /// ingesting.
    pub fn start(
        leader_addr: &str,
        path: impl AsRef<Path>,
        opts: DurabilityOptions,
    ) -> Result<Replica> {
        let stream =
            TcpStream::connect(leader_addr).map_err(|e| net_err("connecting leader", e))?;
        let mut conn = Conn::new(stream)?;
        // The local term is unknown until the database is open (the shard
        // count comes from the leader), so the Hello announces term 0 and
        // the stale-leader check runs against the Welcome below.
        conn.send(&Message::Hello {
            role: Role::Follower,
            version: PROTOCOL_VERSION,
            term: 0,
        })?;
        let (shards, leader_term) = match conn.recv()? {
            Message::Welcome { shards, term } => (shards as usize, term),
            Message::ErrReply(detail) => {
                return Err(ChronicleError::Durability {
                    detail: format!("remote: {detail}"),
                })
            }
            other => {
                return Err(ChronicleError::Corruption {
                    detail: format!("expected Welcome, got {other:?}"),
                })
            }
        };
        let follower = FollowerDb::open_with(path, shards, opts)?;
        // Fence a stale leader: a local term above the leader's proves
        // this follower's history descends from the leader's successor.
        follower.check_leader_term(leader_term)?;
        conn.send(&Message::FetchWal {
            applied: follower.applied_lsns(),
            term: follower.term(),
        })?;
        let follower = Arc::new(Mutex::new(follower));
        let stop = Arc::new(AtomicBool::new(false));
        let progress = Arc::new(Progress::default());
        let ingest = {
            let follower = Arc::clone(&follower);
            let stop = Arc::clone(&stop);
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || ingest_loop(conn, follower, stop, progress))
        };
        Ok(Replica {
            follower,
            stop,
            ingest: Some(ingest),
            serve_threads: Vec::new(),
            serve_addr: None,
            progress,
        })
    }

    /// Shared access to the follower database (queries, stats, digests).
    pub fn follower(&self) -> Arc<Mutex<FollowerDb>> {
        Arc::clone(&self.follower)
    }

    /// Per-shard applied lsns right now.
    pub fn applied_lsns(&self) -> Vec<u64> {
        self.follower.lock().expect("follower lock").applied_lsns()
    }

    /// Worst-shard replication lag per the freshest heartbeat.
    pub fn replication_lag(&self) -> Option<u64> {
        self.follower
            .lock()
            .expect("follower lock")
            .replication_lag()
    }

    /// True while the ingest thread is alive (leader still connected).
    pub fn connected(&self) -> bool {
        self.ingest.as_ref().is_some_and(|t| !t.is_finished())
    }

    /// Block until every shard's applied lsn reaches `target`, or
    /// `timeout` elapses; returns whether the target was reached. Sleeps
    /// on the ingest thread's progress condvar — woken the moment another
    /// message is applied, no polling loop.
    pub fn wait_applied(&self, target: &[u64], timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut gen = self.progress.generation.lock().expect("progress lock");
        loop {
            // The applied check happens under the generation lock, so a
            // bump between check and wait cannot be missed.
            let applied = self.applied_lsns();
            if applied.len() == target.len() && applied.iter().zip(target).all(|(a, t)| a >= t) {
                return true;
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let seen = *gen;
            let (next, _timed_out) = self
                .progress
                .changed
                .wait_timeout_while(gen, left, |g| *g == seen)
                .expect("progress lock");
            gen = next;
        }
    }

    /// The follower's current leadership term.
    pub fn term(&self) -> u64 {
        self.follower.lock().expect("follower lock").term()
    }

    /// Stop ingest and promote the follower into a live leader database
    /// under a fresh, durably logged term (see [`FollowerDb::promote`]).
    /// The returned [`ShardedDb`] is ready to serve — wrap it in a
    /// pipeline and a [`crate::Server`] to take writes.
    pub fn promote(self) -> Result<ShardedDb> {
        self.stop()?.promote()
    }

    /// Start a read-only SQL listener at `addr` (e.g. `"127.0.0.1:0"`).
    /// Only `SELECT` is served; everything else is refused.
    pub fn serve(&mut self, addr: &str) -> Result<SocketAddr> {
        let listener = TcpListener::bind(addr).map_err(|e| net_err("binding", e))?;
        let local = listener
            .local_addr()
            .map_err(|e| net_err("local_addr", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err("set_nonblocking", e))?;
        let follower = Arc::clone(&self.follower);
        let stop = Arc::clone(&self.stop);
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_sessions = Arc::clone(&sessions);
        let accept = std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let follower = Arc::clone(&follower);
                        let stop = Arc::clone(&stop);
                        let t = std::thread::spawn(move || {
                            let _ = serve_read_only(stream, follower, stop);
                        });
                        accept_sessions.lock().expect("session list").push(t);
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            let ts = std::mem::take(&mut *accept_sessions.lock().expect("session list"));
            for t in ts {
                let _ = t.join();
            }
        });
        self.serve_threads.push(accept);
        self.serve_addr = Some(local);
        Ok(local)
    }

    /// The read-only listener's address, if serving.
    pub fn serve_addr(&self) -> Option<SocketAddr> {
        self.serve_addr
    }

    /// Stop ingest and serving, join all threads, and return the follower
    /// database (e.g. to inspect or promote it).
    pub fn stop(mut self) -> Result<FollowerDb> {
        self.stop.store(true, Ordering::Relaxed);
        let ingest_result = match self.ingest.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(ChronicleError::Internal("ingest thread panicked".into()))),
            None => Ok(()),
        };
        for t in self.serve_threads.drain(..) {
            let _ = t.join();
        }
        let follower = Arc::try_unwrap(self.follower)
            .map_err(|_| ChronicleError::Internal("follower still shared after shutdown".into()))?
            .into_inner()
            .expect("follower lock");
        ingest_result?;
        Ok(follower)
    }
}

fn ingest_loop(
    mut conn: Conn,
    follower: Arc<Mutex<FollowerDb>>,
    stop: Arc<AtomicBool>,
    progress: Arc<Progress>,
) -> Result<()> {
    loop {
        if stop.load(Ordering::Relaxed) {
            let _ = conn.send(&Message::Goodbye);
            return Ok(());
        }
        let msg = match conn.try_recv(STOP_POLL) {
            Ok(Some(m)) => m,
            Ok(None) => continue,
            // A corrupt stream must surface; a leader that merely went
            // away ends the session normally — local state is a legal
            // prefix and a restart resumes from the applied watermark.
            Err(e @ ChronicleError::Corruption { .. }) => return Err(e),
            Err(_) => return Ok(()),
        };
        // The follower lock is released before the progress bump:
        // `wait_applied` takes progress-then-follower, so holding both
        // here in the other order would deadlock.
        {
            let mut f = follower.lock().expect("follower lock");
            match msg {
                Message::SegStart {
                    shard,
                    first_lsn,
                    term,
                } => {
                    // Fence a zombie ex-leader's shipper: a stream start
                    // carrying a term below ours must never be ingested.
                    f.check_leader_term(term)?;
                    f.begin_segment(shard as usize, first_lsn)?;
                }
                Message::SegBytes {
                    shard,
                    first_lsn: _,
                    offset,
                    bytes,
                } => {
                    f.ingest(shard as usize, offset, &bytes)?;
                }
                Message::SegSeal { shard, first_lsn } => {
                    f.seal_segment(shard as usize, first_lsn)?;
                }
                Message::Heartbeat { durable } => {
                    for (shard, lsn) in durable.into_iter().enumerate() {
                        f.note_leader_durable(shard, lsn);
                    }
                }
                Message::Goodbye => return Ok(()),
                Message::Fenced { observed, current } => {
                    return Err(ChronicleError::Fenced { observed, current })
                }
                other => {
                    return Err(ChronicleError::Corruption {
                        detail: format!("unexpected shipping message {other:?}"),
                    })
                }
            }
        }
        progress.bump();
    }
}

fn serve_read_only(
    stream: TcpStream,
    follower: Arc<Mutex<FollowerDb>>,
    stop: Arc<AtomicBool>,
) -> Result<()> {
    let mut conn = Conn::new(stream)?;
    let shards = follower.lock().expect("follower lock").shard_count();
    loop {
        let msg = loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            if let Some(m) = conn.try_recv(STOP_POLL)? {
                break m;
            }
        };
        match msg {
            Message::Hello {
                role: Role::Client,
                version,
                term: _,
            } => {
                if version != PROTOCOL_VERSION {
                    conn.send(&Message::ErrReply(format!(
                        "protocol version mismatch: peer speaks v{version}, follower speaks v{PROTOCOL_VERSION}"
                    )))?;
                    return Ok(());
                }
                let term = follower.lock().expect("follower lock").term();
                conn.send(&Message::Welcome {
                    shards: shards as u32,
                    term,
                })?;
            }
            Message::Hello {
                role: Role::Follower,
                ..
            } => {
                conn.send(&Message::ErrReply(
                    "cascading replication is not supported".into(),
                ))?;
                return Ok(());
            }
            Message::Sql { sql, .. } => {
                let reply = match parse(&sql) {
                    Ok(Statement::Select { target, filters }) => {
                        match follower
                            .lock()
                            .expect("follower lock")
                            .select(&target, &filters)
                        {
                            Ok(rows) => Message::SqlOk(crate::proto::RemoteOutcome::Rows(rows)),
                            Err(e) => Message::ErrReply(e.to_string()),
                        }
                    }
                    Ok(_) => {
                        Message::ErrReply("read-only follower: only SELECT is served here".into())
                    }
                    Err(e) => Message::ErrReply(e.to_string()),
                };
                conn.send(&reply)?;
            }
            Message::StatsReq => {
                let stats = follower.lock().expect("follower lock").stats();
                conn.send(&Message::StatsReply(WireStats::from_db(&stats)))?;
            }
            Message::Goodbye => return Ok(()),
            other => {
                conn.send(&Message::ErrReply(format!("unexpected message {other:?}")))?;
                return Ok(());
            }
        }
    }
}
