//! The leader server: SQL sessions and WAL shipping over TCP.
//!
//! [`Server::start`] binds a listener and serves each connection on its
//! own thread, multiplexing every session onto one shared
//! [`ShardedPipelineHandle`] — the same concurrent front door the
//! in-process throughput experiment uses, so network clients and local
//! producers compose. Two session kinds exist, declared by the peer's
//! [`Hello`](crate::proto::Message::Hello):
//!
//! * **Client** — request/reply SQL. Statements run through
//!   [`ShardedPipelineHandle::execute`]; appends are acknowledged only
//!   after their shard's group-commit flush, so a `SqlOk` for an `APPEND`
//!   means *durable*, exactly like the local API.
//! * **Follower** — the connection becomes a one-way WAL byte stream
//!   driven by a [`Shipper`], interleaved with heartbeats carrying the
//!   leader's durable frontier.
//!
//! On start the server pins every shard's WAL retain floor at lsn 1, so
//! checkpoints stop deleting history a follower might still need. This is
//! the deliberately blunt v1 retention policy (see DESIGN.md §14);
//! per-follower floors are future work.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chronicle_db::pipeline::{Admission, ShardedPipelineHandle, WalRequest};
use chronicle_db::LatencySample;
use chronicle_types::{ChronicleError, Result};

use crate::conn::Conn;
use crate::frame::mutate;
use crate::proto::{Message, Role, WireStats, PROTOCOL_VERSION};
use crate::ship::{ShipEvent, Shipper, WalSource, DEFAULT_CHUNK};

/// How long a catching-up follower session sleeps between pumps once it
/// has shipped everything durable.
const CATCHUP_POLL: Duration = Duration::from_millis(10);

/// How long session loops wait on the socket before re-checking the stop
/// flag.
const STOP_POLL: Duration = Duration::from_millis(50);

/// Retry hint attached to an [`Message::Overloaded`] refusal — roughly
/// the time a full pipeline queue takes to drain a few entries.
const OVERLOAD_RETRY_MS: u64 = 25;

/// Server-side counters, shared across sessions; folded into the
/// [`WireStats`] a `StatsReq` returns.
#[derive(Debug, Default)]
pub(crate) struct NetCounters {
    sessions: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    shipped_bytes: AtomicU64,
    requests: AtomicU64,
    overload_rejections: AtomicU64,
    latencies: Mutex<LatencySample>,
}

impl NetCounters {
    fn record_request(&self, nanos: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latencies.lock().expect("latency lock").record(nanos);
    }

    fn fold_into(&self, stats: &mut WireStats) {
        stats.net_sessions = self.sessions.load(Ordering::Relaxed);
        stats.net_frames_in = self.frames_in.load(Ordering::Relaxed);
        stats.net_frames_out = self.frames_out.load(Ordering::Relaxed);
        stats.net_shipped_bytes = self.shipped_bytes.load(Ordering::Relaxed);
        stats.net_requests = self.requests.load(Ordering::Relaxed);
        stats.net_overload_rejections = self.overload_rejections.load(Ordering::Relaxed);
        let lat = self.latencies.lock().expect("latency lock");
        stats.net_latency_p50_nanos = lat.percentile(0.50);
        stats.net_latency_p99_nanos = lat.percentile(0.99);
    }
}

/// A running leader server. Dropping it without [`Server::stop`] leaves
/// detached session threads running until their sockets fail; call `stop`
/// for an orderly shutdown.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<NetCounters>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// the pipeline behind `handle` until [`Server::stop`].
    pub fn start(handle: ShardedPipelineHandle, addr: &str) -> Result<Server> {
        let listener = TcpListener::bind(addr).map_err(|e| ChronicleError::Durability {
            detail: format!("network: binding {addr}: {e}"),
        })?;
        let local = listener
            .local_addr()
            .map_err(|e| ChronicleError::Durability {
                detail: format!("network: local_addr: {e}"),
            })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ChronicleError::Durability {
                detail: format!("network: set_nonblocking: {e}"),
            })?;
        // Blunt v1 retention: keep all history while the server lives.
        for shard in 0..handle.shard_count() {
            handle.wal(shard, WalRequest::SetRetainFloor(1))?;
        }
        // A server's term is fixed for its lifetime: promotion happens on
        // a stopped replica, which then starts a *new* server.
        let term = handle.term()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(NetCounters::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let sessions = Arc::clone(&sessions);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            counters.sessions.fetch_add(1, Ordering::Relaxed);
                            let handle = handle.clone();
                            let stop = Arc::clone(&stop);
                            let counters = Arc::clone(&counters);
                            let t = std::thread::spawn(move || {
                                // Session errors end the session; the
                                // server keeps serving.
                                let _ = serve_session(stream, handle, term, stop, counters);
                            });
                            sessions.lock().expect("session list").push(t);
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };
        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
            sessions,
            counters,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions accepted so far.
    pub fn sessions_accepted(&self) -> u64 {
        self.counters.sessions.load(Ordering::Relaxed)
    }

    /// Stop accepting, wake every session loop, and join all threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let sessions = std::mem::take(&mut *self.sessions.lock().expect("session list"));
        for t in sessions {
            let _ = t.join();
        }
    }
}

fn serve_session(
    stream: std::net::TcpStream,
    handle: ShardedPipelineHandle,
    term: u64,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
) -> Result<()> {
    let mut conn = Conn::new(stream)?;
    let (role, peer_term) = loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match conn.try_recv(STOP_POLL)? {
            Some(Message::Hello {
                role,
                version,
                term: peer_term,
            }) => {
                if version != PROTOCOL_VERSION {
                    conn.send(&Message::ErrReply(format!(
                        "protocol version mismatch: peer speaks v{version}, server speaks v{PROTOCOL_VERSION}"
                    )))?;
                    return Ok(());
                }
                break (role, peer_term);
            }
            Some(other) => {
                conn.send(&Message::ErrReply(format!("expected Hello, got {other:?}")))?;
                return Ok(());
            }
            None => continue,
        }
    };
    // Fencing: a peer that has observed a higher term than ours proves we
    // are a deposed leader. Refuse before serving a single request, so a
    // zombie can neither accept writes from informed clients nor ship WAL
    // to a promoted-lineage follower.
    if peer_term > term && !mutate("skip_fencing") {
        conn.send(&Message::Fenced {
            observed: term,
            current: peer_term,
        })?;
        return Ok(());
    }
    conn.send(&Message::Welcome {
        shards: handle.shard_count() as u32,
        term,
    })?;
    let out = match role {
        Role::Client => serve_client(&mut conn, &handle, &stop, &counters),
        Role::Follower => serve_follower(&mut conn, &handle, term, &stop, &counters),
    };
    counters
        .frames_in
        .fetch_add(conn.frames_in, Ordering::Relaxed);
    counters
        .frames_out
        .fetch_add(conn.frames_out, Ordering::Relaxed);
    out
}

fn serve_client(
    conn: &mut Conn,
    handle: &ShardedPipelineHandle,
    stop: &AtomicBool,
    counters: &NetCounters,
) -> Result<()> {
    loop {
        let msg = loop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            if let Some(m) = conn.try_recv(STOP_POLL)? {
                break m;
            }
        };
        match msg {
            Message::Sql { sql, session, seq } => {
                let t0 = Instant::now();
                // Network sessions are refused (not blocked) when the
                // pipeline queue is full: blocking here would let one slow
                // shard stall every connection thread.
                let admit = Admission::Refuse {
                    retry_after_ms: OVERLOAD_RETRY_MS,
                };
                let result = if session == 0 {
                    handle.execute(&sql)
                } else {
                    handle.execute_stamped(&sql, session, seq, admit)
                };
                let reply = match result {
                    Ok(outcome) => Message::SqlOk((&outcome).into()),
                    Err(ChronicleError::Overloaded { retry_after_ms }) => {
                        counters.overload_rejections.fetch_add(1, Ordering::Relaxed);
                        Message::Overloaded { retry_after_ms }
                    }
                    Err(ChronicleError::Fenced { observed, current }) => {
                        Message::Fenced { observed, current }
                    }
                    Err(e) => Message::ErrReply(e.to_string()),
                };
                counters.record_request(t0.elapsed().as_nanos() as u64);
                conn.send(&reply)?;
            }
            Message::StatsReq => {
                let t0 = Instant::now();
                let reply = match handle.stats() {
                    Ok(stats) => {
                        let mut wire = WireStats::from_db(&stats);
                        counters.fold_into(&mut wire);
                        Message::StatsReply(wire)
                    }
                    Err(e) => Message::ErrReply(e.to_string()),
                };
                counters.record_request(t0.elapsed().as_nanos() as u64);
                conn.send(&reply)?;
            }
            Message::Goodbye => return Ok(()),
            other => {
                conn.send(&Message::ErrReply(format!(
                    "unexpected client message {other:?}"
                )))?;
                return Ok(());
            }
        }
    }
}

fn serve_follower(
    conn: &mut Conn,
    handle: &ShardedPipelineHandle,
    term: u64,
    stop: &AtomicBool,
    counters: &NetCounters,
) -> Result<()> {
    let applied = loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match conn.try_recv(STOP_POLL)? {
            Some(Message::FetchWal {
                applied,
                term: follower_term,
            }) => {
                // A follower that has observed a higher term follows a
                // newer leader's lineage; shipping our stale history into
                // it would fork the replicated log.
                if follower_term > term && !mutate("skip_fencing") {
                    conn.send(&Message::Fenced {
                        observed: term,
                        current: follower_term,
                    })?;
                    return Ok(());
                }
                break applied;
            }
            Some(Message::Goodbye) | None => {
                if stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Some(other) => {
                conn.send(&Message::ErrReply(format!(
                    "expected FetchWal, got {other:?}"
                )))?;
                return Ok(());
            }
        }
    };
    if applied.len() != handle.shard_count() {
        conn.send(&Message::ErrReply(format!(
            "FetchWal carries {} shards, server has {}",
            applied.len(),
            handle.shard_count()
        )))?;
        return Ok(());
    }
    let mut shipper = Shipper::new(&applied, DEFAULT_CHUNK);
    while !stop.load(Ordering::Relaxed) {
        let mut shipped = 0u64;
        let caught_up = shipper.pump(handle, &mut |event| {
            let msg = match event {
                ShipEvent::Start { shard, first_lsn } => Message::SegStart {
                    shard: shard as u32,
                    first_lsn,
                    term,
                },
                ShipEvent::Bytes {
                    shard,
                    first_lsn,
                    offset,
                    bytes,
                } => {
                    shipped += bytes.len() as u64;
                    Message::SegBytes {
                        shard: shard as u32,
                        first_lsn,
                        offset,
                        bytes,
                    }
                }
                ShipEvent::Seal { shard, first_lsn } => Message::SegSeal {
                    shard: shard as u32,
                    first_lsn,
                },
            };
            conn.send(&msg)
        })?;
        counters.shipped_bytes.fetch_add(shipped, Ordering::Relaxed);
        let mut durable = Vec::with_capacity(handle.shard_count());
        for shard in 0..handle.shard_count() {
            durable.push(WalSource::last_durable_lsn(handle, shard)?);
        }
        conn.send(&Message::Heartbeat { durable })?;
        if caught_up {
            // Nothing new to ship; poll the socket so a Goodbye (or a
            // dead peer) ends the session promptly, then look again.
            match conn.try_recv(CATCHUP_POLL) {
                Ok(Some(Message::Goodbye)) | Err(_) => return Ok(()),
                Ok(Some(_)) | Ok(None) => {}
            }
        }
    }
    Ok(())
}
