//! Network access and WAL-shipping replication for the chronicle engine.
//!
//! The paper's deployment story (§6) has many observers asking sub-second
//! summary questions while one stream of transactions flows in. This crate
//! gives that shape a process boundary:
//!
//! * [`Server`] — a leader serving SQL sessions over TCP, multiplexed onto
//!   the concurrent [`ShardedPipeline`](chronicle_db::pipeline::ShardedPipeline)
//!   (appends acknowledged after group-commit flush, exactly like the
//!   local API);
//! * [`Shipper`] / [`WalSource`] — leader-side WAL log shipping: sealed
//!   segments stream to followers in order, the active segment tails as
//!   it grows, and only *flushed* bytes ever leave the leader;
//! * [`Replica`] — a follower process: continuous ingest through
//!   [`chronicle_db::FollowerDb`] (local WAL persisted byte-identically,
//!   crash recovery through the normal path) plus an optional read-only
//!   `SELECT` listener serving continuously maintained views;
//! * [`Client`] — the blocking request/reply SQL client.
//!
//! Everything is built on `std::net` and the in-tree codec/CRC — the
//! workspace's zero-dependency policy holds. Framing is
//! `[u32 len][u32 crc][payload]` ([`frame`]); messages are u8-tagged
//! ([`proto`]); anything that does not checksum or parse drops the
//! connection loudly, the same discipline the WAL applies on disk.

#![warn(missing_docs)]

mod client;
mod conn;
pub mod frame;
pub mod proto;
mod replica;
mod retry;
mod server;
pub mod ship;

pub use client::{Client, DEFAULT_REQUEST_TIMEOUT};
pub use proto::{Message, RemoteOutcome, Role, WireStats, PROTOCOL_VERSION};
pub use replica::Replica;
pub use retry::{RetryClient, RetryPolicy};
pub use server::Server;
pub use ship::{ShipEvent, Shipper, WalSource, DEFAULT_CHUNK};
