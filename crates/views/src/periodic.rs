//! Periodic persistent views — the `V<D>` construct of §5.1.
//!
//! *"Given a view V in summary algebra, and a calendar D, V<D> specifies a
//! set of views V₁, …, V_k, one for each interval in the calendar D."*
//!
//! The implementation applies the paper's two optimizations:
//!
//! * a view is **activated** lazily when its interval starts receiving data
//!   and **retired** as soon as the chronicle clock passes its interval end
//!   ("starting to maintain a view as soon as its time interval starts, and
//!   stopping its maintenance as soon as its interval ends"), and
//! * retired views **expire** after a configurable grace period, allowing
//!   an infinite calendar to run in bounded space ("Expiration dates allow
//!   the system to implement an infinite number of periodic views, provided
//!   only a finite number of them are current at any one instant").

use std::collections::BTreeMap;

use chronicle_algebra::delta::DeltaEngine;
use chronicle_algebra::{ScaExpr, WorkCounter};
use chronicle_store::Catalog;
use chronicle_types::{ChronicleError, Result, Value, ViewId};

use crate::calendar::{Calendar, Interval};
use crate::maintenance::AppendEvent;
use crate::persistent::PersistentView;

/// One interval's materialized view.
#[derive(Debug)]
pub struct IntervalViewState {
    /// The interval this view covers.
    pub interval: Interval,
    /// The materialized contents.
    pub view: PersistentView,
}

/// A periodic view family.
#[derive(Debug)]
pub struct PeriodicViewSet {
    name: String,
    template: ScaExpr,
    calendar: Calendar,
    /// Ticks after interval end at which a closed view is dropped
    /// (`None` = keep forever).
    expire_after: Option<i64>,
    /// Views whose interval may still receive data.
    live: BTreeMap<u64, IntervalViewState>,
    /// Completed views awaiting queries/expiry.
    closed: BTreeMap<u64, IntervalViewState>,
    /// First calendar index not yet checked for retirement.
    retire_cursor: u64,
    expired: u64,
}

impl PeriodicViewSet {
    /// Create a family from a view template and a calendar.
    pub fn new(
        name: impl Into<String>,
        template: ScaExpr,
        calendar: Calendar,
        expire_after: Option<i64>,
    ) -> Self {
        PeriodicViewSet {
            name: name.into(),
            template,
            calendar,
            expire_after,
            live: BTreeMap::new(),
            closed: BTreeMap::new(),
            retire_cursor: 0,
            expired: 0,
        }
    }

    /// Family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The calendar.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// Maintain the family for one append. Returns the number of interval
    /// views that received the delta. Also advances retirement/expiry based
    /// on the batch chronon (the chronicle's clock only moves on appends).
    pub fn on_append(
        &mut self,
        catalog: &Catalog,
        event: &AppendEvent,
        work: &mut WorkCounter,
    ) -> Result<usize> {
        let t = event.chronon;
        // The template must depend on the appended chronicle at all.
        if !self
            .template
            .ca()
            .base_chronicles()
            .contains(&event.chronicle)
        {
            self.retire_and_expire(t);
            return Ok(0);
        }
        let engine = DeltaEngine::new(catalog);
        let batch = event.as_batch();
        let mut maintained = 0;
        for idx in self.calendar.intervals_containing(t) {
            let interval = self
                .calendar
                .interval(idx)?
                .expect("containing interval exists");
            let entry = self.live.entry(idx).or_insert_with(|| IntervalViewState {
                interval,
                view: PersistentView::new(
                    ViewId(idx as u32),
                    format!("{}[{}]", self.name, idx),
                    self.template.clone(),
                ),
            });
            let delta = engine.delta_sca(entry.view.expr(), &batch, work)?;
            if !delta.is_empty() {
                entry.view.apply(&delta, work)?;
            }
            maintained += 1;
        }
        self.retire_and_expire(t);
        Ok(maintained)
    }

    fn retire_and_expire(&mut self, now: chronicle_types::Chronon) {
        for idx in self.calendar.ended_before(now, self.retire_cursor) {
            if let Some(state) = self.live.remove(&idx) {
                self.closed.insert(idx, state);
            }
            self.retire_cursor = self.retire_cursor.max(idx + 1);
        }
        if let Some(grace) = self.expire_after {
            let expired: Vec<u64> = self
                .closed
                .iter()
                .filter(|(_, s)| s.interval.end.plus(grace) <= now)
                .map(|(&i, _)| i)
                .collect();
            for idx in expired {
                self.closed.remove(&idx);
                self.expired += 1;
            }
        }
    }

    /// The live (still maintainable) interval views.
    pub fn live_views(&self) -> impl Iterator<Item = (&u64, &IntervalViewState)> {
        self.live.iter()
    }

    /// The closed (completed, unexpired) interval views.
    pub fn closed_views(&self) -> impl Iterator<Item = (&u64, &IntervalViewState)> {
        self.closed.iter()
    }

    /// The view for calendar interval `idx`, live or closed.
    pub fn result(&self, idx: u64) -> Option<&IntervalViewState> {
        self.live.get(&idx).or_else(|| self.closed.get(&idx))
    }

    /// Point query against interval `idx`.
    pub fn query(&self, idx: u64, key: &[Value]) -> Option<chronicle_types::Tuple> {
        self.result(idx).and_then(|s| s.view.get(key))
    }

    /// Counts: (live, closed, expired).
    pub fn counts(&self) -> (usize, usize, u64) {
        (self.live.len(), self.closed.len(), self.expired)
    }

    /// Serialize the family's materialized state: the retirement cursor,
    /// the expiry counter, and every live/closed interval view's snapshot.
    /// The template and calendar are *not* included — they are rebuilt by
    /// replaying the defining DDL on recovery.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = crate::codec::Writer::new();
        w.str("CHRP1");
        w.u64(self.retire_cursor);
        w.u64(self.expired);
        for set in [&self.live, &self.closed] {
            w.u32(set.len() as u32);
            for (idx, state) in set {
                w.u64(*idx);
                w.bytes(&state.view.snapshot());
            }
        }
        w.into_bytes()
    }

    /// Restore from [`PeriodicViewSet::snapshot`] bytes taken on an
    /// identically defined family (same template and calendar).
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = crate::codec::Reader::new(bytes);
        if r.str()? != "CHRP1" {
            return Err(ChronicleError::Internal(
                "not a periodic-view snapshot".into(),
            ));
        }
        let retire_cursor = r.u64()?;
        let expired = r.u64()?;
        let mut sets = [BTreeMap::new(), BTreeMap::new()];
        for set in &mut sets {
            let n = r.u32()?;
            for _ in 0..n {
                let idx = r.u64()?;
                let view_bytes = r.bytes()?;
                let interval = self.calendar.interval(idx)?.ok_or_else(|| {
                    ChronicleError::Internal(format!(
                        "periodic snapshot names interval {idx} outside the calendar"
                    ))
                })?;
                let view = PersistentView::restore(
                    ViewId(idx as u32),
                    format!("{}[{}]", self.name, idx),
                    self.template.clone(),
                    &view_bytes,
                )?;
                set.insert(idx, IntervalViewState { interval, view });
            }
        }
        let [live, closed] = sets;
        self.live = live;
        self.closed = closed;
        self.retire_cursor = retire_cursor;
        self.expired = expired;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_algebra::{AggFunc, AggSpec, CaExpr};
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{tuple, AttrType, Attribute, ChronicleId, Chronon, Schema, SeqNo, Tuple};

    fn setup() -> (Catalog, ChronicleId, ScaExpr) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("acct", AttrType::Int),
                Attribute::new("amount", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c = cat
            .create_chronicle("txns", g, cs, Retention::None)
            .unwrap();
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["acct"],
            vec![AggSpec::new(AggFunc::Sum(2), "total")],
        )
        .unwrap();
        (cat, c, expr)
    }

    fn ev(c: ChronicleId, seq: u64, at: i64, tuples: Vec<Tuple>) -> AppendEvent {
        AppendEvent {
            chronicle: c,
            seq: SeqNo(seq),
            chronon: Chronon(at),
            tuples,
        }
    }

    #[test]
    fn monthly_views_split_by_interval() {
        let (cat, c, expr) = setup();
        // "Months" of 30 ticks.
        let cal = Calendar::every(Chronon(0), 30).unwrap();
        let mut set = PeriodicViewSet::new("monthly", expr, cal, None);
        let mut w = WorkCounter::default();
        set.on_append(
            &cat,
            &ev(c, 1, 5, vec![tuple![SeqNo(1), 7i64, 10.0f64]]),
            &mut w,
        )
        .unwrap();
        set.on_append(
            &cat,
            &ev(c, 2, 25, vec![tuple![SeqNo(2), 7i64, 5.0f64]]),
            &mut w,
        )
        .unwrap();
        set.on_append(
            &cat,
            &ev(c, 3, 35, vec![tuple![SeqNo(3), 7i64, 2.0f64]]),
            &mut w,
        )
        .unwrap();
        // Month 0 closed with 15.0; month 1 live with 2.0.
        let m0 = set.result(0).unwrap();
        assert_eq!(
            m0.view.get_agg(&[Value::Int(7)], 0),
            Some(Value::Float(15.0))
        );
        let m1 = set.result(1).unwrap();
        assert_eq!(
            m1.view.get_agg(&[Value::Int(7)], 0),
            Some(Value::Float(2.0))
        );
        let (live, closed, expired) = set.counts();
        assert_eq!((live, closed, expired), (1, 1, 0));
    }

    #[test]
    fn overlapping_windows_fan_out() {
        let (cat, c, expr) = setup();
        // Window of 3 ticks stepping 1: a tuple lands in up to 3 windows.
        let cal = Calendar::sliding(Chronon(0), 3, 1).unwrap();
        let mut set = PeriodicViewSet::new("win", expr, cal, None);
        let mut w = WorkCounter::default();
        let n = set
            .on_append(
                &cat,
                &ev(c, 1, 5, vec![tuple![SeqNo(1), 7i64, 1.0f64]]),
                &mut w,
            )
            .unwrap();
        assert_eq!(n, 3, "chronon 5 lies in windows starting at 3, 4, 5");
        assert!(set.query(3, &[Value::Int(7)]).is_some());
        assert!(set.query(5, &[Value::Int(7)]).is_some());
        assert!(set.query(6, &[Value::Int(7)]).is_none());
    }

    #[test]
    fn expiration_reclaims_space() {
        let (cat, c, expr) = setup();
        let cal = Calendar::every(Chronon(0), 10).unwrap();
        let mut set = PeriodicViewSet::new("m", expr, cal, Some(20));
        let mut w = WorkCounter::default();
        for i in 0..6u64 {
            let at = (i * 10) as i64 + 1; // one batch per period
            set.on_append(
                &cat,
                &ev(c, i + 1, at, vec![tuple![SeqNo(i + 1), 7i64, 1.0f64]]),
                &mut w,
            )
            .unwrap();
        }
        // At t=51: periods 0..4 closed; those ending ≤ 31 expired
        // (ends 10, 20, 30 → expire at 30, 40, 50; t=51 expires all three).
        let (live, closed, expired) = set.counts();
        assert_eq!(live, 1);
        assert_eq!(expired, 3);
        assert_eq!(closed, 2);
        assert!(set.result(0).is_none(), "expired views are gone");
        assert!(set.result(4).is_some());
    }

    #[test]
    fn unrelated_chronicle_does_not_fan_out() {
        let (mut cat, c, expr) = setup();
        let g = cat.group_id("g").unwrap();
        let cs2 = Schema::chronicle(vec![Attribute::new("sn", AttrType::Seq)], "sn").unwrap();
        let other = cat
            .create_chronicle("other", g, cs2, Retention::None)
            .unwrap();
        let cal = Calendar::every(Chronon(0), 10).unwrap();
        let mut set = PeriodicViewSet::new("m", expr, cal, None);
        let mut w = WorkCounter::default();
        let n = set
            .on_append(&cat, &ev(other, 1, 5, vec![tuple![SeqNo(1)]]), &mut w)
            .unwrap();
        assert_eq!(n, 0);
        let (live, ..) = set.counts();
        assert_eq!(live, 0, "no interval view instantiated for foreign data");
        let _ = c;
    }

    #[test]
    fn empty_intervals_never_materialize() {
        let (cat, c, expr) = setup();
        let cal = Calendar::every(Chronon(0), 10).unwrap();
        let mut set = PeriodicViewSet::new("m", expr, cal, None);
        let mut w = WorkCounter::default();
        // Jump straight to period 5; periods 0..4 never existed.
        set.on_append(
            &cat,
            &ev(c, 1, 55, vec![tuple![SeqNo(1), 7i64, 1.0f64]]),
            &mut w,
        )
        .unwrap();
        let (live, closed, _) = set.counts();
        assert_eq!((live, closed), (1, 0));
        assert!(set.result(2).is_none());
    }
}
