//! Affected-view identification (§5.2).
//!
//! *"When multiple views are to be maintained over the same chronicle, each
//! update to the chronicle would require checking all the views ... We need
//! to filter these out early so as not to waste computation resources."*
//!
//! The router applies three sound filters, cheapest first:
//!
//! 1. **dependency filter** — only views whose expression references the
//!    appended chronicle are candidates (a hash lookup),
//! 2. **active-interval filter** — views tagged with a time interval (the
//!    periodic machinery) are skipped when the batch chronon lies outside,
//! 3. **guard-predicate filter** — if the view's expression applies
//!    selections directly above each base occurrence, and no batch tuple
//!    satisfies any occurrence's guard, every base delta is empty and the
//!    view is untouched (this is the "query independent of update" test of
//!    [LS93] specialized to appends).

use std::collections::HashMap;

use chronicle_algebra::{Predicate, ScaExpr};
use chronicle_types::{ChronicleId, Chronon, Result, Tuple, ViewId};

use crate::calendar::Interval;

/// Routing metadata for one registered view.
#[derive(Debug)]
struct ViewEntry {
    /// Guards per base occurrence, bucketed by chronicle: the view is
    /// affected by an append to chronicle `c` iff some tuple satisfies some
    /// occurrence guard of `c` (an empty guard conjunction always passes).
    guards: HashMap<ChronicleId, Vec<Vec<Predicate>>>,
    /// If set, the view only cares about batches whose chronon lies in the
    /// interval.
    active: Option<Interval>,
}

/// Statistics from routing one append.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingDecision {
    /// Views depending on the appended chronicle.
    pub candidates: usize,
    /// Candidates skipped because the batch chronon was outside their
    /// active interval.
    pub skipped_interval: usize,
    /// Candidates skipped because no tuple satisfied any guard.
    pub skipped_guard: usize,
    /// Views that must be maintained.
    pub selected: Vec<ViewId>,
}

/// The affected-view router.
#[derive(Debug, Default)]
pub struct Router {
    by_chronicle: HashMap<ChronicleId, Vec<ViewId>>,
    entries: HashMap<ViewId, ViewEntry>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a view's dependency and guard structure.
    ///
    /// Re-registering an id replaces its routes wholesale: the old
    /// expression's chronicle dependencies are dropped first, so a view
    /// redefined over different chronicles stops routing (and being
    /// maintained) on chronicles it no longer references.
    pub fn register(&mut self, id: ViewId, expr: &ScaExpr) {
        self.unregister(id);
        let mut guards: HashMap<ChronicleId, Vec<Vec<Predicate>>> = HashMap::new();
        for (chron, preds) in expr.ca().base_guards() {
            guards.entry(chron).or_default().push(preds);
        }
        for &chron in guards.keys() {
            let views = self.by_chronicle.entry(chron).or_default();
            if !views.contains(&id) {
                views.push(id);
            }
        }
        self.entries.insert(
            id,
            ViewEntry {
                guards,
                active: None,
            },
        );
    }

    /// Remove a view.
    pub fn unregister(&mut self, id: ViewId) {
        if let Some(entry) = self.entries.remove(&id) {
            for chron in entry.guards.keys() {
                if let Some(v) = self.by_chronicle.get_mut(chron) {
                    v.retain(|&x| x != id);
                }
            }
        }
    }

    /// Tag a view with an active time interval (periodic views); `None`
    /// clears the tag.
    pub fn set_active_interval(&mut self, id: ViewId, interval: Option<Interval>) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.active = interval;
        }
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no views are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Route one append: which views must be maintained?
    pub fn route(
        &self,
        chronicle: ChronicleId,
        chronon: Chronon,
        tuples: &[Tuple],
    ) -> Result<RoutingDecision> {
        let mut decision = RoutingDecision::default();
        let Some(candidates) = self.by_chronicle.get(&chronicle) else {
            return Ok(decision);
        };
        decision.candidates = candidates.len();
        'views: for &vid in candidates {
            let entry = &self.entries[&vid];
            if let Some(iv) = entry.active {
                if !iv.contains(chronon) {
                    decision.skipped_interval += 1;
                    continue;
                }
            }
            let occurrence_guards = entry.guards.get(&chronicle).expect("registered dependency");
            for guard in occurrence_guards {
                if guard.is_empty() {
                    decision.selected.push(vid);
                    continue 'views;
                }
                for t in tuples {
                    let mut all = true;
                    for p in guard {
                        if !p.eval(t)? {
                            all = false;
                            break;
                        }
                    }
                    if all {
                        decision.selected.push(vid);
                        continue 'views;
                    }
                }
            }
            decision.skipped_guard += 1;
        }
        Ok(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_algebra::{AggFunc, AggSpec, CaExpr, CmpOp};
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{tuple, AttrType, Attribute, Schema, SeqNo, Value};

    fn setup() -> (Catalog, ChronicleId, ChronicleId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let calls = cat
            .create_chronicle("calls", g, cs.clone(), Retention::None)
            .unwrap();
        let texts = cat
            .create_chronicle("texts", g, cs, Retention::None)
            .unwrap();
        (cat, calls, texts)
    }

    fn sum_view(cat: &Catalog, c: ChronicleId) -> ScaExpr {
        ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "total")],
        )
        .unwrap()
    }

    fn guarded_view(cat: &Catalog, c: ChronicleId, min_minutes: f64) -> ScaExpr {
        let base = CaExpr::chronicle(cat.chronicle(c));
        let p = Predicate::attr_cmp_const(
            base.schema(),
            "minutes",
            CmpOp::Gt,
            Value::Float(min_minutes),
        )
        .unwrap();
        ScaExpr::group_agg(
            base.select(p).unwrap(),
            &["caller"],
            vec![AggSpec::new(AggFunc::CountStar, "n")],
        )
        .unwrap()
    }

    #[test]
    fn dependency_filter() {
        let (cat, calls, texts) = setup();
        let mut r = Router::new();
        r.register(ViewId(0), &sum_view(&cat, calls));
        r.register(ViewId(1), &sum_view(&cat, texts));
        let batch = vec![tuple![SeqNo(1), 555i64, 2.0f64]];
        let d = r.route(calls, Chronon(0), &batch).unwrap();
        assert_eq!(d.selected, vec![ViewId(0)]);
        assert_eq!(d.candidates, 1);
        let d = r.route(texts, Chronon(0), &batch).unwrap();
        assert_eq!(d.selected, vec![ViewId(1)]);
    }

    #[test]
    fn guard_filter_skips_unaffected() {
        let (cat, calls, _) = setup();
        let mut r = Router::new();
        r.register(ViewId(0), &guarded_view(&cat, calls, 100.0));
        r.register(ViewId(1), &sum_view(&cat, calls));
        let short_call = vec![tuple![SeqNo(1), 555i64, 2.0f64]];
        let d = r.route(calls, Chronon(0), &short_call).unwrap();
        assert_eq!(d.selected, vec![ViewId(1)]);
        assert_eq!(d.skipped_guard, 1);
        let long_call = vec![tuple![SeqNo(2), 555i64, 200.0f64]];
        let d = r.route(calls, Chronon(0), &long_call).unwrap();
        assert_eq!(d.selected.len(), 2);
    }

    #[test]
    fn guard_passes_if_any_tuple_matches() {
        let (cat, calls, _) = setup();
        let mut r = Router::new();
        r.register(ViewId(0), &guarded_view(&cat, calls, 100.0));
        let mixed = vec![
            tuple![SeqNo(1), 555i64, 2.0f64],
            tuple![SeqNo(1), 777i64, 150.0f64],
        ];
        let d = r.route(calls, Chronon(0), &mixed).unwrap();
        assert_eq!(d.selected, vec![ViewId(0)]);
    }

    #[test]
    fn interval_filter() {
        let (cat, calls, _) = setup();
        let mut r = Router::new();
        r.register(ViewId(0), &sum_view(&cat, calls));
        r.set_active_interval(
            ViewId(0),
            Some(Interval::new(Chronon(10), Chronon(20)).unwrap()),
        );
        let batch = vec![tuple![SeqNo(1), 555i64, 2.0f64]];
        let d = r.route(calls, Chronon(5), &batch).unwrap();
        assert!(d.selected.is_empty());
        assert_eq!(d.skipped_interval, 1);
        let d = r.route(calls, Chronon(15), &batch).unwrap();
        assert_eq!(d.selected, vec![ViewId(0)]);
        // Clearing the tag restores unconditional routing.
        r.set_active_interval(ViewId(0), None);
        let d = r.route(calls, Chronon(5), &batch).unwrap();
        assert_eq!(d.selected, vec![ViewId(0)]);
    }

    #[test]
    fn unregister_removes_view() {
        let (cat, calls, _) = setup();
        let mut r = Router::new();
        r.register(ViewId(0), &sum_view(&cat, calls));
        assert_eq!(r.len(), 1);
        r.unregister(ViewId(0));
        assert!(r.is_empty());
        let d = r
            .route(calls, Chronon(0), &[tuple![SeqNo(1), 1i64, 1.0f64]])
            .unwrap();
        assert!(d.selected.is_empty());
    }

    #[test]
    fn re_register_drops_stale_chronicle_routes() {
        // Regression: `register` used to overwrite the `entries` slot but
        // leave the view's old chronicle ids in `by_chronicle`, so a view
        // redefined over `texts` kept routing on `calls` — and `route` then
        // panicked looking up guards for a dependency the new expression
        // no longer has.
        let (cat, calls, texts) = setup();
        let mut r = Router::new();
        r.register(ViewId(0), &sum_view(&cat, calls));
        r.register(ViewId(0), &sum_view(&cat, texts));
        assert_eq!(r.len(), 1);
        let batch = vec![tuple![SeqNo(1), 555i64, 2.0f64]];
        let d = r.route(calls, Chronon(0), &batch).unwrap();
        assert!(d.selected.is_empty(), "stale route on old chronicle");
        assert_eq!(d.candidates, 0);
        let d = r.route(texts, Chronon(0), &batch).unwrap();
        assert_eq!(d.selected, vec![ViewId(0)]);
    }

    #[test]
    fn union_view_routes_from_both_chronicles() {
        let (cat, calls, texts) = setup();
        let u = CaExpr::chronicle(cat.chronicle(calls))
            .union(CaExpr::chronicle(cat.chronicle(texts)))
            .unwrap();
        let expr = ScaExpr::group_agg(u, &["caller"], vec![AggSpec::new(AggFunc::CountStar, "n")])
            .unwrap();
        let mut r = Router::new();
        r.register(ViewId(0), &expr);
        let batch = vec![tuple![SeqNo(1), 555i64, 2.0f64]];
        assert_eq!(
            r.route(calls, Chronon(0), &batch).unwrap().selected.len(),
            1
        );
        assert_eq!(
            r.route(texts, Chronon(0), &batch).unwrap().selected.len(),
            1
        );
    }

    #[test]
    fn stacked_selects_form_conjunctive_guard() {
        let (cat, calls, _) = setup();
        let base = CaExpr::chronicle(cat.chronicle(calls));
        let p1 = Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(5.0))
            .unwrap();
        let p2 =
            Predicate::attr_cmp_const(base.schema(), "caller", CmpOp::Eq, Value::Int(555)).unwrap();
        let expr = ScaExpr::group_agg(
            base.select(p1).unwrap().select(p2).unwrap(),
            &["caller"],
            vec![AggSpec::new(AggFunc::CountStar, "n")],
        )
        .unwrap();
        let mut r = Router::new();
        r.register(ViewId(0), &expr);
        // Satisfies p2 but not p1 -> skipped.
        let d = r
            .route(calls, Chronon(0), &[tuple![SeqNo(1), 555i64, 1.0f64]])
            .unwrap();
        assert_eq!(d.skipped_guard, 1);
        // Satisfies both -> selected.
        let d = r
            .route(calls, Chronon(0), &[tuple![SeqNo(1), 555i64, 10.0f64]])
            .unwrap();
        assert_eq!(d.selected.len(), 1);
    }
}
