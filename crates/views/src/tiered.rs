//! Batch → incremental conversion for tiered computations (§5.3).
//!
//! *"A popular telephone discounting plan in the USA gives a discount of
//! 10% on all calls made if the monthly undiscounted expenses exceed $10, a
//! discount of 20% if the expenses exceed $25, and so on."* Computing such
//! discounts once at period end leaves the answer out of date all month and
//! forces batch processing; the paper asks for the *incremental* mapping.
//!
//! [`TierSchedule`] is that mapping: it keeps, per key, the running
//! undiscounted total and derives the tier and discounted value on every
//! increment in O(log #tiers). Because the discount applies retroactively
//! to *all* activity in the period once a threshold is crossed, the derived
//! value is recomputed from the (O(1)-sized) running total, not from the
//! transaction history — no chronicle access, exactly the chronicle-model
//! discipline. [`BatchDiscount`] is the end-of-period comparator for
//! experiment E10.

use std::collections::BTreeMap;

use chronicle_types::{ChronicleError, Result, Value};

/// One tier: at or above `threshold`, the `rate` applies to the whole
/// period's activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tier {
    /// Inclusive lower bound on the period total for this tier.
    pub threshold: f64,
    /// Discount (or fee/bonus) rate applied to the whole total.
    pub rate: f64,
}

/// The per-key incremental state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierState {
    /// Running undiscounted total for the period.
    pub total: f64,
    /// Index of the currently applicable tier.
    pub tier: usize,
    /// Discounted value: `total · (1 − rate(tier))`.
    pub discounted: f64,
}

/// A tiered schedule with per-key incremental maintenance.
#[derive(Debug, Clone)]
pub struct TierSchedule {
    /// Sorted ascending by threshold; `tiers[0].threshold` is the base tier
    /// (usually 0.0 with rate 0.0).
    tiers: Vec<Tier>,
    state: BTreeMap<Vec<Value>, TierState>,
}

impl TierSchedule {
    /// Build a schedule. Tiers must start at a base threshold and be
    /// strictly increasing.
    pub fn new(mut tiers: Vec<Tier>) -> Result<Self> {
        if tiers.is_empty() {
            return Err(ChronicleError::InvalidSchema(
                "tier schedule needs at least one tier".into(),
            ));
        }
        tiers.sort_by(|a, b| a.threshold.total_cmp(&b.threshold));
        for w in tiers.windows(2) {
            if w[0].threshold == w[1].threshold {
                return Err(ChronicleError::InvalidSchema(format!(
                    "duplicate tier threshold {}",
                    w[0].threshold
                )));
            }
        }
        Ok(TierSchedule {
            tiers,
            state: BTreeMap::new(),
        })
    }

    /// The US telephone plan from the paper: 0% below $10, 10% from $10,
    /// 20% from $25.
    pub fn us_telephone_1995() -> TierSchedule {
        TierSchedule::new(vec![
            Tier {
                threshold: 0.0,
                rate: 0.0,
            },
            Tier {
                threshold: 10.0,
                rate: 0.10,
            },
            Tier {
                threshold: 25.0,
                rate: 0.20,
            },
        ])
        .expect("static schedule is valid")
    }

    /// Tier index applicable to `total` — O(log #tiers).
    pub fn tier_of(&self, total: f64) -> usize {
        match self
            .tiers
            .binary_search_by(|t| t.threshold.total_cmp(&total))
        {
            Ok(i) => i,
            Err(0) => 0, // below the base threshold: clamp to base tier
            Err(i) => i - 1,
        }
    }

    /// Fold one transaction amount into `key`'s period state. Returns the
    /// updated state (and implicitly whether a tier boundary was crossed).
    pub fn apply(&mut self, key: &[Value], amount: f64) -> TierState {
        let total = self.state.get(key).map_or(0.0, |s| s.total) + amount;
        let tier = self.tier_of(total);
        let st = TierState {
            total,
            tier,
            discounted: total * (1.0 - self.tiers[tier].rate),
        };
        self.state.insert(key.to_vec(), st);
        st
    }

    /// Current state for `key` (the always-fresh summary field).
    pub fn get(&self, key: &[Value]) -> TierState {
        self.state.get(key).copied().unwrap_or_default()
    }

    /// End the period: return all final states and reset (space reuse for
    /// the next period).
    pub fn close_period(&mut self) -> BTreeMap<Vec<Value>, TierState> {
        std::mem::take(&mut self.state)
    }

    /// Number of keys with activity this period.
    pub fn active_keys(&self) -> usize {
        self.state.len()
    }

    /// The tier table.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }
}

/// The batch comparator: accumulates raw amounts and computes discounts
/// only when [`BatchDiscount::compute`] is called at period end — the
/// "out-of-date or inaccurate before the end of the period" approach the
/// paper criticizes.
#[derive(Debug, Clone)]
pub struct BatchDiscount {
    tiers: Vec<Tier>,
    amounts: BTreeMap<Vec<Value>, Vec<f64>>,
}

impl BatchDiscount {
    /// Build a batch computation over the same tier table.
    pub fn new(schedule: &TierSchedule) -> Self {
        BatchDiscount {
            tiers: schedule.tiers.clone(),
            amounts: BTreeMap::new(),
        }
    }

    /// Record a transaction (no derived values are produced here — the
    /// batch approach cannot answer mid-period queries accurately).
    pub fn record(&mut self, key: &[Value], amount: f64) {
        self.amounts.entry(key.to_vec()).or_default().push(amount);
    }

    /// The end-of-period batch job: one pass over all recorded
    /// transactions. Returns final states; the work is O(#transactions).
    pub fn compute(&self) -> BTreeMap<Vec<Value>, TierState> {
        let mut out = BTreeMap::new();
        for (key, amounts) in &self.amounts {
            let total: f64 = amounts.iter().sum();
            let tier = match self
                .tiers
                .binary_search_by(|t| t.threshold.total_cmp(&total))
            {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            out.insert(
                key.clone(),
                TierState {
                    total,
                    tier,
                    discounted: total * (1.0 - self.tiers[tier].rate),
                },
            );
        }
        out
    }

    /// Transactions recorded (the batch job's input size).
    pub fn recorded(&self) -> usize {
        self.amounts.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: i64) -> Vec<Value> {
        vec![Value::Int(k)]
    }

    #[test]
    fn paper_plan_tiers() {
        let s = TierSchedule::us_telephone_1995();
        assert_eq!(s.tier_of(0.0), 0);
        assert_eq!(s.tier_of(9.99), 0);
        assert_eq!(s.tier_of(10.0), 1);
        assert_eq!(s.tier_of(24.99), 1);
        assert_eq!(s.tier_of(25.0), 2);
        assert_eq!(s.tier_of(1000.0), 2);
    }

    #[test]
    fn incremental_crossing_retroactively_discounts() {
        let mut s = TierSchedule::us_telephone_1995();
        let st = s.apply(&key(1), 6.0);
        assert_eq!(st.tier, 0);
        assert_eq!(st.discounted, 6.0);
        // Crossing $10: the 10% discount now applies to ALL $12.
        let st = s.apply(&key(1), 6.0);
        assert_eq!(st.tier, 1);
        assert!((st.discounted - 12.0 * 0.9).abs() < 1e-12);
        // Crossing $25.
        let st = s.apply(&key(1), 20.0);
        assert_eq!(st.tier, 2);
        assert!((st.discounted - 32.0 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_batch_at_period_end() {
        let mut inc = TierSchedule::us_telephone_1995();
        let mut batch = BatchDiscount::new(&inc);
        let txns = [
            (1, 3.0),
            (2, 30.0),
            (1, 8.0),
            (3, 9.99),
            (2, 0.02),
            (1, 15.0),
        ];
        for (k, amt) in txns {
            inc.apply(&key(k), amt);
            batch.record(&key(k), amt);
        }
        let inc_final: BTreeMap<_, _> = [1i64, 2, 3]
            .iter()
            .map(|&k| (key(k), inc.get(&key(k))))
            .collect();
        let batch_final = batch.compute();
        assert_eq!(batch.recorded(), 6);
        for (k, b) in &batch_final {
            let i = &inc_final[k];
            assert!((i.total - b.total).abs() < 1e-9);
            assert_eq!(i.tier, b.tier);
            assert!((i.discounted - b.discounted).abs() < 1e-9);
        }
    }

    #[test]
    fn mid_period_freshness() {
        // The incremental state answers correctly mid-period; the batch
        // approach has nothing until compute() runs.
        let mut inc = TierSchedule::us_telephone_1995();
        inc.apply(&key(1), 12.0);
        let st = inc.get(&key(1));
        assert_eq!(st.tier, 1);
        assert!((st.discounted - 10.8).abs() < 1e-12);
        assert_eq!(inc.get(&key(9)), TierState::default());
    }

    #[test]
    fn close_period_resets() {
        let mut s = TierSchedule::us_telephone_1995();
        s.apply(&key(1), 100.0);
        assert_eq!(s.active_keys(), 1);
        let finals = s.close_period();
        assert_eq!(finals.len(), 1);
        assert_eq!(s.active_keys(), 0);
        assert_eq!(s.get(&key(1)), TierState::default());
    }

    #[test]
    fn schedule_validation() {
        assert!(TierSchedule::new(vec![]).is_err());
        assert!(TierSchedule::new(vec![
            Tier {
                threshold: 0.0,
                rate: 0.0
            },
            Tier {
                threshold: 0.0,
                rate: 0.1
            },
        ])
        .is_err());
        // Unsorted input is sorted on construction.
        let s = TierSchedule::new(vec![
            Tier {
                threshold: 10.0,
                rate: 0.1,
            },
            Tier {
                threshold: 0.0,
                rate: 0.0,
            },
        ])
        .unwrap();
        assert_eq!(s.tiers()[0].threshold, 0.0);
    }

    #[test]
    fn below_base_threshold_clamps() {
        // Base threshold 5: totals below it still map to tier 0.
        let s = TierSchedule::new(vec![Tier {
            threshold: 5.0,
            rate: 0.0,
        }])
        .unwrap();
        assert_eq!(s.tier_of(1.0), 0);
    }
}
