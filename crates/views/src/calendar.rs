//! Calendars: sets of time intervals for periodic views (§5.1).
//!
//! *"Given a view V in summary algebra, and a calendar D (i.e., a set of
//! time intervals), V<D> specifies a set of views V₁, …, V_k, one for each
//! interval in the calendar D."* Calendars may contain infinitely many
//! intervals (e.g. "every month, forever"); expiration dates make the
//! infinite family implementable by keeping only finitely many live views.

use chronicle_types::{ChronicleError, Chronon, Result};

/// A half-open time interval `[start, end)` over chronons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// Inclusive start.
    pub start: Chronon,
    /// Exclusive end.
    pub end: Chronon,
}

impl Interval {
    /// Build an interval; `start < end` required.
    pub fn new(start: Chronon, end: Chronon) -> Result<Interval> {
        if start >= end {
            return Err(ChronicleError::InvalidSchema(format!(
                "interval start {start} must precede end {end}"
            )));
        }
        Ok(Interval { start, end })
    }

    /// Whether `t` lies in `[start, end)`.
    pub fn contains(&self, t: Chronon) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether this interval ends at or before `t` (fully in the past).
    pub fn ended_by(&self, t: Chronon) -> bool {
        self.end <= t
    }

    /// Width in ticks.
    pub fn width(&self) -> i64 {
        self.end.0 - self.start.0
    }
}

/// A calendar: either an explicit finite set of intervals, or a periodic
/// family `[anchor + i·step, anchor + i·step + width)` for `i = 0, 1, …`
/// (finite if `count` is set, infinite otherwise).
///
/// * `step == width` — consecutive non-overlapping periods (billing months),
/// * `step < width`  — overlapping windows (30-day moving window stepping
///   daily: `width = 30 days`, `step = 1 day`),
/// * `step > width`  — sampling windows with gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Calendar {
    /// An explicit, finite set of intervals (sorted by construction).
    Explicit(Vec<Interval>),
    /// The periodic family described above.
    Periodic {
        /// Start of interval 0.
        anchor: Chronon,
        /// Interval width in ticks.
        width: i64,
        /// Distance between consecutive interval starts.
        step: i64,
        /// Number of intervals, or `None` for an infinite calendar.
        count: Option<u64>,
    },
}

impl Calendar {
    /// An explicit calendar; intervals are sorted by start.
    pub fn explicit(mut intervals: Vec<Interval>) -> Result<Calendar> {
        if intervals.is_empty() {
            return Err(ChronicleError::InvalidSchema(
                "calendar must contain at least one interval".into(),
            ));
        }
        intervals.sort();
        Ok(Calendar::Explicit(intervals))
    }

    /// A single-interval calendar (the degenerate case the paper notes:
    /// "When the calendar D has only one interval, the periodic view
    /// corresponds to a single view defined using an extra selection").
    pub fn single(interval: Interval) -> Calendar {
        Calendar::Explicit(vec![interval])
    }

    /// A periodic calendar.
    pub fn periodic(
        anchor: Chronon,
        width: i64,
        step: i64,
        count: Option<u64>,
    ) -> Result<Calendar> {
        if width <= 0 || step <= 0 {
            return Err(ChronicleError::InvalidSchema(format!(
                "calendar width ({width}) and step ({step}) must be positive"
            )));
        }
        if count == Some(0) {
            return Err(ChronicleError::InvalidSchema(
                "calendar must contain at least one interval".into(),
            ));
        }
        Ok(Calendar::Periodic {
            anchor,
            width,
            step,
            count,
        })
    }

    /// Consecutive equal periods (billing months): `step == width`.
    pub fn every(anchor: Chronon, width: i64) -> Result<Calendar> {
        Self::periodic(anchor, width, width, None)
    }

    /// A sliding window of `width` ticks stepping every `step` ticks.
    pub fn sliding(anchor: Chronon, width: i64, step: i64) -> Result<Calendar> {
        Self::periodic(anchor, width, step, None)
    }

    /// Whether the calendar has finitely many intervals.
    pub fn is_finite(&self) -> bool {
        match self {
            Calendar::Explicit(_) => true,
            Calendar::Periodic { count, .. } => count.is_some(),
        }
    }

    /// The `idx`-th interval: `Ok(None)` past the end of a finite calendar,
    /// `Err(CalendarOutOfRange)` when `anchor + idx·step` (or the interval
    /// end) does not fit in a chronon. The arithmetic runs in `i128`, which
    /// cannot overflow for any `u64` index (`|anchor| ≤ 2⁶³`, `step < 2⁶³`,
    /// `idx < 2⁶⁴` keeps every product below `2¹²⁷`).
    pub fn interval(&self, idx: u64) -> Result<Option<Interval>> {
        match self {
            Calendar::Explicit(v) => Ok(v.get(idx as usize).copied()),
            Calendar::Periodic {
                anchor,
                width,
                step,
                count,
            } => {
                if let Some(n) = count {
                    if idx >= *n {
                        return Ok(None);
                    }
                }
                let start = anchor.0 as i128 + idx as i128 * *step as i128;
                let end = start + *width as i128;
                let (Ok(start), Ok(end)) = (i64::try_from(start), i64::try_from(end)) else {
                    return Err(ChronicleError::CalendarOutOfRange {
                        index: idx,
                        detail: format!("interval [{start}, {end}) exceeds the chronon domain"),
                    });
                };
                Ok(Some(Interval {
                    start: Chronon(start),
                    end: Chronon(end),
                }))
            }
        }
    }

    /// Indices of all intervals containing chronon `t`. For periodic
    /// calendars this is O(width/step) arithmetic, never a scan.
    pub fn intervals_containing(&self, t: Chronon) -> Vec<u64> {
        match self {
            Calendar::Explicit(v) => v
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains(t))
                .map(|(i, _)| i as u64)
                .collect(),
            Calendar::Periodic {
                anchor,
                width,
                step,
                count,
            } => {
                // `t − anchor` can exceed i64 when the operands sit at
                // opposite extremes; i128 keeps the index math exact.
                let rel = t.0 as i128 - anchor.0 as i128;
                if rel < 0 {
                    return Vec::new();
                }
                let (width, step) = (*width as i128, *step as i128);
                // Interval i covers t iff i·step ≤ rel < i·step + width,
                // i.e. floor((rel − width)/step) < i ≤ floor(rel/step).
                // div_euclid is floor division (plain `/` truncates toward
                // zero and overshoots for negative numerators).
                let hi = rel.div_euclid(step);
                let lo = ((rel - width).div_euclid(step) + 1).max(0);
                (lo..=hi)
                    .filter(|&i| {
                        count.is_none_or(|n| (i as u128) < n as u128) && rel - i * step < width
                    })
                    .map(|i| i as u64)
                    .collect()
            }
        }
    }

    /// Indices of intervals that have fully ended by chronon `t` and whose
    /// index is at least `from` (periodic case) — used for retiring views.
    pub fn ended_before(&self, t: Chronon, from: u64) -> Vec<u64> {
        match self {
            Calendar::Explicit(v) => v
                .iter()
                .enumerate()
                .skip(from as usize)
                .filter(|(_, iv)| iv.ended_by(t))
                .map(|(i, _)| i as u64)
                .collect(),
            Calendar::Periodic { .. } => {
                let mut out = Vec::new();
                let mut i = from;
                // An out-of-range index lies in the unreachable far future,
                // so it also ends the retirement scan.
                while let Ok(Some(iv)) = self.interval(i) {
                    if iv.ended_by(t) {
                        out.push(i);
                        i += 1;
                    } else {
                        break;
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(Chronon(10), Chronon(20)).unwrap();
        assert!(iv.contains(Chronon(10)));
        assert!(iv.contains(Chronon(19)));
        assert!(!iv.contains(Chronon(20)));
        assert!(!iv.contains(Chronon(9)));
        assert_eq!(iv.width(), 10);
        assert!(iv.ended_by(Chronon(20)));
        assert!(!iv.ended_by(Chronon(19)));
        assert!(Interval::new(Chronon(5), Chronon(5)).is_err());
    }

    #[test]
    fn monthly_calendar_non_overlapping() {
        // "Months" of 30 ticks starting at 0.
        let cal = Calendar::every(Chronon(0), 30).unwrap();
        assert!(!cal.is_finite());
        assert_eq!(
            cal.interval(0).unwrap().unwrap(),
            Interval::new(Chronon(0), Chronon(30)).unwrap()
        );
        assert_eq!(cal.interval(2).unwrap().unwrap().start, Chronon(60));
        assert_eq!(cal.intervals_containing(Chronon(0)), vec![0]);
        assert_eq!(cal.intervals_containing(Chronon(29)), vec![0]);
        assert_eq!(cal.intervals_containing(Chronon(30)), vec![1]);
        assert_eq!(cal.intervals_containing(Chronon(-1)), Vec::<u64>::new());
    }

    #[test]
    fn sliding_calendar_overlapping() {
        // 30-tick window stepping daily (1 tick): chronon 35 is inside
        // windows starting at 6..=35, i.e. indices 6..=35.
        let cal = Calendar::sliding(Chronon(0), 30, 1).unwrap();
        let hits = cal.intervals_containing(Chronon(35));
        assert_eq!(hits.len(), 30);
        assert_eq!(*hits.first().unwrap(), 6);
        assert_eq!(*hits.last().unwrap(), 35);
        // Early chronons fall in fewer windows (no negative indices).
        assert_eq!(cal.intervals_containing(Chronon(3)).len(), 4);
    }

    #[test]
    fn finite_calendar_bounds() {
        let cal = Calendar::periodic(Chronon(0), 10, 10, Some(3)).unwrap();
        assert!(cal.is_finite());
        assert!(cal.interval(2).unwrap().is_some());
        assert!(cal.interval(3).unwrap().is_none());
        assert_eq!(cal.intervals_containing(Chronon(35)), Vec::<u64>::new());
    }

    #[test]
    fn explicit_calendar_sorted_and_queried() {
        let cal = Calendar::explicit(vec![
            Interval::new(Chronon(50), Chronon(60)).unwrap(),
            Interval::new(Chronon(0), Chronon(100)).unwrap(),
        ])
        .unwrap();
        assert_eq!(cal.intervals_containing(Chronon(55)), vec![0, 1]);
        assert_eq!(cal.intervals_containing(Chronon(5)), vec![0]);
        assert!(Calendar::explicit(vec![]).is_err());
    }

    #[test]
    fn ended_before_retires_in_order() {
        let cal = Calendar::every(Chronon(0), 10).unwrap();
        assert_eq!(cal.ended_before(Chronon(25), 0), vec![0, 1]);
        assert_eq!(cal.ended_before(Chronon(25), 2), Vec::<u64>::new());
        assert_eq!(cal.ended_before(Chronon(9), 0), Vec::<u64>::new());
    }

    #[test]
    fn degenerate_single_interval() {
        let cal = Calendar::single(Interval::new(Chronon(0), Chronon(10)).unwrap());
        assert!(cal.is_finite());
        assert_eq!(cal.intervals_containing(Chronon(5)), vec![0]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Calendar::periodic(Chronon(0), 0, 1, None).is_err());
        assert!(Calendar::periodic(Chronon(0), 1, 0, None).is_err());
        assert!(Calendar::periodic(Chronon(0), 1, 1, Some(0)).is_err());
    }

    #[test]
    fn interval_near_i64_max_is_a_typed_error_not_a_wrap() {
        // step == width == 4, anchor 10 ticks below the chronon ceiling:
        // intervals 0 and 1 still fit, interval 2 would end past i64::MAX.
        let cal = Calendar::every(Chronon(i64::MAX - 10), 4).unwrap();
        assert_eq!(
            cal.interval(0).unwrap().unwrap(),
            Interval::new(Chronon(i64::MAX - 10), Chronon(i64::MAX - 6)).unwrap()
        );
        assert!(cal.interval(1).unwrap().is_some());
        assert!(matches!(
            cal.interval(2),
            Err(ChronicleError::CalendarOutOfRange { index: 2, .. })
        ));
        // A huge index overflows by many orders of magnitude — still a
        // typed error, not a debug panic or a silent release wrap.
        assert!(matches!(
            cal.interval(u64::MAX),
            Err(ChronicleError::CalendarOutOfRange { .. })
        ));
        // Retirement scans stop cleanly at the representability horizon.
        assert_eq!(cal.ended_before(Chronon(i64::MAX), 0), vec![0, 1]);
    }

    #[test]
    fn containment_stays_exact_across_the_full_chronon_span() {
        // Anchor at i64::MIN, windows of 2^32 ticks: `t - anchor` exceeds
        // i64 for late chronons, which used to overflow before the i128
        // index arithmetic.
        let w = 1i64 << 32;
        let cal = Calendar::every(Chronon(i64::MIN), w).unwrap();
        let t = Chronon(i64::MAX - w);
        let hits = cal.intervals_containing(t);
        assert_eq!(hits, vec![(1u64 << 32) - 2]);
        let iv = cal.interval(hits[0]).unwrap().unwrap();
        assert!(iv.contains(t));
    }

    #[test]
    fn gapped_calendar() {
        // Width 5, step 10: gaps between windows.
        let cal = Calendar::periodic(Chronon(0), 5, 10, None).unwrap();
        assert_eq!(cal.intervals_containing(Chronon(3)), vec![0]);
        assert_eq!(cal.intervals_containing(Chronon(7)), Vec::<u64>::new());
        assert_eq!(cal.intervals_containing(Chronon(12)), vec![1]);
    }
}
