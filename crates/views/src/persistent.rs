//! Materialized persistent views.
//!
//! A persistent view stores *only itself* (Theorem 4.4's space bound): for a
//! group-aggregation view, an ordered map from group key to decomposed
//! accumulator states; for a projection view, an ordered map from row to
//! multiplicity (so set semantics survive insert-only maintenance). The
//! underlying chronicle and the chronicle-algebra intermediates are never
//! stored.
//!
//! The ordered map (B-tree) realizes the paper's `O(t · log|V|)` apply
//! bound: one ordered-index probe per affected group/row.

use std::collections::BTreeMap;

use crate::codec::{ReaderExt as _, WriterExt as _};
use chronicle_algebra::delta::SummaryDelta;
use chronicle_algebra::eval::seq_to_int;
use chronicle_algebra::{Accumulator, ScaExpr, Summarize, WorkCounter};
use chronicle_store::Catalog;
use chronicle_types::{ChronicleError, Result, Schema, Tuple, Value, ViewId};

/// The materialized state of one SCA persistent view.
#[derive(Debug)]
pub struct PersistentView {
    id: ViewId,
    name: String,
    expr: ScaExpr,
    state: ViewState,
    /// Batches applied (diagnostics).
    applied_batches: u64,
}

#[derive(Debug)]
enum ViewState {
    /// GROUPBY summarization: group key → accumulators.
    Groups(BTreeMap<Vec<Value>, Vec<Accumulator>>),
    /// Projection summarization: row → signed multiplicity. Chronicle
    /// appends only add, but the state is Z-set-shaped so the same apply
    /// path absorbs signed deltas; a row whose multiplicity reaches zero is
    /// removed (unless the `skip_consolidation` mutation is active — the
    /// lingering zero-count row is then *visible* through [`PersistentView::rows`],
    /// which is what lets the differential suite catch the mutation).
    Counts(BTreeMap<Tuple, i64>),
}

impl PersistentView {
    /// Create an empty view for `expr`.
    pub fn new(id: ViewId, name: impl Into<String>, expr: ScaExpr) -> Self {
        let state = match expr.summarize() {
            Summarize::GroupAgg { .. } => ViewState::Groups(BTreeMap::new()),
            Summarize::Project { .. } => ViewState::Counts(BTreeMap::new()),
        };
        PersistentView {
            id,
            name: name.into(),
            expr,
            state,
            applied_batches: 0,
        }
    }

    /// View id.
    pub fn id(&self) -> ViewId {
        self.id
    }

    /// View name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining SCA expression.
    pub fn expr(&self) -> &ScaExpr {
        &self.expr
    }

    /// The view's (relation) schema.
    pub fn schema(&self) -> &Schema {
        self.expr.schema()
    }

    /// Number of rows (groups / distinct projected rows) currently
    /// materialized — the `|V|` of Theorem 4.4.
    pub fn len(&self) -> usize {
        match &self.state {
            ViewState::Groups(g) => g.len(),
            ViewState::Counts(c) => c.len(),
        }
    }

    /// True iff the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of delta batches applied so far.
    pub fn applied_batches(&self) -> u64 {
        self.applied_batches
    }

    /// Apply a summarized delta — the Theorem 4.4 step. `O(t)` ordered-map
    /// probes, `t` = affected groups/rows; each probe is `O(log |V|)`.
    /// Work is charged per logical tuple (by |weight|), so batch-internal
    /// consolidation never perturbs the counters.
    pub fn apply(&mut self, delta: &SummaryDelta, work: &mut WorkCounter) -> Result<()> {
        match (&mut self.state, delta, self.expr.summarize()) {
            (
                ViewState::Groups(groups),
                SummaryDelta::Groups(batch),
                Summarize::GroupAgg { aggs, .. },
            ) => {
                for (key, members) in batch {
                    work.index_probes += 1; // one O(log|V|) group lookup
                    let accs = groups
                        .entry(key.clone())
                        .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect());
                    for (t, w) in members.iter() {
                        work.tuples_in += w.unsigned_abs();
                        for acc in accs.iter_mut() {
                            acc.update_weighted(t, w)?;
                        }
                    }
                }
            }
            (ViewState::Counts(counts), SummaryDelta::Rows(rows), Summarize::Project { .. }) => {
                for (row, w) in rows.iter() {
                    work.index_probes += 1;
                    work.tuples_in += w.unsigned_abs();
                    let m = counts.entry(row.clone()).or_insert(0);
                    *m += w;
                    if *m == 0 && !chronicle_algebra::zset::consolidation_disabled() {
                        counts.remove(row);
                    }
                }
            }
            _ => {
                return Err(ChronicleError::Internal(format!(
                    "delta kind does not match view `{}` summarization",
                    self.name
                )))
            }
        }
        self.applied_batches += 1;
        Ok(())
    }

    /// Materialize the full current contents as relation rows (group keys +
    /// finalized aggregates, or distinct projected rows), in index order.
    pub fn rows(&self) -> Vec<Tuple> {
        match &self.state {
            ViewState::Groups(groups) => groups
                .iter()
                .map(|(key, accs)| {
                    let mut row = key.clone();
                    row.extend(accs.iter().map(|a| seq_to_int(a.finalize())));
                    Tuple::new(row)
                })
                .collect(),
            ViewState::Counts(counts) => counts.keys().cloned().collect(),
        }
    }

    /// Point lookup of one group's finalized row (the sub-second summary
    /// query of §1). `O(log |V|)`.
    pub fn get(&self, key: &[Value]) -> Option<Tuple> {
        match &self.state {
            ViewState::Groups(groups) => groups.get(key).map(|accs| {
                let mut row = key.to_vec();
                row.extend(accs.iter().map(|a| seq_to_int(a.finalize())));
                Tuple::new(row)
            }),
            ViewState::Counts(counts) => {
                let t = Tuple::new(key.to_vec());
                counts.contains_key(&t).then_some(t)
            }
        }
    }

    /// A single aggregate value of one group (convenience for summary
    /// fields like `minutes_called` / `dollar_balance`).
    pub fn get_agg(&self, key: &[Value], agg_index: usize) -> Option<Value> {
        match &self.state {
            ViewState::Groups(groups) => groups
                .get(key)
                .and_then(|accs| accs.get(agg_index))
                .map(|a| seq_to_int(a.finalize())),
            ViewState::Counts(_) => None,
        }
    }

    /// Bootstrap the view from fully stored chronicles (used when a view is
    /// defined *after* data already exists — "materialized when it is
    /// initially defined", §2.1). Requires `Retention::All` on every base
    /// chronicle; otherwise returns the underlying
    /// [`ChronicleError::ChronicleNotStored`].
    pub fn bootstrap(&mut self, catalog: &Catalog) -> Result<()> {
        let chron_rows = chronicle_algebra::eval::eval_ca(catalog, self.expr.ca())?;
        match (&mut self.state, self.expr.summarize()) {
            (ViewState::Groups(groups), Summarize::GroupAgg { group_cols, aggs }) => {
                groups.clear();
                for t in &chron_rows {
                    let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                    let accs = groups
                        .entry(key)
                        .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect());
                    for acc in accs.iter_mut() {
                        acc.update(t)?;
                    }
                }
            }
            (ViewState::Counts(counts), Summarize::Project { cols }) => {
                counts.clear();
                for t in &chron_rows {
                    *counts.entry(t.project(cols)).or_insert(0) += 1;
                }
            }
            _ => unreachable!("state always matches summarize"),
        }
        Ok(())
    }

    /// The signed multiplicity of a projected row (projection views only) —
    /// exposes the counting mechanism for tests and ablations.
    pub fn multiplicity(&self, row: &Tuple) -> Option<i64> {
        match &self.state {
            ViewState::Counts(c) => c.get(row).copied(),
            ViewState::Groups(_) => None,
        }
    }

    /// Serialize the materialized state (not the defining expression) into
    /// a self-describing byte snapshot. Persistent views are the only
    /// durable state of a chronicle system — the chronicle is not stored —
    /// so snapshot + restore is what makes restarts possible.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = crate::codec::Writer::new();
        w.str("CHRV1");
        w.u64(self.applied_batches);
        match &self.state {
            ViewState::Groups(groups) => {
                w.u8(0);
                w.u64(groups.len() as u64);
                for (key, accs) in groups {
                    w.u32(key.len() as u32);
                    for v in key {
                        w.value(v);
                    }
                    w.u32(accs.len() as u32);
                    for acc in accs {
                        w.accumulator(acc);
                    }
                }
            }
            ViewState::Counts(counts) => {
                w.u8(1);
                w.u64(counts.len() as u64);
                for (row, n) in counts {
                    w.tuple(row);
                    w.i64(*n);
                }
            }
        }
        w.into_bytes()
    }

    /// Restore a snapshot produced by [`PersistentView::snapshot`] into a
    /// fresh view over the *same* defining expression. Fails on magic,
    /// kind, or structural mismatch.
    pub fn restore(
        id: ViewId,
        name: impl Into<String>,
        expr: ScaExpr,
        bytes: &[u8],
    ) -> Result<PersistentView> {
        let mut view = PersistentView::new(id, name, expr);
        let mut r = crate::codec::Reader::new(bytes);
        let magic = r.str()?;
        if magic != "CHRV1" {
            return Err(ChronicleError::Internal(format!(
                "bad snapshot magic `{magic}`"
            )));
        }
        view.applied_batches = r.u64()?;
        let kind = r.u8()?;
        match (&mut view.state, kind, view.expr.summarize()) {
            (ViewState::Groups(groups), 0, Summarize::GroupAgg { aggs, .. }) => {
                let n = r.u64()?;
                for _ in 0..n {
                    let klen = r.u32()? as usize;
                    let mut key = Vec::with_capacity(klen);
                    for _ in 0..klen {
                        key.push(r.value()?);
                    }
                    let alen = r.u32()? as usize;
                    if alen != aggs.len() {
                        return Err(ChronicleError::Internal(format!(
                            "snapshot has {alen} accumulators per group, view declares {}",
                            aggs.len()
                        )));
                    }
                    let mut accs = Vec::with_capacity(alen);
                    for spec in aggs {
                        let acc = r.accumulator()?;
                        if acc.func() != spec.func {
                            return Err(ChronicleError::Internal(format!(
                                "snapshot accumulator {} does not match view aggregate {}",
                                acc.func(),
                                spec.func
                            )));
                        }
                        accs.push(acc);
                    }
                    groups.insert(key, accs);
                }
            }
            (ViewState::Counts(counts), 1, Summarize::Project { .. }) => {
                let n = r.u64()?;
                for _ in 0..n {
                    let row = r.tuple()?;
                    let m = r.i64()?;
                    counts.insert(row, m);
                }
            }
            _ => {
                return Err(ChronicleError::Internal(
                    "snapshot kind does not match the view's summarization".into(),
                ))
            }
        }
        if !r.at_end() {
            return Err(ChronicleError::Internal(
                "trailing bytes after snapshot".into(),
            ));
        }
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_algebra::{AggFunc, AggSpec, CaExpr, DeltaBatch};
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{tuple, AttrType, Attribute, ChronicleId, Chronon, SeqNo};

    fn setup(retention: Retention) -> (Catalog, ChronicleId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c = cat.create_chronicle("calls", g, cs, retention).unwrap();
        (cat, c)
    }

    fn sum_view(cat: &Catalog, c: ChronicleId) -> PersistentView {
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["caller"],
            vec![
                AggSpec::new(AggFunc::Sum(2), "total"),
                AggSpec::new(AggFunc::CountStar, "n"),
            ],
        )
        .unwrap();
        PersistentView::new(ViewId(0), "totals", expr)
    }

    fn apply_batch(
        view: &mut PersistentView,
        cat: &Catalog,
        c: ChronicleId,
        seq: u64,
        rows: Vec<Tuple>,
    ) -> WorkCounter {
        let engine = chronicle_algebra::delta::DeltaEngine::new(cat);
        let batch = DeltaBatch {
            chronicle: c,
            seq: SeqNo(seq),
            tuples: rows,
        };
        let mut w = WorkCounter::default();
        let d = engine.delta_sca(view.expr(), &batch, &mut w).unwrap();
        view.apply(&d, &mut w).unwrap();
        w
    }

    #[test]
    fn group_view_accumulates() {
        let (cat, c) = setup(Retention::None);
        let mut v = sum_view(&cat, c);
        apply_batch(&mut v, &cat, c, 1, vec![tuple![SeqNo(1), 555i64, 2.0f64]]);
        apply_batch(&mut v, &cat, c, 2, vec![tuple![SeqNo(2), 555i64, 3.0f64]]);
        apply_batch(&mut v, &cat, c, 3, vec![tuple![SeqNo(3), 777i64, 9.0f64]]);
        assert_eq!(v.len(), 2);
        let row = v.get(&[Value::Int(555)]).unwrap();
        assert_eq!(row.get(1).as_float(), Some(5.0));
        assert_eq!(row.get(2).as_int(), Some(2));
        assert_eq!(v.get_agg(&[Value::Int(777)], 0), Some(Value::Float(9.0)));
        assert_eq!(v.get(&[Value::Int(999)]), None);
        assert_eq!(v.applied_batches(), 3);
    }

    #[test]
    fn rows_are_ordered_by_key() {
        let (cat, c) = setup(Retention::None);
        let mut v = sum_view(&cat, c);
        apply_batch(&mut v, &cat, c, 1, vec![tuple![SeqNo(1), 777i64, 1.0f64]]);
        apply_batch(&mut v, &cat, c, 2, vec![tuple![SeqNo(2), 555i64, 1.0f64]]);
        let rows = v.rows();
        assert_eq!(rows[0].get(0).as_int(), Some(555));
        assert_eq!(rows[1].get(0).as_int(), Some(777));
    }

    #[test]
    fn projection_view_counts_multiplicity() {
        let (cat, c) = setup(Retention::None);
        let expr = ScaExpr::project(CaExpr::chronicle(cat.chronicle(c)), &["caller"]).unwrap();
        let mut v = PersistentView::new(ViewId(1), "callers", expr);
        apply_batch(&mut v, &cat, c, 1, vec![tuple![SeqNo(1), 555i64, 2.0f64]]);
        apply_batch(&mut v, &cat, c, 2, vec![tuple![SeqNo(2), 555i64, 3.0f64]]);
        assert_eq!(v.len(), 1, "set semantics: one distinct row");
        assert_eq!(v.multiplicity(&tuple![555i64]), Some(2));
        assert!(v.get(&[Value::Int(555)]).is_some());
        assert!(v.get(&[Value::Int(777)]).is_none());
    }

    #[test]
    fn apply_work_counts_one_probe_per_group() {
        let (cat, c) = setup(Retention::None);
        let mut v = sum_view(&cat, c);
        let w = apply_batch(
            &mut v,
            &cat,
            c,
            1,
            vec![
                tuple![SeqNo(1), 555i64, 1.0f64],
                tuple![SeqNo(1), 555i64, 2.0f64],
                tuple![SeqNo(1), 777i64, 3.0f64],
            ],
        );
        // delta_sca buckets into 2 groups -> apply performs 2 probes.
        assert_eq!(w.index_probes, 2);
    }

    #[test]
    fn bootstrap_from_stored_chronicle() {
        let (mut cat, c) = setup(Retention::All);
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 555i64, 2.0f64]])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 555i64, 3.0f64]])
            .unwrap();
        let mut v = sum_view(&cat, c);
        v.bootstrap(&cat).unwrap();
        assert_eq!(v.get_agg(&[Value::Int(555)], 0), Some(Value::Float(5.0)));
        // Incremental continuation after bootstrap agrees with the oracle.
        cat.append(c, Chronon(3), &[tuple![SeqNo(3), 555i64, 5.0f64]])
            .unwrap();
        apply_batch(&mut v, &cat, c, 3, vec![tuple![SeqNo(3), 555i64, 5.0f64]]);
        let oracle = chronicle_algebra::eval::canon(
            chronicle_algebra::eval::eval_sca(&cat, v.expr()).unwrap(),
        );
        assert_eq!(chronicle_algebra::eval::canon(v.rows()), oracle);
    }

    #[test]
    fn bootstrap_fails_without_retention() {
        let (mut cat, c) = setup(Retention::None);
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 555i64, 2.0f64]])
            .unwrap();
        let mut v = sum_view(&cat, c);
        assert!(matches!(
            v.bootstrap(&cat).unwrap_err(),
            ChronicleError::ChronicleNotStored { .. }
        ));
    }

    #[test]
    fn snapshot_round_trip_group_view() {
        let (cat, c) = setup(Retention::None);
        let mut v = sum_view(&cat, c);
        apply_batch(&mut v, &cat, c, 1, vec![tuple![SeqNo(1), 555i64, 2.0f64]]);
        apply_batch(&mut v, &cat, c, 2, vec![tuple![SeqNo(2), 777i64, 9.0f64]]);
        let bytes = v.snapshot();
        let restored =
            PersistentView::restore(ViewId(9), "totals", v.expr().clone(), &bytes).unwrap();
        assert_eq!(restored.rows(), v.rows());
        assert_eq!(restored.applied_batches(), v.applied_batches());
        // The restored view keeps maintaining correctly.
        let mut restored = restored;
        apply_batch(
            &mut restored,
            &cat,
            c,
            3,
            vec![tuple![SeqNo(3), 555i64, 1.0f64]],
        );
        assert_eq!(
            restored.get_agg(&[Value::Int(555)], 0),
            Some(Value::Float(3.0))
        );
    }

    #[test]
    fn snapshot_round_trip_projection_view() {
        let (cat, c) = setup(Retention::None);
        let expr = ScaExpr::project(CaExpr::chronicle(cat.chronicle(c)), &["caller"]).unwrap();
        let mut v = PersistentView::new(ViewId(1), "callers", expr.clone());
        apply_batch(&mut v, &cat, c, 1, vec![tuple![SeqNo(1), 555i64, 2.0f64]]);
        apply_batch(&mut v, &cat, c, 2, vec![tuple![SeqNo(2), 555i64, 3.0f64]]);
        let bytes = v.snapshot();
        let restored = PersistentView::restore(ViewId(2), "callers", expr, &bytes).unwrap();
        assert_eq!(restored.multiplicity(&tuple![555i64]), Some(2));
    }

    #[test]
    fn snapshot_kind_mismatch_rejected() {
        let (cat, c) = setup(Retention::None);
        let group_view = sum_view(&cat, c);
        let bytes = group_view.snapshot();
        let proj_expr = ScaExpr::project(CaExpr::chronicle(cat.chronicle(c)), &["caller"]).unwrap();
        assert!(PersistentView::restore(ViewId(3), "x", proj_expr, &bytes).is_err());
        // Corrupted magic.
        let mut bad = bytes.clone();
        bad[5] = b'X';
        assert!(PersistentView::restore(ViewId(4), "x", group_view.expr().clone(), &bad).is_err());
        // Truncated.
        assert!(PersistentView::restore(
            ViewId(5),
            "x",
            group_view.expr().clone(),
            &bytes[..bytes.len() - 2]
        )
        .is_err());
    }

    #[test]
    fn mismatched_delta_kind_rejected() {
        let (cat, c) = setup(Retention::None);
        let mut v = sum_view(&cat, c);
        let bogus = SummaryDelta::Rows(chronicle_algebra::ZSet::singleton(tuple![1i64], 1));
        let mut w = WorkCounter::default();
        assert!(matches!(
            v.apply(&bogus, &mut w).unwrap_err(),
            ChronicleError::Internal(_)
        ));
        let _ = c;
    }
}
