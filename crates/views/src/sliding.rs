//! The cyclic-buffer optimization for overlapping windows (§5.1).
//!
//! *"Consider a periodic view for every day that computes the total number
//! of shares of a stock sold during the 30 days preceding that day. ... we
//! should keep the total number of shares sold for each of the last 30 days
//! separately, and derive the view as the sum of these 30 numbers. Moving
//! from one periodic view to the next one involves shifting a cyclic buffer
//! of these 30 numbers."*
//!
//! [`SlidingWindow`] generalizes the quoted trick to any decomposable
//! aggregate (SUM, COUNT, MIN, MAX, AVG, STDDEV — anything
//! [`Accumulator::merge`] supports) and to per-group keys: per key it keeps
//! `k = width/step` bucket sub-accumulators in a ring; appends touch one
//! bucket (O(#aggs)); window rollover pops expired buckets (amortized
//! O(1)); a window query merges the `k` buckets (O(k·#aggs)).
//!
//! **Bucket retirement is a negative-weight delta.** For the retractable
//! aggregates (COUNT/SUM/AVG/STDDEV — the group-structured ones) each ring
//! also carries a *running window total*; a retiring bucket is not simply
//! dropped but **unmerged** from that total ([`Accumulator::unmerge`], the
//! `−1`-weighted inverse of merge), exactly the Z-set retraction that
//! relation deletes use. A whole-window query at the ring's frontier then
//! reads the running total in O(#aggs) instead of re-merging `k` buckets.
//! Non-retractable aggregates (MIN/MAX — no inverse: the retiring bucket
//! may hold the witness) keep the merge-scan, which stays exact because
//! buckets are disjoint.
//!
//! Contrast with [`crate::PeriodicViewSet`] over a sliding calendar, which
//! maintains one full view per overlapping window and hence does
//! `width/step` times the work per append — the comparison is experiment E8.

use std::collections::{BTreeMap, VecDeque};

use chronicle_algebra::eval::seq_to_int;
use chronicle_algebra::{Accumulator, AggFunc};
use chronicle_types::{ChronicleError, Chronon, Result, Tuple, Value};

/// Per-key ring of bucket sub-accumulators.
#[derive(Debug)]
struct Ring {
    /// Bucket index (global, since anchor) of the front of `buckets`.
    front_bucket: i64,
    buckets: VecDeque<Vec<Accumulator>>,
    /// Running merge of every bucket currently in the ring, maintained at
    /// the retractable aggregate positions only (the others stay at their
    /// initial state and are never consulted). Retirement subtracts the
    /// departing bucket via `unmerge` — an ordinary negative-weight delta.
    totals: Vec<Accumulator>,
}

/// A keyed sliding-window aggregate with bucketed sub-aggregation.
#[derive(Debug)]
pub struct SlidingWindow {
    /// Window width in buckets (`k`).
    window_buckets: usize,
    /// Bucket width in chronon ticks (the calendar step).
    bucket_ticks: i64,
    /// Chronon of bucket 0's start.
    anchor: Chronon,
    /// Aggregates maintained per key.
    aggs: Vec<AggFunc>,
    /// Key columns within inserted tuples.
    key_cols: Vec<usize>,
    /// `retractable[i]` ⇔ `aggs[i]` has an exact inverse (running totals
    /// are maintained only at these positions).
    retractable: Vec<bool>,
    rings: BTreeMap<Vec<Value>, Ring>,
    /// Total accumulator updates performed (work accounting for E8; counts
    /// bucket folds only, not running-total bookkeeping).
    updates: u64,
    /// Accumulators retracted out of running totals by bucket retirement
    /// (each is one negative-weight delta application).
    retractions: u64,
}

impl SlidingWindow {
    /// A window covering `window_buckets` buckets of `bucket_ticks` ticks
    /// each (e.g. 30 buckets × 1 day), keyed by `key_cols` of the inserted
    /// tuples, maintaining `aggs`.
    pub fn new(
        anchor: Chronon,
        window_buckets: usize,
        bucket_ticks: i64,
        key_cols: Vec<usize>,
        aggs: Vec<AggFunc>,
    ) -> Result<Self> {
        if window_buckets == 0 || bucket_ticks <= 0 {
            return Err(ChronicleError::InvalidSchema(format!(
                "sliding window needs positive dimensions, got {window_buckets} × {bucket_ticks}"
            )));
        }
        if aggs.is_empty() {
            return Err(ChronicleError::BadAggregate {
                detail: "sliding window needs at least one aggregate".into(),
            });
        }
        let retractable = aggs.iter().map(|f| f.is_retractable()).collect();
        Ok(SlidingWindow {
            window_buckets,
            bucket_ticks,
            anchor,
            aggs,
            key_cols,
            retractable,
            rings: BTreeMap::new(),
            updates: 0,
            retractions: 0,
        })
    }

    fn bucket_of(&self, at: Chronon) -> i64 {
        (at.0 - self.anchor.0).div_euclid(self.bucket_ticks)
    }

    /// Fold one tuple observed at chronon `at` into its key's current
    /// bucket. O(#aggs) amortized.
    pub fn insert(&mut self, at: Chronon, tuple: &Tuple) -> Result<()> {
        let bucket = self.bucket_of(at);
        let key: Vec<Value> = self
            .key_cols
            .iter()
            .map(|&c| tuple.get(c).clone())
            .collect();
        let aggs = &self.aggs;
        let retractable = &self.retractable;
        let ring = self.rings.entry(key).or_insert_with(|| Ring {
            front_bucket: bucket,
            buckets: VecDeque::new(),
            totals: aggs.iter().map(|&f| Accumulator::new(f)).collect(),
        });
        if ring.buckets.is_empty() {
            ring.front_bucket = bucket;
            ring.buckets
                .push_back(aggs.iter().map(|&f| Accumulator::new(f)).collect());
        } else {
            let last = ring.front_bucket + ring.buckets.len() as i64 - 1;
            if bucket < last {
                // Bucket indices are signed (chronons before `anchor` land in
                // negative buckets), so the error must carry them as i64 — an
                // `as u64` cast here turned bucket -3 into 2^64-3.
                return Err(ChronicleError::NonMonotonicBucket {
                    newest: last,
                    attempted: bucket,
                });
            }
            if bucket - last >= self.window_buckets as i64 {
                // The gap exceeds the window: every existing bucket has
                // expired, so reset in O(1) instead of sliding one bucket
                // at a time. Resetting the totals is the consolidated form
                // of unmerging every bucket individually.
                ring.buckets.clear();
                ring.front_bucket = bucket;
                ring.buckets
                    .push_back(aggs.iter().map(|&f| Accumulator::new(f)).collect());
                ring.totals = aggs.iter().map(|&f| Accumulator::new(f)).collect();
            } else {
                // Extend the ring up to `bucket`, retiring buckets older
                // than the window as it slides (≤ window_buckets steps).
                // Each retirement is a negative-weight delta: the departing
                // bucket is *unmerged* from the running totals, the same
                // retraction a relation delete drives through a view.
                while ring.front_bucket + (ring.buckets.len() as i64) <= bucket {
                    ring.buckets
                        .push_back(aggs.iter().map(|&f| Accumulator::new(f)).collect());
                    if ring.buckets.len() > self.window_buckets {
                        let retired = ring.buckets.pop_front().expect("len > window ≥ 1");
                        ring.front_bucket += 1;
                        for (i, acc) in retired.iter().enumerate() {
                            if retractable[i] {
                                ring.totals[i].unmerge(acc)?;
                                self.retractions += 1;
                            }
                        }
                    }
                }
            }
        }
        let back = ring.buckets.back_mut().expect("ring non-empty");
        for acc in back.iter_mut() {
            acc.update(tuple)?;
            self.updates += 1;
        }
        for (i, acc) in ring.totals.iter_mut().enumerate() {
            if retractable[i] {
                acc.update(tuple)?;
            }
        }
        Ok(())
    }

    /// The window aggregate for `key` as of chronon `now`: merge of the
    /// buckets inside `[now − window, now]`.
    ///
    /// When that range covers the whole ring — the common "query at the
    /// frontier" case — retractable aggregates read the running totals in
    /// O(#aggs); otherwise (and always for MIN/MAX) the in-range buckets
    /// are merged, O(window_buckets · #aggs).
    pub fn query(&self, key: &[Value], now: Chronon) -> Result<Vec<Value>> {
        let current = self.bucket_of(now);
        let oldest = current - self.window_buckets as i64 + 1;
        let mut merged: Vec<Accumulator> = self.aggs.iter().map(|&f| Accumulator::new(f)).collect();
        if let Some(ring) = self.rings.get(key) {
            let last = ring.front_bucket + ring.buckets.len() as i64 - 1;
            let covered =
                !ring.buckets.is_empty() && ring.front_bucket >= oldest && last <= current;
            for (i, m) in merged.iter_mut().enumerate() {
                if covered && self.retractable[i] {
                    *m = ring.totals[i].clone();
                    continue;
                }
                for (j, bucket) in ring.buckets.iter().enumerate() {
                    let b = ring.front_bucket + j as i64;
                    if b >= oldest && b <= current {
                        m.merge(&bucket[i])?;
                    }
                }
            }
        }
        Ok(merged.iter().map(|a| seq_to_int(a.finalize())).collect())
    }

    /// Number of keys tracked.
    pub fn key_count(&self) -> usize {
        self.rings.len()
    }

    /// Total accumulator updates performed (the per-append work metric).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Accumulators retracted from running totals by bucket retirement —
    /// how many negative-weight deltas window expiration has driven.
    pub fn retractions(&self) -> u64 {
        self.retractions
    }

    /// The window width in ticks.
    pub fn window_ticks(&self) -> i64 {
        self.window_buckets as i64 * self.bucket_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn window() -> SlidingWindow {
        // 3 buckets of 10 ticks: a 30-tick window.
        SlidingWindow::new(
            Chronon(0),
            3,
            10,
            vec![0],
            vec![AggFunc::Sum(1), AggFunc::CountStar, AggFunc::Max(1)],
        )
        .unwrap()
    }

    #[test]
    fn aggregates_within_window() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(11), &tuple![7i64, 50i64]).unwrap();
        w.insert(Chronon(21), &tuple![7i64, 25i64]).unwrap();
        let v = w.query(&[Value::Int(7)], Chronon(25)).unwrap();
        assert_eq!(v, vec![Value::Int(175), Value::Int(3), Value::Int(100)]);
    }

    #[test]
    fn old_buckets_fall_out() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(35), &tuple![7i64, 50i64]).unwrap();
        // At t=35 (bucket 3), the window covers buckets 1..=3; bucket 0
        // (the 100-share trade) has slid out.
        let v = w.query(&[Value::Int(7)], Chronon(35)).unwrap();
        assert_eq!(v[0], Value::Int(50));
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn query_respects_now_even_mid_ring() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 10i64]).unwrap();
        w.insert(Chronon(11), &tuple![7i64, 20i64]).unwrap();
        // Query as of bucket 4: only buckets 2..=4 count; both trades are
        // older, but bucket 1 (t=11) is outside [2,4] while the ring still
        // holds it.
        let v = w.query(&[Value::Int(7)], Chronon(45)).unwrap();
        assert_eq!(v[0], Value::Null, "empty SUM is NULL");
        assert_eq!(v[1], Value::Int(0));
        // As of bucket 1, both buckets 0 and 1 are in range... window is
        // buckets -1..=1, so sum = 30.
        let v = w.query(&[Value::Int(7)], Chronon(15)).unwrap();
        assert_eq!(v[0], Value::Int(30));
    }

    #[test]
    fn keys_are_independent() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(1), &tuple![8i64, 1i64]).unwrap();
        assert_eq!(w.key_count(), 2);
        let v7 = w.query(&[Value::Int(7)], Chronon(5)).unwrap();
        let v8 = w.query(&[Value::Int(8)], Chronon(5)).unwrap();
        assert_eq!(v7[0], Value::Int(100));
        assert_eq!(v8[0], Value::Int(1));
        let missing = w.query(&[Value::Int(9)], Chronon(5)).unwrap();
        assert_eq!(missing[1], Value::Int(0));
    }

    #[test]
    fn min_max_correct_across_bucket_expiry() {
        // MAX over a sliding window is exact because buckets are disjoint:
        // when the max-holding bucket expires, the merge of the remaining
        // buckets yields the true new max.
        let mut w = SlidingWindow::new(Chronon(0), 2, 10, vec![0], vec![AggFunc::Max(1)]).unwrap();
        w.insert(Chronon(5), &tuple![1i64, 999i64]).unwrap();
        w.insert(Chronon(15), &tuple![1i64, 7i64]).unwrap();
        assert_eq!(
            w.query(&[Value::Int(1)], Chronon(15)).unwrap()[0],
            Value::Int(999)
        );
        w.insert(Chronon(25), &tuple![1i64, 3i64]).unwrap();
        // Bucket 0 (999) expired; max of buckets 1..=2 is 7.
        assert_eq!(
            w.query(&[Value::Int(1)], Chronon(25)).unwrap()[0],
            Value::Int(7)
        );
    }

    #[test]
    fn out_of_order_insert_rejected() {
        let mut w = window();
        w.insert(Chronon(25), &tuple![7i64, 1i64]).unwrap();
        assert!(w.insert(Chronon(5), &tuple![7i64, 1i64]).is_err());
        // Same-bucket insert is fine.
        w.insert(Chronon(29), &tuple![7i64, 1i64]).unwrap();
    }

    #[test]
    fn before_anchor_inserts_use_signed_buckets() {
        // Chronons before the anchor land in negative buckets; the ring
        // handles them like any other signed index.
        let mut w = window();
        w.insert(Chronon(-25), &tuple![7i64, 100i64]).unwrap(); // bucket -3
        w.insert(Chronon(-15), &tuple![7i64, 50i64]).unwrap(); // bucket -2
        let v = w.query(&[Value::Int(7)], Chronon(-11)).unwrap();
        assert_eq!(v[0], Value::Int(150));
        assert_eq!(v[1], Value::Int(2));
    }

    #[test]
    fn negative_bucket_error_is_signed() {
        // Regression: the out-of-order error used to cast the signed bucket
        // indices through `as u64`, so an insert at bucket -3 reported
        // `attempted: 18446744073709551613`.
        let mut w = window();
        w.insert(Chronon(25), &tuple![7i64, 1i64]).unwrap(); // bucket 2
        let err = w.insert(Chronon(-25), &tuple![7i64, 1i64]).unwrap_err();
        match err {
            ChronicleError::NonMonotonicBucket { newest, attempted } => {
                assert_eq!(newest, 2);
                assert_eq!(attempted, -3);
            }
            other => panic!("expected NonMonotonicBucket, got {other:?}"),
        }
    }

    #[test]
    fn big_time_jump_clears_ring() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(1000), &tuple![7i64, 5i64]).unwrap();
        let v = w.query(&[Value::Int(7)], Chronon(1000)).unwrap();
        assert_eq!(v[0], Value::Int(5));
        // Ring stayed bounded.
        let ring = w.rings.get(&vec![Value::Int(7)]).unwrap();
        assert!(ring.buckets.len() <= 3);
    }

    #[test]
    fn retirement_unmerges_from_running_totals() {
        let mut w = window();
        assert_eq!(w.retractions(), 0);
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap(); // bucket 0
        w.insert(Chronon(11), &tuple![7i64, 50i64]).unwrap(); // bucket 1
        w.insert(Chronon(35), &tuple![7i64, 25i64]).unwrap(); // bucket 3 → retires bucket 0
                                                              // SUM and COUNT are retractable: one retired bucket = 2 negative
                                                              // deltas. MAX is not (its witness may retire), so no retraction.
        assert_eq!(w.retractions(), 2);
        let v = w.query(&[Value::Int(7)], Chronon(35)).unwrap();
        assert_eq!(
            v,
            vec![Value::Int(75), Value::Int(2), Value::Int(50)],
            "totals after unmerge must match the merge-scan answer"
        );
    }

    #[test]
    fn running_totals_agree_with_merge_scan_across_slides() {
        // Differential check within the window itself: after every insert
        // the frontier query (running totals fast path) must equal a
        // freshly-built control window queried the same way after replaying
        // only the in-window suffix.
        let mut w = SlidingWindow::new(
            Chronon(0),
            4,
            5,
            vec![0],
            vec![
                AggFunc::Sum(1),
                AggFunc::Avg(1),
                AggFunc::StdDev(1),
                AggFunc::CountStar,
            ],
        )
        .unwrap();
        let trades: Vec<(i64, i64)> = vec![
            (1, 100),
            (4, 50),
            (7, 25),
            (12, 10),
            (22, 5),
            (23, 200),
            (31, 8),
            (44, 1),
            (45, 2),
            (46, 4),
        ];
        for (i, &(t, x)) in trades.iter().enumerate() {
            w.insert(Chronon(t), &tuple![1i64, x]).unwrap();
            // Control: replay only the tuples whose bucket is in range.
            let mut control =
                SlidingWindow::new(Chronon(0), 4, 5, vec![0], vec![AggFunc::Sum(1)]).unwrap();
            let cur = t.div_euclid(5);
            for &(t2, x2) in &trades[..=i] {
                if t2.div_euclid(5) > cur - 4 {
                    control.insert(Chronon(t2), &tuple![1i64, x2]).unwrap();
                }
            }
            let got = w.query(&[Value::Int(1)], Chronon(t)).unwrap();
            let want = control.query(&[Value::Int(1)], Chronon(t)).unwrap();
            assert_eq!(got[0], want[0], "SUM diverged at t={t}");
        }
        assert!(w.retractions() > 0, "the schedule must exercise retirement");
    }

    #[test]
    fn mid_ring_query_still_exact_after_retirements() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 10i64]).unwrap(); // bucket 0
        w.insert(Chronon(11), &tuple![7i64, 20i64]).unwrap(); // bucket 1
        w.insert(Chronon(35), &tuple![7i64, 40i64]).unwrap(); // bucket 3, retires 0
                                                              // `now` in the past relative to the frontier: the window covers
                                                              // buckets -1..=1 but bucket 0 is gone and 3 is out of range — the
                                                              // fast path must not apply; the scan answers from bucket 1 alone.
        let v = w.query(&[Value::Int(7)], Chronon(15)).unwrap();
        assert_eq!(v[0], Value::Int(20));
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(SlidingWindow::new(Chronon(0), 0, 10, vec![0], vec![AggFunc::CountStar]).is_err());
        assert!(SlidingWindow::new(Chronon(0), 3, 0, vec![0], vec![AggFunc::CountStar]).is_err());
        assert!(SlidingWindow::new(Chronon(0), 3, 10, vec![0], vec![]).is_err());
    }
}
