//! The cyclic-buffer optimization for overlapping windows (§5.1).
//!
//! *"Consider a periodic view for every day that computes the total number
//! of shares of a stock sold during the 30 days preceding that day. ... we
//! should keep the total number of shares sold for each of the last 30 days
//! separately, and derive the view as the sum of these 30 numbers. Moving
//! from one periodic view to the next one involves shifting a cyclic buffer
//! of these 30 numbers."*
//!
//! [`SlidingWindow`] generalizes the quoted trick to any decomposable
//! aggregate (SUM, COUNT, MIN, MAX, AVG, STDDEV — anything
//! [`Accumulator::merge`] supports) and to per-group keys: per key it keeps
//! `k = width/step` bucket sub-accumulators in a ring; appends touch one
//! bucket (O(#aggs)); window rollover pops expired buckets (amortized
//! O(1)); a window query merges the `k` buckets (O(k·#aggs)).
//!
//! Contrast with [`crate::PeriodicViewSet`] over a sliding calendar, which
//! maintains one full view per overlapping window and hence does
//! `width/step` times the work per append — the comparison is experiment E8.

use std::collections::{BTreeMap, VecDeque};

use chronicle_algebra::eval::seq_to_int;
use chronicle_algebra::{Accumulator, AggFunc};
use chronicle_types::{ChronicleError, Chronon, Result, Tuple, Value};

/// Per-key ring of bucket sub-accumulators.
#[derive(Debug)]
struct Ring {
    /// Bucket index (global, since anchor) of the front of `buckets`.
    front_bucket: i64,
    buckets: VecDeque<Vec<Accumulator>>,
}

/// A keyed sliding-window aggregate with bucketed sub-aggregation.
#[derive(Debug)]
pub struct SlidingWindow {
    /// Window width in buckets (`k`).
    window_buckets: usize,
    /// Bucket width in chronon ticks (the calendar step).
    bucket_ticks: i64,
    /// Chronon of bucket 0's start.
    anchor: Chronon,
    /// Aggregates maintained per key.
    aggs: Vec<AggFunc>,
    /// Key columns within inserted tuples.
    key_cols: Vec<usize>,
    rings: BTreeMap<Vec<Value>, Ring>,
    /// Total accumulator updates performed (work accounting for E8).
    updates: u64,
}

impl SlidingWindow {
    /// A window covering `window_buckets` buckets of `bucket_ticks` ticks
    /// each (e.g. 30 buckets × 1 day), keyed by `key_cols` of the inserted
    /// tuples, maintaining `aggs`.
    pub fn new(
        anchor: Chronon,
        window_buckets: usize,
        bucket_ticks: i64,
        key_cols: Vec<usize>,
        aggs: Vec<AggFunc>,
    ) -> Result<Self> {
        if window_buckets == 0 || bucket_ticks <= 0 {
            return Err(ChronicleError::InvalidSchema(format!(
                "sliding window needs positive dimensions, got {window_buckets} × {bucket_ticks}"
            )));
        }
        if aggs.is_empty() {
            return Err(ChronicleError::BadAggregate {
                detail: "sliding window needs at least one aggregate".into(),
            });
        }
        Ok(SlidingWindow {
            window_buckets,
            bucket_ticks,
            anchor,
            aggs,
            key_cols,
            rings: BTreeMap::new(),
            updates: 0,
        })
    }

    fn bucket_of(&self, at: Chronon) -> i64 {
        (at.0 - self.anchor.0).div_euclid(self.bucket_ticks)
    }

    /// Fold one tuple observed at chronon `at` into its key's current
    /// bucket. O(#aggs) amortized.
    pub fn insert(&mut self, at: Chronon, tuple: &Tuple) -> Result<()> {
        let bucket = self.bucket_of(at);
        let key: Vec<Value> = self
            .key_cols
            .iter()
            .map(|&c| tuple.get(c).clone())
            .collect();
        let aggs = &self.aggs;
        let ring = self.rings.entry(key).or_insert_with(|| Ring {
            front_bucket: bucket,
            buckets: VecDeque::new(),
        });
        if ring.buckets.is_empty() {
            ring.front_bucket = bucket;
            ring.buckets
                .push_back(aggs.iter().map(|&f| Accumulator::new(f)).collect());
        } else {
            let last = ring.front_bucket + ring.buckets.len() as i64 - 1;
            if bucket < last {
                // Bucket indices are signed (chronons before `anchor` land in
                // negative buckets), so the error must carry them as i64 — an
                // `as u64` cast here turned bucket -3 into 2^64-3.
                return Err(ChronicleError::NonMonotonicBucket {
                    newest: last,
                    attempted: bucket,
                });
            }
            if bucket - last >= self.window_buckets as i64 {
                // The gap exceeds the window: every existing bucket has
                // expired, so reset in O(1) instead of sliding one bucket
                // at a time.
                ring.buckets.clear();
                ring.front_bucket = bucket;
                ring.buckets
                    .push_back(aggs.iter().map(|&f| Accumulator::new(f)).collect());
            } else {
                // Extend the ring up to `bucket`, dropping buckets older
                // than the window as it slides (≤ window_buckets steps).
                while ring.front_bucket + (ring.buckets.len() as i64) <= bucket {
                    ring.buckets
                        .push_back(aggs.iter().map(|&f| Accumulator::new(f)).collect());
                    if ring.buckets.len() > self.window_buckets {
                        ring.buckets.pop_front();
                        ring.front_bucket += 1;
                    }
                }
            }
        }
        let back = ring.buckets.back_mut().expect("ring non-empty");
        for acc in back.iter_mut() {
            acc.update(tuple)?;
            self.updates += 1;
        }
        Ok(())
    }

    /// The window aggregate for `key` as of chronon `now`: merge of the
    /// buckets inside `[now − window, now]`. O(window_buckets · #aggs).
    pub fn query(&self, key: &[Value], now: Chronon) -> Result<Vec<Value>> {
        let current = self.bucket_of(now);
        let oldest = current - self.window_buckets as i64 + 1;
        let mut merged: Vec<Accumulator> = self.aggs.iter().map(|&f| Accumulator::new(f)).collect();
        if let Some(ring) = self.rings.get(key) {
            for (i, bucket) in ring.buckets.iter().enumerate() {
                let b = ring.front_bucket + i as i64;
                if b >= oldest && b <= current {
                    for (m, acc) in merged.iter_mut().zip(bucket) {
                        m.merge(acc)?;
                    }
                }
            }
        }
        Ok(merged.iter().map(|a| seq_to_int(a.finalize())).collect())
    }

    /// Number of keys tracked.
    pub fn key_count(&self) -> usize {
        self.rings.len()
    }

    /// Total accumulator updates performed (the per-append work metric).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The window width in ticks.
    pub fn window_ticks(&self) -> i64 {
        self.window_buckets as i64 * self.bucket_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn window() -> SlidingWindow {
        // 3 buckets of 10 ticks: a 30-tick window.
        SlidingWindow::new(
            Chronon(0),
            3,
            10,
            vec![0],
            vec![AggFunc::Sum(1), AggFunc::CountStar, AggFunc::Max(1)],
        )
        .unwrap()
    }

    #[test]
    fn aggregates_within_window() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(11), &tuple![7i64, 50i64]).unwrap();
        w.insert(Chronon(21), &tuple![7i64, 25i64]).unwrap();
        let v = w.query(&[Value::Int(7)], Chronon(25)).unwrap();
        assert_eq!(v, vec![Value::Int(175), Value::Int(3), Value::Int(100)]);
    }

    #[test]
    fn old_buckets_fall_out() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(35), &tuple![7i64, 50i64]).unwrap();
        // At t=35 (bucket 3), the window covers buckets 1..=3; bucket 0
        // (the 100-share trade) has slid out.
        let v = w.query(&[Value::Int(7)], Chronon(35)).unwrap();
        assert_eq!(v[0], Value::Int(50));
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn query_respects_now_even_mid_ring() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 10i64]).unwrap();
        w.insert(Chronon(11), &tuple![7i64, 20i64]).unwrap();
        // Query as of bucket 4: only buckets 2..=4 count; both trades are
        // older, but bucket 1 (t=11) is outside [2,4] while the ring still
        // holds it.
        let v = w.query(&[Value::Int(7)], Chronon(45)).unwrap();
        assert_eq!(v[0], Value::Null, "empty SUM is NULL");
        assert_eq!(v[1], Value::Int(0));
        // As of bucket 1, both buckets 0 and 1 are in range... window is
        // buckets -1..=1, so sum = 30.
        let v = w.query(&[Value::Int(7)], Chronon(15)).unwrap();
        assert_eq!(v[0], Value::Int(30));
    }

    #[test]
    fn keys_are_independent() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(1), &tuple![8i64, 1i64]).unwrap();
        assert_eq!(w.key_count(), 2);
        let v7 = w.query(&[Value::Int(7)], Chronon(5)).unwrap();
        let v8 = w.query(&[Value::Int(8)], Chronon(5)).unwrap();
        assert_eq!(v7[0], Value::Int(100));
        assert_eq!(v8[0], Value::Int(1));
        let missing = w.query(&[Value::Int(9)], Chronon(5)).unwrap();
        assert_eq!(missing[1], Value::Int(0));
    }

    #[test]
    fn min_max_correct_across_bucket_expiry() {
        // MAX over a sliding window is exact because buckets are disjoint:
        // when the max-holding bucket expires, the merge of the remaining
        // buckets yields the true new max.
        let mut w = SlidingWindow::new(Chronon(0), 2, 10, vec![0], vec![AggFunc::Max(1)]).unwrap();
        w.insert(Chronon(5), &tuple![1i64, 999i64]).unwrap();
        w.insert(Chronon(15), &tuple![1i64, 7i64]).unwrap();
        assert_eq!(
            w.query(&[Value::Int(1)], Chronon(15)).unwrap()[0],
            Value::Int(999)
        );
        w.insert(Chronon(25), &tuple![1i64, 3i64]).unwrap();
        // Bucket 0 (999) expired; max of buckets 1..=2 is 7.
        assert_eq!(
            w.query(&[Value::Int(1)], Chronon(25)).unwrap()[0],
            Value::Int(7)
        );
    }

    #[test]
    fn out_of_order_insert_rejected() {
        let mut w = window();
        w.insert(Chronon(25), &tuple![7i64, 1i64]).unwrap();
        assert!(w.insert(Chronon(5), &tuple![7i64, 1i64]).is_err());
        // Same-bucket insert is fine.
        w.insert(Chronon(29), &tuple![7i64, 1i64]).unwrap();
    }

    #[test]
    fn before_anchor_inserts_use_signed_buckets() {
        // Chronons before the anchor land in negative buckets; the ring
        // handles them like any other signed index.
        let mut w = window();
        w.insert(Chronon(-25), &tuple![7i64, 100i64]).unwrap(); // bucket -3
        w.insert(Chronon(-15), &tuple![7i64, 50i64]).unwrap(); // bucket -2
        let v = w.query(&[Value::Int(7)], Chronon(-11)).unwrap();
        assert_eq!(v[0], Value::Int(150));
        assert_eq!(v[1], Value::Int(2));
    }

    #[test]
    fn negative_bucket_error_is_signed() {
        // Regression: the out-of-order error used to cast the signed bucket
        // indices through `as u64`, so an insert at bucket -3 reported
        // `attempted: 18446744073709551613`.
        let mut w = window();
        w.insert(Chronon(25), &tuple![7i64, 1i64]).unwrap(); // bucket 2
        let err = w.insert(Chronon(-25), &tuple![7i64, 1i64]).unwrap_err();
        match err {
            ChronicleError::NonMonotonicBucket { newest, attempted } => {
                assert_eq!(newest, 2);
                assert_eq!(attempted, -3);
            }
            other => panic!("expected NonMonotonicBucket, got {other:?}"),
        }
    }

    #[test]
    fn big_time_jump_clears_ring() {
        let mut w = window();
        w.insert(Chronon(1), &tuple![7i64, 100i64]).unwrap();
        w.insert(Chronon(1000), &tuple![7i64, 5i64]).unwrap();
        let v = w.query(&[Value::Int(7)], Chronon(1000)).unwrap();
        assert_eq!(v[0], Value::Int(5));
        // Ring stayed bounded.
        let ring = w.rings.get(&vec![Value::Int(7)]).unwrap();
        assert!(ring.buckets.len() <= 3);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(SlidingWindow::new(Chronon(0), 0, 10, vec![0], vec![AggFunc::CountStar]).is_err());
        assert!(SlidingWindow::new(Chronon(0), 3, 0, vec![0], vec![AggFunc::CountStar]).is_err());
        assert!(SlidingWindow::new(Chronon(0), 3, 10, vec![0], vec![]).is_err());
    }
}
