//! Materialized views over *relations* — maintained under inserts, updates
//! and deletes.
//!
//! Chronicle views ([`crate::PersistentView`]) are maintained append-only;
//! the Theorem 4.1 rules lean on the new-sequence-number argument. A
//! relation has no such argument — any row can be deleted at any time — so
//! a relation-backed view restricts itself to the retractable fragment
//! (σ/Π/γ with group-theoretic aggregates, validated by
//! [`chronicle_algebra::RelQuery`]) and absorbs **signed** Z-set deltas:
//! an insert arrives as `+1`, a delete as `−1`, an update as a `−old +new`
//! pair. The state is Z-set-shaped too: projection views keep signed
//! multiplicities, group views keep a live-row count next to the
//! accumulators, and an entry whose count reaches zero is removed — unless
//! the `CHRONICLE_MUTATE=skip_consolidation` sabotage is active, in which
//! case the zero-count residue stays *visible* through
//! [`RelationView::rows`], which is how the differential oracle suite
//! proves it would catch a dropped zero-weight elimination.

use std::collections::BTreeMap;

use crate::codec::{Reader, ReaderExt as _, Writer, WriterExt as _};
use chronicle_algebra::delta::SummaryDelta;
use chronicle_algebra::eval::seq_to_int;
use chronicle_algebra::zset::consolidation_disabled;
use chronicle_algebra::{Accumulator, RelQuery, Summarize, WorkCounter};
use chronicle_store::Relation;
use chronicle_types::{ChronicleError, Result, Schema, Tuple, Value, ViewId};

/// Accumulators plus the signed count of live (filtered) base rows in the
/// group — the group exists exactly while `live > 0`.
#[derive(Debug)]
struct GroupState {
    accs: Vec<Accumulator>,
    live: i64,
}

#[derive(Debug)]
enum RelState {
    /// GROUPBY summarization: group key → accumulators + live-row count.
    Groups(BTreeMap<Vec<Value>, GroupState>),
    /// Projection summarization: row → signed multiplicity.
    Counts(BTreeMap<Tuple, i64>),
}

/// The materialized state of one relation-backed view.
#[derive(Debug)]
pub struct RelationView {
    id: ViewId,
    name: String,
    query: RelQuery,
    state: RelState,
    applied_batches: u64,
}

impl RelationView {
    /// Create an empty view for `query`.
    pub fn new(id: ViewId, name: impl Into<String>, query: RelQuery) -> Self {
        let state = match query.summarize() {
            Summarize::GroupAgg { .. } => RelState::Groups(BTreeMap::new()),
            Summarize::Project { .. } => RelState::Counts(BTreeMap::new()),
        };
        RelationView {
            id,
            name: name.into(),
            query,
            state,
            applied_batches: 0,
        }
    }

    /// View id.
    pub fn id(&self) -> ViewId {
        self.id
    }

    /// View name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining query.
    pub fn query(&self) -> &RelQuery {
        &self.query
    }

    /// The view's (relation) schema.
    pub fn schema(&self) -> &Schema {
        self.query.schema()
    }

    /// Number of materialized rows/groups.
    pub fn len(&self) -> usize {
        match &self.state {
            RelState::Groups(g) => g.len(),
            RelState::Counts(c) => c.len(),
        }
    }

    /// True iff the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of delta batches applied so far.
    pub fn applied_batches(&self) -> u64 {
        self.applied_batches
    }

    /// Apply a signed summarized delta. Same complexity shape as the
    /// chronicle-view apply: one ordered-map probe per affected group/row,
    /// work charged per logical tuple (by |weight|).
    pub fn apply(&mut self, delta: &SummaryDelta, work: &mut WorkCounter) -> Result<()> {
        match (&mut self.state, delta, self.query.summarize()) {
            (
                RelState::Groups(groups),
                SummaryDelta::Groups(batch),
                Summarize::GroupAgg { aggs, .. },
            ) => {
                for (key, members) in batch {
                    work.index_probes += 1;
                    let gs = groups.entry(key.clone()).or_insert_with(|| GroupState {
                        accs: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                        live: 0,
                    });
                    for (t, w) in members.iter() {
                        work.tuples_in += w.unsigned_abs();
                        gs.live += w;
                        for acc in gs.accs.iter_mut() {
                            acc.update_weighted(t, w)?;
                        }
                    }
                    if gs.live < 0 {
                        return Err(ChronicleError::Internal(format!(
                            "relation view `{}`: group {key:?} retracted below zero rows",
                            self.name
                        )));
                    }
                    if gs.live == 0 && !consolidation_disabled() {
                        groups.remove(key);
                    }
                }
            }
            (RelState::Counts(counts), SummaryDelta::Rows(rows), Summarize::Project { .. }) => {
                for (row, w) in rows.iter() {
                    work.index_probes += 1;
                    work.tuples_in += w.unsigned_abs();
                    let m = counts.entry(row.clone()).or_insert(0);
                    *m += w;
                    if *m < 0 {
                        return Err(ChronicleError::Internal(format!(
                            "relation view `{}`: row {row} retracted below zero",
                            self.name
                        )));
                    }
                    if *m == 0 && !consolidation_disabled() {
                        counts.remove(row);
                    }
                }
            }
            _ => {
                return Err(ChronicleError::Internal(format!(
                    "delta kind does not match relation view `{}` summarization",
                    self.name
                )))
            }
        }
        self.applied_batches += 1;
        Ok(())
    }

    /// Materialize the full current contents, in index order. Presence in
    /// the map is what makes a row visible — a zero-count residue kept by
    /// the `skip_consolidation` mutation shows up here, on purpose.
    pub fn rows(&self) -> Vec<Tuple> {
        match &self.state {
            RelState::Groups(groups) => groups
                .iter()
                .map(|(key, gs)| {
                    let mut row = key.clone();
                    row.extend(gs.accs.iter().map(|a| seq_to_int(a.finalize())));
                    Tuple::new(row)
                })
                .collect(),
            RelState::Counts(counts) => counts.keys().cloned().collect(),
        }
    }

    /// Point lookup of one group's finalized row. `O(log |V|)`.
    pub fn get(&self, key: &[Value]) -> Option<Tuple> {
        match &self.state {
            RelState::Groups(groups) => groups.get(key).map(|gs| {
                let mut row = key.to_vec();
                row.extend(gs.accs.iter().map(|a| seq_to_int(a.finalize())));
                Tuple::new(row)
            }),
            RelState::Counts(counts) => {
                let t = Tuple::new(key.to_vec());
                counts.contains_key(&t).then_some(t)
            }
        }
    }

    /// A single aggregate value of one group.
    pub fn get_agg(&self, key: &[Value], agg_index: usize) -> Option<Value> {
        match &self.state {
            RelState::Groups(groups) => groups
                .get(key)
                .and_then(|gs| gs.accs.get(agg_index))
                .map(|a| seq_to_int(a.finalize())),
            RelState::Counts(_) => None,
        }
    }

    /// The signed multiplicity of a projected row (projection views only).
    pub fn multiplicity(&self, row: &Tuple) -> Option<i64> {
        match &self.state {
            RelState::Counts(c) => c.get(row).copied(),
            RelState::Groups(_) => None,
        }
    }

    /// Rebuild the state from a relation snapshot (view creation over a
    /// non-empty relation). Unlike chronicle views this is always possible:
    /// relations are fully stored.
    pub fn bootstrap(&mut self, rel: &Relation) -> Result<()> {
        match (&mut self.state, self.query.summarize()) {
            (RelState::Groups(groups), Summarize::GroupAgg { group_cols, aggs }) => {
                groups.clear();
                for t in rel.iter() {
                    if !self.query.matches(t)? {
                        continue;
                    }
                    let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                    let gs = groups.entry(key).or_insert_with(|| GroupState {
                        accs: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                        live: 0,
                    });
                    gs.live += 1;
                    for acc in gs.accs.iter_mut() {
                        acc.update(t)?;
                    }
                }
            }
            (RelState::Counts(counts), Summarize::Project { cols }) => {
                counts.clear();
                for t in rel.iter() {
                    if !self.query.matches(t)? {
                        continue;
                    }
                    *counts.entry(t.project(cols)).or_insert(0) += 1;
                }
            }
            _ => unreachable!("state always matches summarize"),
        }
        Ok(())
    }

    /// Serialize the materialized state into a self-describing byte
    /// snapshot (checkpoint payload, same framing discipline as the
    /// chronicle-view codec but its own magic).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str("CHRR1");
        w.u64(self.applied_batches);
        match &self.state {
            RelState::Groups(groups) => {
                w.u8(0);
                w.u64(groups.len() as u64);
                for (key, gs) in groups {
                    w.u32(key.len() as u32);
                    for v in key {
                        w.value(v);
                    }
                    w.i64(gs.live);
                    w.u32(gs.accs.len() as u32);
                    for acc in &gs.accs {
                        w.accumulator(acc);
                    }
                }
            }
            RelState::Counts(counts) => {
                w.u8(1);
                w.u64(counts.len() as u64);
                for (row, n) in counts {
                    w.tuple(row);
                    w.i64(*n);
                }
            }
        }
        w.into_bytes()
    }

    /// Restore a snapshot produced by [`RelationView::snapshot`] into a
    /// fresh view over the *same* defining query.
    pub fn restore(
        id: ViewId,
        name: impl Into<String>,
        query: RelQuery,
        bytes: &[u8],
    ) -> Result<RelationView> {
        let mut view = RelationView::new(id, name, query);
        let mut r = Reader::new(bytes);
        let magic = r.str()?;
        if magic != "CHRR1" {
            return Err(ChronicleError::Internal(format!(
                "bad relation-view snapshot magic `{magic}`"
            )));
        }
        view.applied_batches = r.u64()?;
        let kind = r.u8()?;
        match (&mut view.state, kind, view.query.summarize()) {
            (RelState::Groups(groups), 0, Summarize::GroupAgg { aggs, .. }) => {
                let n = r.u64()?;
                for _ in 0..n {
                    let klen = r.u32()? as usize;
                    let mut key = Vec::with_capacity(klen);
                    for _ in 0..klen {
                        key.push(r.value()?);
                    }
                    let live = r.i64()?;
                    let alen = r.u32()? as usize;
                    if alen != aggs.len() {
                        return Err(ChronicleError::Internal(format!(
                            "snapshot has {alen} accumulators per group, view declares {}",
                            aggs.len()
                        )));
                    }
                    let mut accs = Vec::with_capacity(alen);
                    for spec in aggs {
                        let acc = r.accumulator()?;
                        if acc.func() != spec.func {
                            return Err(ChronicleError::Internal(format!(
                                "snapshot accumulator {} does not match view aggregate {}",
                                acc.func(),
                                spec.func
                            )));
                        }
                        accs.push(acc);
                    }
                    groups.insert(key, GroupState { accs, live });
                }
            }
            (RelState::Counts(counts), 1, Summarize::Project { .. }) => {
                let n = r.u64()?;
                for _ in 0..n {
                    let row = r.tuple()?;
                    let m = r.i64()?;
                    counts.insert(row, m);
                }
            }
            _ => {
                return Err(ChronicleError::Internal(
                    "snapshot kind does not match the relation view's summarization".into(),
                ))
            }
        }
        if !r.at_end() {
            return Err(ChronicleError::Internal(
                "trailing bytes after relation-view snapshot".into(),
            ));
        }
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_algebra::{AggFunc, AggSpec, RelationRef, ZSet};
    use chronicle_store::Catalog;
    use chronicle_types::{tuple, AttrType, Attribute, RelationId};

    fn setup() -> (Catalog, RelationRef, RelationId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let rs = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("region", AttrType::Int),
                Attribute::new("rate", AttrType::Float),
            ],
            &["acct"],
        )
        .unwrap();
        let r = cat.create_relation("accounts", rs.clone()).unwrap();
        cat.relation_insert(r, g, tuple![1i64, 10i64, 0.5f64])
            .unwrap();
        cat.relation_insert(r, g, tuple![2i64, 10i64, 1.5f64])
            .unwrap();
        (cat, RelationRef::new(r, rs, "accounts"), r)
    }

    fn sum_view(rel: RelationRef) -> RelationView {
        let q = RelQuery::group_agg(
            rel,
            vec![],
            &["region"],
            vec![
                AggSpec::new(AggFunc::Sum(2), "total"),
                AggSpec::new(AggFunc::CountStar, "n"),
            ],
        )
        .unwrap();
        RelationView::new(ViewId(0), "by_region", q)
    }

    fn apply(view: &mut RelationView, delta: ZSet) -> WorkCounter {
        let mut w = WorkCounter::default();
        let d = view.query().delta(&delta, &mut w).unwrap();
        view.apply(&d, &mut w).unwrap();
        w
    }

    #[test]
    fn insert_update_delete_round_trip() {
        let (_, rel, _) = setup();
        let mut v = sum_view(rel);
        apply(&mut v, ZSet::singleton(tuple![1i64, 10i64, 0.5f64], 1));
        apply(&mut v, ZSet::singleton(tuple![2i64, 10i64, 1.5f64], 1));
        assert_eq!(v.get_agg(&[Value::Int(10)], 0), Some(Value::Float(2.0)));
        // UPDATE acct 2: rate 1.5 → 2.5 as a −old +new pair.
        let mut upd = ZSet::new();
        upd.insert(tuple![2i64, 10i64, 1.5f64], -1);
        upd.insert(tuple![2i64, 10i64, 2.5f64], 1);
        apply(&mut v, upd);
        assert_eq!(v.get_agg(&[Value::Int(10)], 0), Some(Value::Float(3.0)));
        assert_eq!(v.get_agg(&[Value::Int(10)], 1), Some(Value::Int(2)));
        // DELETE both rows: the group itself disappears.
        apply(&mut v, ZSet::singleton(tuple![1i64, 10i64, 0.5f64], -1));
        apply(&mut v, ZSet::singleton(tuple![2i64, 10i64, 2.5f64], -1));
        assert!(v.is_empty(), "fully retracted group leaves no residue");
    }

    #[test]
    fn projection_counts_are_signed() {
        let (_, rel, _) = setup();
        let q = RelQuery::project(rel, vec![], &["region"]).unwrap();
        let mut v = RelationView::new(ViewId(1), "regions", q);
        apply(&mut v, ZSet::singleton(tuple![1i64, 10i64, 0.5f64], 1));
        apply(&mut v, ZSet::singleton(tuple![2i64, 10i64, 1.5f64], 1));
        assert_eq!(v.multiplicity(&tuple![10i64]), Some(2));
        assert_eq!(v.rows(), vec![tuple![10i64]], "set semantics");
        apply(&mut v, ZSet::singleton(tuple![1i64, 10i64, 0.5f64], -1));
        assert_eq!(v.multiplicity(&tuple![10i64]), Some(1));
        apply(&mut v, ZSet::singleton(tuple![2i64, 10i64, 1.5f64], -1));
        assert!(v.rows().is_empty());
    }

    #[test]
    fn over_retraction_is_loud() {
        let (_, rel, _) = setup();
        let q = RelQuery::project(rel, vec![], &["acct"]).unwrap();
        let mut v = RelationView::new(ViewId(1), "accts", q);
        let mut w = WorkCounter::default();
        let d = v
            .query()
            .delta(&ZSet::singleton(tuple![9i64, 10i64, 1.0f64], -1), &mut w)
            .unwrap();
        assert!(v.apply(&d, &mut w).is_err(), "deleting a missing row");
    }

    #[test]
    fn bootstrap_matches_incremental() {
        let (cat, rel, rid) = setup();
        let mut from_scratch = sum_view(rel.clone());
        from_scratch.bootstrap(cat.relation(rid).current()).unwrap();
        let mut incremental = sum_view(rel);
        apply(
            &mut incremental,
            ZSet::singleton(tuple![1i64, 10i64, 0.5f64], 1),
        );
        apply(
            &mut incremental,
            ZSet::singleton(tuple![2i64, 10i64, 1.5f64], 1),
        );
        assert_eq!(from_scratch.rows(), incremental.rows());
        // And both agree with the stateless oracle.
        let oracle = from_scratch
            .query()
            .eval(cat.relation(rid).current())
            .unwrap();
        assert_eq!(from_scratch.rows(), oracle);
    }

    #[test]
    fn snapshot_round_trip_both_kinds() {
        let (cat, rel, rid) = setup();
        let mut v = sum_view(rel.clone());
        v.bootstrap(cat.relation(rid).current()).unwrap();
        let restored =
            RelationView::restore(ViewId(7), "by_region", v.query().clone(), &v.snapshot())
                .unwrap();
        assert_eq!(restored.rows(), v.rows());
        // A restored view keeps retracting correctly.
        let mut restored = restored;
        apply(
            &mut restored,
            ZSet::singleton(tuple![1i64, 10i64, 0.5f64], -1),
        );
        assert_eq!(restored.get_agg(&[Value::Int(10)], 1), Some(Value::Int(1)));

        let q = RelQuery::project(rel, vec![], &["region"]).unwrap();
        let mut p = RelationView::new(ViewId(8), "regions", q);
        p.bootstrap(cat.relation(rid).current()).unwrap();
        let back =
            RelationView::restore(ViewId(8), "regions", p.query().clone(), &p.snapshot()).unwrap();
        assert_eq!(back.multiplicity(&tuple![10i64]), Some(2));
        // Cross-kind restore is rejected.
        assert!(RelationView::restore(ViewId(9), "x", v.query().clone(), &p.snapshot()).is_err());
    }
}
