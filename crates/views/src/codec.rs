//! A small, dependency-free binary codec for view snapshots.
//!
//! Persistent views are the *only* durable state of a chronicle system —
//! the chronicle itself is not stored — so being able to snapshot and
//! restore them is what makes restarts possible at all. The format is a
//! simple length-prefixed tagged encoding; no external serialization crate
//! is needed.

use chronicle_algebra::{AccState, Accumulator, AggFunc};
use chronicle_types::{ChronicleError, Result, SeqNo, Tuple, Value};

/// Byte-stream writer.
#[derive(Debug, Default)]
pub struct Writer(Vec<u8>);

impl Writer {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Write a u8.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Write a u32 (LE).
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a u64 (LE).
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an i64 (LE).
    pub fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an f64 (LE bits).
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// Write a value.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(3);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Seq(s) => {
                self.u8(5);
                self.u64(s.0);
            }
        }
    }

    /// Write a tuple.
    pub fn tuple(&mut self, t: &Tuple) {
        self.u32(t.arity() as u32);
        for v in t.values() {
            self.value(v);
        }
    }

    /// Write an aggregate function descriptor.
    pub fn agg_func(&mut self, f: AggFunc) {
        let (tag, attr) = match f {
            AggFunc::CountStar => (0u8, u32::MAX),
            AggFunc::Count(a) => (1, a as u32),
            AggFunc::Sum(a) => (2, a as u32),
            AggFunc::Min(a) => (3, a as u32),
            AggFunc::Max(a) => (4, a as u32),
            AggFunc::Avg(a) => (5, a as u32),
            AggFunc::StdDev(a) => (6, a as u32),
            AggFunc::First(a) => (7, a as u32),
            AggFunc::Last(a) => (8, a as u32),
        };
        self.u8(tag);
        self.u32(attr);
    }

    /// Write an accumulator (function + state).
    pub fn accumulator(&mut self, a: &Accumulator) {
        self.agg_func(a.func());
        match a.state() {
            AccState::Count(n) => {
                self.u8(0);
                self.i64(*n);
            }
            AccState::Sum {
                int,
                float,
                saw_float,
                n,
            } => {
                self.u8(1);
                self.i64(*int);
                self.f64(*float);
                self.u8(*saw_float as u8);
                self.u64(*n);
            }
            AccState::Extreme(v) => {
                self.u8(2);
                self.opt_value(v);
            }
            AccState::SumCount { sum, n } => {
                self.u8(3);
                self.f64(*sum);
                self.u64(*n);
            }
            AccState::Moments { sum, sumsq, n } => {
                self.u8(4);
                self.f64(*sum);
                self.f64(*sumsq);
                self.u64(*n);
            }
            AccState::Held(v) => {
                self.u8(5);
                self.opt_value(v);
            }
        }
    }

    fn opt_value(&mut self, v: &Option<Value>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.value(v);
            }
        }
    }
}

/// Byte-stream reader.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// True iff all bytes were consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ChronicleError::Internal(format!(
                "snapshot truncated at byte {}",
                self.pos
            ))),
        }
    }

    /// Read a u8.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an f64.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ChronicleError::Internal("snapshot contains invalid UTF-8".into()))
    }

    /// Read a value.
    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::str(self.str()?),
            5 => Value::Seq(SeqNo(self.u64()?)),
            t => {
                return Err(ChronicleError::Internal(format!(
                    "unknown value tag {t} in snapshot"
                )))
            }
        })
    }

    /// Read a tuple.
    pub fn tuple(&mut self) -> Result<Tuple> {
        let n = self.u32()? as usize;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.value()?);
        }
        Ok(Tuple::new(vals))
    }

    /// Read an aggregate function descriptor.
    pub fn agg_func(&mut self) -> Result<AggFunc> {
        let tag = self.u8()?;
        let attr = self.u32()? as usize;
        Ok(match tag {
            0 => AggFunc::CountStar,
            1 => AggFunc::Count(attr),
            2 => AggFunc::Sum(attr),
            3 => AggFunc::Min(attr),
            4 => AggFunc::Max(attr),
            5 => AggFunc::Avg(attr),
            6 => AggFunc::StdDev(attr),
            7 => AggFunc::First(attr),
            8 => AggFunc::Last(attr),
            t => {
                return Err(ChronicleError::Internal(format!(
                    "unknown aggregate tag {t} in snapshot"
                )))
            }
        })
    }

    /// Read an accumulator.
    pub fn accumulator(&mut self) -> Result<Accumulator> {
        let func = self.agg_func()?;
        let state = match self.u8()? {
            0 => AccState::Count(self.i64()?),
            1 => AccState::Sum {
                int: self.i64()?,
                float: self.f64()?,
                saw_float: self.u8()? != 0,
                n: self.u64()?,
            },
            2 => AccState::Extreme(self.opt_value()?),
            3 => AccState::SumCount {
                sum: self.f64()?,
                n: self.u64()?,
            },
            4 => AccState::Moments {
                sum: self.f64()?,
                sumsq: self.f64()?,
                n: self.u64()?,
            },
            5 => AccState::Held(self.opt_value()?),
            t => {
                return Err(ChronicleError::Internal(format!(
                    "unknown accumulator tag {t} in snapshot"
                )))
            }
        };
        Accumulator::from_parts(func, state)
    }

    fn opt_value(&mut self) -> Result<Option<Value>> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.value()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::str("héllo"),
            Value::Seq(SeqNo(9)),
        ];
        let mut w = Writer::new();
        for v in &vals {
            w.value(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &vals {
            assert_eq!(&r.value().unwrap(), v);
        }
        assert!(r.at_end());
    }

    #[test]
    fn tuples_round_trip() {
        let t = tuple![SeqNo(1), 42i64, "abc", 1.5f64];
        let mut w = Writer::new();
        w.tuple(&t);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).tuple().unwrap(), t);
    }

    #[test]
    fn accumulators_round_trip() {
        let funcs = [
            AggFunc::CountStar,
            AggFunc::Sum(2),
            AggFunc::Min(1),
            AggFunc::Max(0),
            AggFunc::Avg(3),
            AggFunc::StdDev(1),
            AggFunc::First(0),
            AggFunc::Last(2),
        ];
        for f in funcs {
            let mut acc = Accumulator::new(f);
            acc.update(&tuple![1i64, 2i64, 3.5f64, 4i64]).unwrap();
            let mut w = Writer::new();
            w.accumulator(&acc);
            let bytes = w.into_bytes();
            let back = Reader::new(&bytes).accumulator().unwrap();
            assert_eq!(back, acc, "round trip for {f}");
            assert_eq!(back.finalize(), acc.finalize());
        }
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.value(&Value::str("long enough"));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 3]);
        assert!(r.value().is_err());
    }

    #[test]
    fn bad_tags_detected() {
        assert!(Reader::new(&[99]).value().is_err());
        assert!(Reader::new(&[99, 0, 0, 0, 0]).agg_func().is_err());
    }
}
