//! View-snapshot codec, built on the base byte codec in `chronicle-types`.
//!
//! Persistent views are the *only* durable state of a chronicle system —
//! the chronicle itself is not stored — so being able to snapshot and
//! restore them is what makes restarts possible at all. The base machinery
//! (length-prefixed tagged encoding of values, tuples and schemas) lives in
//! [`chronicle_types::codec`]; this module re-exports it and extends the
//! [`Writer`] / [`Reader`] pair with the algebra state a snapshot carries:
//! aggregate function descriptors and accumulator states.

use chronicle_algebra::{AccState, Accumulator, AggFunc};
use chronicle_types::{ChronicleError, Result};

pub use chronicle_types::codec::{Reader, Writer};

/// Snapshot-specific encodings added to [`Writer`].
pub trait WriterExt {
    /// Write an aggregate function descriptor.
    fn agg_func(&mut self, f: AggFunc);
    /// Write an accumulator (function + state).
    fn accumulator(&mut self, a: &Accumulator);
}

impl WriterExt for Writer {
    fn agg_func(&mut self, f: AggFunc) {
        let (tag, attr) = match f {
            AggFunc::CountStar => (0u8, u32::MAX),
            AggFunc::Count(a) => (1, a as u32),
            AggFunc::Sum(a) => (2, a as u32),
            AggFunc::Min(a) => (3, a as u32),
            AggFunc::Max(a) => (4, a as u32),
            AggFunc::Avg(a) => (5, a as u32),
            AggFunc::StdDev(a) => (6, a as u32),
            AggFunc::First(a) => (7, a as u32),
            AggFunc::Last(a) => (8, a as u32),
        };
        self.u8(tag);
        self.u32(attr);
    }

    fn accumulator(&mut self, a: &Accumulator) {
        self.agg_func(a.func());
        match a.state() {
            AccState::Count(n) => {
                self.u8(0);
                self.i64(*n);
            }
            AccState::Sum {
                int,
                float,
                floats,
                n,
            } => {
                self.u8(1);
                self.i64(*int);
                self.f64(*float);
                self.u64(*floats);
                self.u64(*n);
            }
            AccState::Extreme(v) => {
                self.u8(2);
                self.opt_value(v);
            }
            AccState::SumCount { sum, n } => {
                self.u8(3);
                self.f64(*sum);
                self.u64(*n);
            }
            AccState::Moments { sum, sumsq, n } => {
                self.u8(4);
                self.f64(*sum);
                self.f64(*sumsq);
                self.u64(*n);
            }
            AccState::Held(v) => {
                self.u8(5);
                self.opt_value(v);
            }
        }
    }
}

/// Snapshot-specific decodings added to [`Reader`].
pub trait ReaderExt {
    /// Read an aggregate function descriptor.
    fn agg_func(&mut self) -> Result<AggFunc>;
    /// Read an accumulator.
    fn accumulator(&mut self) -> Result<Accumulator>;
}

impl ReaderExt for Reader<'_> {
    fn agg_func(&mut self) -> Result<AggFunc> {
        let tag = self.u8()?;
        let attr = self.u32()? as usize;
        Ok(match tag {
            0 => AggFunc::CountStar,
            1 => AggFunc::Count(attr),
            2 => AggFunc::Sum(attr),
            3 => AggFunc::Min(attr),
            4 => AggFunc::Max(attr),
            5 => AggFunc::Avg(attr),
            6 => AggFunc::StdDev(attr),
            7 => AggFunc::First(attr),
            8 => AggFunc::Last(attr),
            t => {
                return Err(ChronicleError::Internal(format!(
                    "unknown aggregate tag {t} in snapshot"
                )))
            }
        })
    }

    fn accumulator(&mut self) -> Result<Accumulator> {
        let func = self.agg_func()?;
        let state = match self.u8()? {
            0 => AccState::Count(self.i64()?),
            1 => AccState::Sum {
                int: self.i64()?,
                float: self.f64()?,
                floats: self.u64()?,
                n: self.u64()?,
            },
            2 => AccState::Extreme(self.opt_value()?),
            3 => AccState::SumCount {
                sum: self.f64()?,
                n: self.u64()?,
            },
            4 => AccState::Moments {
                sum: self.f64()?,
                sumsq: self.f64()?,
                n: self.u64()?,
            },
            5 => AccState::Held(self.opt_value()?),
            t => {
                return Err(ChronicleError::Internal(format!(
                    "unknown accumulator tag {t} in snapshot"
                )))
            }
        };
        Accumulator::from_parts(func, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::{tuple, SeqNo, Value};

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::str("héllo"),
            Value::Seq(SeqNo(9)),
        ];
        let mut w = Writer::new();
        for v in &vals {
            w.value(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &vals {
            assert_eq!(&r.value().unwrap(), v);
        }
        assert!(r.at_end());
    }

    #[test]
    fn tuples_round_trip() {
        let t = tuple![SeqNo(1), 42i64, "abc", 1.5f64];
        let mut w = Writer::new();
        w.tuple(&t);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).tuple().unwrap(), t);
    }

    #[test]
    fn accumulators_round_trip() {
        let funcs = [
            AggFunc::CountStar,
            AggFunc::Sum(2),
            AggFunc::Min(1),
            AggFunc::Max(0),
            AggFunc::Avg(3),
            AggFunc::StdDev(1),
            AggFunc::First(0),
            AggFunc::Last(2),
        ];
        for f in funcs {
            let mut acc = Accumulator::new(f);
            acc.update(&tuple![1i64, 2i64, 3.5f64, 4i64]).unwrap();
            let mut w = Writer::new();
            w.accumulator(&acc);
            let bytes = w.into_bytes();
            let back = Reader::new(&bytes).accumulator().unwrap();
            assert_eq!(back, acc, "round trip for {f}");
            assert_eq!(back.finalize(), acc.finalize());
        }
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.value(&Value::str("long enough"));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 3]);
        assert!(r.value().is_err());
    }

    #[test]
    fn bad_tags_detected() {
        assert!(Reader::new(&[99]).value().is_err());
        assert!(Reader::new(&[99, 0, 0, 0, 0]).agg_func().is_err());
    }
}
