//! Persistent views and their incremental maintenance — component V of the
//! chronicle database quadruple (C, R, L, V).
//!
//! * [`PersistentView`] — a materialized SCA view: group accumulators (or
//!   multiplicity counts for projection views) behind an ordered index,
//!   applied in `O(t log |V|)` per batch (Theorem 4.4),
//! * [`RelationView`] — a materialized view over a *relation*, maintained
//!   under inserts, updates and deletes via signed Z-set deltas,
//! * [`Maintainer`] — the engine that, on every append (and every relation
//!   change), routes the delta to the affected views and drives
//!   propagation + application,
//! * [`Router`] — affected-view identification (§5.2): chronicle→view maps,
//!   guard-predicate pre-filters, and active-interval filters for periodic
//!   views,
//! * [`Calendar`] / [`Interval`] — sets of (possibly infinite, possibly
//!   overlapping) time intervals (§5.1),
//! * [`PeriodicViewSet`] — the `V<D>` construct: one view per calendar
//!   interval, activated/retired as the chronicle's clock passes, with
//!   expiration-driven space reuse,
//! * [`SlidingWindow`] — the cyclic-buffer optimization for overlapping
//!   windows ("keep the total number of shares sold for each of the last
//!   30 days separately"),
//! * [`TierSchedule`] — §5.3 batch→incremental conversions for tiered
//!   discount/fee/bonus computations.

#![warn(missing_docs)]

mod calendar;
pub mod codec;
pub mod events;
mod maintenance;
mod periodic;
mod persistent;
mod relview;
mod router;
mod sliding;
mod tiered;

pub use calendar::{Calendar, Interval};
pub use events::{CompiledPattern, EventMatcher, Pattern};
pub use maintenance::{
    AppendEvent, BatchMode, Maintainer, MaintenanceReport, RouteMode, ViewReport,
};
pub use periodic::{IntervalViewState, PeriodicViewSet};
pub use persistent::PersistentView;
pub use relview::RelationView;
pub use router::{Router, RoutingDecision};
pub use sliding::SlidingWindow;
pub use tiered::{BatchDiscount, Tier, TierSchedule};
