//! The maintenance engine: on every append, route → propagate → apply.
//!
//! §3: *"Each time a transaction completes, a record for the transaction is
//! appended to the chronicle, and one or more persistent views may have to
//! be maintained. The transaction rate that can be supported by a chronicle
//! system is determined by the complexity of incremental maintenance of its
//! persistent views."*

use std::collections::BTreeMap;
use std::time::Instant;

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::kernels::{self, VectorPlan};
use chronicle_algebra::{RelQuery, ScaExpr, WorkCounter, ZSet};
use chronicle_store::{Catalog, Chunk, ChunkArena};
use chronicle_types::{ChronicleId, Chronon, RelationId, Result, SeqNo, Tuple, Value, ViewId};

use crate::periodic::PeriodicViewSet;
use crate::persistent::PersistentView;
use crate::relview::RelationView;
use crate::router::{Router, RoutingDecision};

/// One append event, as seen by the maintenance engine.
#[derive(Debug, Clone)]
pub struct AppendEvent {
    /// The chronicle that received the batch.
    pub chronicle: ChronicleId,
    /// The admitted sequence number.
    pub seq: SeqNo,
    /// The temporal instant of the batch.
    pub chronon: Chronon,
    /// The appended tuples.
    pub tuples: Vec<Tuple>,
}

impl AppendEvent {
    /// View of this event as a delta batch.
    pub fn as_batch(&self) -> DeltaBatch {
        DeltaBatch {
            chronicle: self.chronicle,
            seq: self.seq,
            tuples: self.tuples.clone(),
        }
    }
}

/// Per-view maintenance outcome for one append.
#[derive(Debug, Clone)]
pub struct ViewReport {
    /// The view.
    pub view: ViewId,
    /// Rows/groups touched (the `t` of Theorem 4.4); 0 = delta was empty.
    pub affected_rows: usize,
    /// Work spent on delta propagation + application for this view.
    pub work: WorkCounter,
}

/// The outcome of maintaining all views for one append.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Routing statistics.
    pub routing: RoutingDecision,
    /// Per maintained view.
    pub views: Vec<ViewReport>,
    /// Periodic sub-views maintained.
    pub periodic_maintained: usize,
    /// Views maintained through the vectorized columnar kernels (the rest
    /// ran the per-tuple interpreter).
    pub vectorized_views: usize,
    /// Total work across all views.
    pub total_work: WorkCounter,
    /// Wall-clock time of the whole maintenance step, nanoseconds.
    pub elapsed_nanos: u64,
}

/// Whether the engine uses the §5.2 router or conservatively maintains
/// every registered view (the E9 ablation baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMode {
    /// Use the router's three filters.
    #[default]
    Routed,
    /// Skip routing; run delta propagation for every view on every append.
    ScanAll,
}

/// How append batches are propagated into views.
///
/// Both modes produce byte-identical view state and identical work
/// counters — [`BatchMode::Scalar`] exists so differential tests can pin
/// the interpreter against the kernels inside one process (the
/// `CHRONICLE_MUTATE=scalar_fallback` env hook is process-global).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Transpose each batch into a columnar [`Chunk`] and run the
    /// vectorized kernels for every view whose shape compiled to a
    /// [`VectorPlan`]; other views fall back to the interpreter.
    #[default]
    Vectorized,
    /// Force the per-tuple interpreter for every view.
    Scalar,
}

/// Registry and driver for persistent views (plain and periodic).
#[derive(Debug, Default)]
pub struct Maintainer {
    views: BTreeMap<ViewId, PersistentView>,
    rel_views: BTreeMap<ViewId, RelationView>,
    names: BTreeMap<String, ViewId>,
    periodic: Vec<PeriodicViewSet>,
    router: Router,
    route_mode: RouteMode,
    batch_mode: BatchMode,
    plans: BTreeMap<ViewId, VectorPlan>,
    arena: ChunkArena,
    next_id: u32,
}

impl Maintainer {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select routed vs scan-all maintenance.
    pub fn set_route_mode(&mut self, mode: RouteMode) {
        self.route_mode = mode;
    }

    /// Select vectorized vs forced-scalar batch propagation.
    pub fn set_batch_mode(&mut self, mode: BatchMode) {
        self.batch_mode = mode;
    }

    /// The active batch propagation mode.
    pub fn batch_mode(&self) -> BatchMode {
        self.batch_mode
    }

    /// Register a persistent view. The view starts empty; call
    /// [`Maintainer::bootstrap_view`] if the chronicle already has stored
    /// history to fold in.
    pub fn register(&mut self, name: &str, expr: ScaExpr) -> Result<ViewId> {
        if self.names.contains_key(name) {
            return Err(chronicle_types::ChronicleError::AlreadyExists {
                kind: "view",
                name: name.into(),
            });
        }
        let id = ViewId(self.next_id);
        self.next_id += 1;
        self.router.register(id, &expr);
        if let Some(plan) = kernels::plan(&expr) {
            self.plans.insert(id, plan);
        }
        self.views.insert(id, PersistentView::new(id, name, expr));
        self.names.insert(name.into(), id);
        Ok(id)
    }

    /// Register a relation-backed view. The view starts empty; call
    /// [`Maintainer::bootstrap_relation_view`] if the relation already has
    /// rows to fold in.
    pub fn register_relation_view(&mut self, name: &str, query: RelQuery) -> Result<ViewId> {
        if self.names.contains_key(name) {
            return Err(chronicle_types::ChronicleError::AlreadyExists {
                kind: "view",
                name: name.into(),
            });
        }
        let id = ViewId(self.next_id);
        self.next_id += 1;
        // Relation views never react to chronicle appends, so the append
        // router does not learn about them; routing happens by relation id
        // in on_relation_change.
        self.rel_views
            .insert(id, RelationView::new(id, name, query));
        self.names.insert(name.into(), id);
        Ok(id)
    }

    /// Materialize a relation view from the relation's current rows.
    pub fn bootstrap_relation_view(&mut self, id: ViewId, catalog: &Catalog) -> Result<()> {
        let view = self.rel_view_mut(id)?;
        let rid = view.query().relation();
        view.bootstrap(catalog.relation(rid).current())
    }

    /// Register a periodic view family `V<D>`.
    pub fn register_periodic(&mut self, set: PeriodicViewSet) -> usize {
        self.periodic.push(set);
        self.periodic.len() - 1
    }

    /// Access a periodic set by the index returned from
    /// [`Maintainer::register_periodic`].
    pub fn periodic(&self, idx: usize) -> &PeriodicViewSet {
        &self.periodic[idx]
    }

    /// Mutable periodic family access (restart/restore path).
    pub fn periodic_mut(&mut self, idx: usize) -> &mut PeriodicViewSet {
        &mut self.periodic[idx]
    }

    /// Number of registered periodic families.
    pub fn periodic_count(&self) -> usize {
        self.periodic.len()
    }

    /// Materialize a view from fully stored chronicle history.
    pub fn bootstrap_view(&mut self, id: ViewId, catalog: &Catalog) -> Result<()> {
        self.view_mut(id)?.bootstrap(catalog)
    }

    /// Drop a view (chronicle-backed or relation-backed).
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        let id = self.view_id(name)?;
        self.router.unregister(id);
        self.views.remove(&id);
        self.rel_views.remove(&id);
        self.plans.remove(&id);
        self.names.remove(name);
        Ok(())
    }

    /// Resolve a view by name.
    pub fn view_id(&self, name: &str) -> Result<ViewId> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| chronicle_types::ChronicleError::NotFound {
                kind: "view",
                name: name.into(),
            })
    }

    /// The view with this id.
    pub fn view(&self, id: ViewId) -> Result<&PersistentView> {
        self.views
            .get(&id)
            .ok_or_else(|| chronicle_types::ChronicleError::NotFound {
                kind: "view",
                name: id.to_string(),
            })
    }

    fn view_mut(&mut self, id: ViewId) -> Result<&mut PersistentView> {
        self.views
            .get_mut(&id)
            .ok_or_else(|| chronicle_types::ChronicleError::NotFound {
                kind: "view",
                name: id.to_string(),
            })
    }

    /// The view with this name.
    pub fn view_by_name(&self, name: &str) -> Result<&PersistentView> {
        self.view(self.view_id(name)?)
    }

    /// The relation-backed view with this id.
    pub fn rel_view(&self, id: ViewId) -> Result<&RelationView> {
        self.rel_views
            .get(&id)
            .ok_or_else(|| chronicle_types::ChronicleError::NotFound {
                kind: "view",
                name: id.to_string(),
            })
    }

    fn rel_view_mut(&mut self, id: ViewId) -> Result<&mut RelationView> {
        self.rel_views
            .get_mut(&id)
            .ok_or_else(|| chronicle_types::ChronicleError::NotFound {
                kind: "view",
                name: id.to_string(),
            })
    }

    /// The relation-backed view with this name.
    pub fn rel_view_by_name(&self, name: &str) -> Result<&RelationView> {
        self.rel_view(self.view_id(name)?)
    }

    /// True iff `name` resolves to a relation-backed view.
    pub fn is_relation_view(&self, name: &str) -> bool {
        self.view_id(name)
            .is_ok_and(|id| self.rel_views.contains_key(&id))
    }

    /// Point lookup: one group's row of a named view (the paper's
    /// "summary query ... executed whenever a cellular phone is turned on").
    /// Works uniformly across chronicle-backed and relation-backed views.
    pub fn query(&self, name: &str, key: &[Value]) -> Result<Option<Tuple>> {
        let id = self.view_id(name)?;
        if let Some(v) = self.rel_views.get(&id) {
            return Ok(v.get(key));
        }
        Ok(self.view(id)?.get(key))
    }

    /// Full contents of a named view of either kind, in index order.
    pub fn rows_of(&self, name: &str) -> Result<Vec<Tuple>> {
        let id = self.view_id(name)?;
        if let Some(v) = self.rel_views.get(&id) {
            return Ok(v.rows());
        }
        Ok(self.view(id)?.rows())
    }

    /// Number of registered plain (chronicle-backed) views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Number of registered relation-backed views.
    pub fn relation_view_count(&self) -> usize {
        self.rel_views.len()
    }

    /// Iterate over registered chronicle-backed views.
    pub fn iter_views(&self) -> impl Iterator<Item = &PersistentView> {
        self.views.values()
    }

    /// Iterate over registered relation-backed views.
    pub fn iter_relation_views(&self) -> impl Iterator<Item = &RelationView> {
        self.rel_views.values()
    }

    /// Maintain every affected view for one append. The catalog is borrowed
    /// immutably: maintenance reads relations but **never** chronicles.
    pub fn on_append(
        &mut self,
        catalog: &Catalog,
        event: &AppendEvent,
    ) -> Result<MaintenanceReport> {
        let start = Instant::now();
        let mut report = MaintenanceReport::default();
        let batch = event.as_batch();
        let engine = DeltaEngine::new(catalog);

        let selected: Vec<ViewId> = match self.route_mode {
            RouteMode::Routed => {
                let decision = self
                    .router
                    .route(event.chronicle, event.chronon, &event.tuples)?;
                let sel = decision.selected.clone();
                report.routing = decision;
                sel
            }
            RouteMode::ScanAll => {
                let sel: Vec<ViewId> = self.views.keys().copied().collect();
                report.routing = RoutingDecision {
                    candidates: sel.len(),
                    selected: sel.clone(),
                    ..Default::default()
                };
                sel
            }
        };

        // Transpose the batch into a columnar chunk once, and only when it
        // has enough rows to amortize the transpose (single-row events ride
        // the interpreter, like the WAL's row framing) and at least one
        // selected view compiled to a vector plan. The arena recycles the
        // column buffers across appends.
        let vectorize = self.batch_mode == BatchMode::Vectorized
            && event.tuples.len() >= 2
            && !kernels::scalar_fallback_forced();
        let chunk: Option<Chunk> =
            if vectorize && selected.iter().any(|vid| self.plans.contains_key(vid)) {
                Some(self.arena.build(&event.tuples))
            } else {
                None
            };

        for vid in selected {
            let view = self
                .views
                .get_mut(&vid)
                .expect("router only knows live views");
            let mut work = WorkCounter::default();
            let delta = match (&chunk, self.plans.get(&vid)) {
                (Some(chunk), Some(plan)) => {
                    report.vectorized_views += 1;
                    kernels::eval(plan, &batch, chunk, &mut work)?
                }
                _ => engine.delta_sca(view.expr(), &batch, &mut work)?,
            };
            let affected = delta.affected();
            if affected > 0 {
                view.apply(&delta, &mut work)?;
            }
            report.total_work.absorb(work);
            report.views.push(ViewReport {
                view: vid,
                affected_rows: affected,
                work,
            });
        }
        if let Some(chunk) = chunk {
            self.arena.recycle(chunk);
        }

        for set in &mut self.periodic {
            let mut work = WorkCounter::default();
            report.periodic_maintained += set.on_append(catalog, event, &mut work)?;
            report.total_work.absorb(work);
        }

        report.elapsed_nanos = start.elapsed().as_nanos() as u64;
        Ok(report)
    }

    /// Maintain every relation-backed view of `relation` for one signed
    /// Z-set delta (insert `+1`, delete `−1`, update `−old +new`). The
    /// same route → propagate → apply shape as [`Maintainer::on_append`];
    /// routing here is the relation-id filter.
    pub fn on_relation_change(
        &mut self,
        relation: RelationId,
        delta: &ZSet,
    ) -> Result<MaintenanceReport> {
        let start = Instant::now();
        let mut report = MaintenanceReport::default();
        if delta.is_empty() {
            return Ok(report);
        }
        let selected: Vec<ViewId> = self
            .rel_views
            .iter()
            .filter(|(_, v)| v.query().relation() == relation)
            .map(|(&id, _)| id)
            .collect();
        report.routing = RoutingDecision {
            candidates: self.rel_views.len(),
            selected: selected.clone(),
            ..Default::default()
        };
        for vid in selected {
            let view = self.rel_views.get_mut(&vid).expect("selected from map");
            let mut work = WorkCounter::default();
            let sd = view.query().delta(delta, &mut work)?;
            let affected = sd.affected();
            if affected > 0 {
                view.apply(&sd, &mut work)?;
            }
            report.total_work.absorb(work);
            report.views.push(ViewReport {
                view: vid,
                affected_rows: affected,
                work,
            });
        }
        report.elapsed_nanos = start.elapsed().as_nanos() as u64;
        Ok(report)
    }
}

impl Maintainer {
    /// Snapshot every registered view's materialized state, keyed by name.
    /// Together with the catalog DDL this is a full restart image: the
    /// chronicles themselves carry no state that maintenance needs.
    pub fn snapshot_views(&self) -> Vec<(String, Vec<u8>)> {
        self.views
            .values()
            .map(|v| (v.name().to_string(), v.snapshot()))
            .chain(
                self.rel_views
                    .values()
                    .map(|v| (v.name().to_string(), v.snapshot())),
            )
            .collect()
    }

    /// Replace a registered view's state from a snapshot (restart path).
    /// Dispatches on the registered kind: relation-backed views restore
    /// through their own codec.
    pub fn restore_view(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let id = self.view_id(name)?;
        if let Some(old) = self.rel_views.get(&id) {
            let restored = RelationView::restore(id, name, old.query().clone(), bytes)?;
            self.rel_views.insert(id, restored);
            return Ok(());
        }
        let old = self.views.get(&id).expect("registered");
        let restored =
            crate::persistent::PersistentView::restore(id, name, old.expr().clone(), bytes)?;
        self.views.insert(id, restored);
        Ok(())
    }
}

/// Convenience: the defining expression of a registered view.
impl Maintainer {
    /// The SCA expression of a named view.
    pub fn expr_of(&self, name: &str) -> Result<&ScaExpr> {
        Ok(self.view_by_name(name)?.expr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_algebra::{AggFunc, AggSpec, CaExpr, CmpOp, Predicate};
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{tuple, AttrType, Attribute, Schema};

    fn setup() -> (Catalog, ChronicleId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c = cat
            .create_chronicle("calls", g, cs, Retention::None)
            .unwrap();
        (cat, c)
    }

    fn event(c: ChronicleId, seq: u64, at: i64, tuples: Vec<Tuple>) -> AppendEvent {
        AppendEvent {
            chronicle: c,
            seq: SeqNo(seq),
            chronon: Chronon(at),
            tuples,
        }
    }

    #[test]
    fn register_and_maintain() {
        let (mut cat, c) = setup();
        let mut m = Maintainer::new();
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "total")],
        )
        .unwrap();
        let vid = m.register("totals", expr).unwrap();

        let rows = vec![tuple![SeqNo(1), 555i64, 2.5f64]];
        cat.append(c, Chronon(1), &rows).unwrap();
        let r = m.on_append(&cat, &event(c, 1, 1, rows)).unwrap();
        assert_eq!(r.views.len(), 1);
        assert_eq!(r.views[0].affected_rows, 1);
        assert_eq!(
            m.view(vid).unwrap().get_agg(&[Value::Int(555)], 0),
            Some(Value::Float(2.5))
        );
        assert_eq!(
            m.query("totals", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(2.5)
        );
    }

    #[test]
    fn duplicate_view_name_rejected() {
        let (cat, c) = setup();
        let mut m = Maintainer::new();
        let mk = || {
            ScaExpr::group_agg(
                CaExpr::chronicle(cat.chronicle(c)),
                &["caller"],
                vec![AggSpec::new(AggFunc::CountStar, "n")],
            )
            .unwrap()
        };
        m.register("v", mk()).unwrap();
        assert!(m.register("v", mk()).is_err());
    }

    #[test]
    fn drop_view_stops_maintenance() {
        let (cat, c) = setup();
        let mut m = Maintainer::new();
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["caller"],
            vec![AggSpec::new(AggFunc::CountStar, "n")],
        )
        .unwrap();
        m.register("v", expr).unwrap();
        m.drop_view("v").unwrap();
        assert_eq!(m.view_count(), 0);
        let r = m
            .on_append(&cat, &event(c, 1, 1, vec![tuple![SeqNo(1), 1i64, 1.0f64]]))
            .unwrap();
        assert!(r.views.is_empty());
        assert!(m.query("v", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn guarded_view_skipped_and_unaffected() {
        let (cat, c) = setup();
        let mut m = Maintainer::new();
        let base = CaExpr::chronicle(cat.chronicle(c));
        let p = Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(60.0))
            .unwrap();
        let expr = ScaExpr::group_agg(
            base.select(p).unwrap(),
            &["caller"],
            vec![AggSpec::new(AggFunc::CountStar, "long_calls")],
        )
        .unwrap();
        m.register("long", expr).unwrap();
        let r = m
            .on_append(&cat, &event(c, 1, 1, vec![tuple![SeqNo(1), 1i64, 2.0f64]]))
            .unwrap();
        assert_eq!(r.routing.skipped_guard, 1);
        assert!(r.views.is_empty());
    }

    #[test]
    fn scan_all_mode_bypasses_router() {
        let (cat, c) = setup();
        let mut m = Maintainer::new();
        let base = CaExpr::chronicle(cat.chronicle(c));
        let p = Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(60.0))
            .unwrap();
        let expr = ScaExpr::group_agg(
            base.select(p).unwrap(),
            &["caller"],
            vec![AggSpec::new(AggFunc::CountStar, "long_calls")],
        )
        .unwrap();
        m.register("long", expr).unwrap();
        m.set_route_mode(RouteMode::ScanAll);
        let r = m
            .on_append(&cat, &event(c, 1, 1, vec![tuple![SeqNo(1), 1i64, 2.0f64]]))
            .unwrap();
        // The view ran (and found an empty delta) instead of being skipped.
        assert_eq!(r.views.len(), 1);
        assert_eq!(r.views[0].affected_rows, 0);
    }

    #[test]
    fn vectorized_and_scalar_maintenance_are_byte_identical() {
        let mk = |mode: BatchMode| {
            let (mut cat, c) = setup();
            let mut m = Maintainer::new();
            m.set_batch_mode(mode);
            let base = CaExpr::chronicle(cat.chronicle(c));
            let p =
                Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(1.0))
                    .unwrap();
            let expr = ScaExpr::group_agg(
                base.select(p).unwrap(),
                &["caller"],
                vec![
                    AggSpec::new(AggFunc::CountStar, "n"),
                    AggSpec::new(AggFunc::Sum(2), "total"),
                ],
            )
            .unwrap();
            m.register("totals", expr).unwrap();
            let mut reports = Vec::new();
            for s in 1..=8u64 {
                let rows: Vec<Tuple> = (0..16)
                    .map(|i| tuple![SeqNo(s), (i % 3) as i64, (s as f64) + i as f64 / 4.0])
                    .collect();
                cat.append(c, Chronon(s as i64), &rows).unwrap();
                reports.push(m.on_append(&cat, &event(c, s, s as i64, rows)).unwrap());
            }
            (m.snapshot_views(), reports)
        };
        let (vec_snap, vec_reports) = mk(BatchMode::Vectorized);
        let (sca_snap, sca_reports) = mk(BatchMode::Scalar);
        assert_eq!(vec_snap, sca_snap, "view state must be byte-identical");
        assert!(vec_reports.iter().all(|r| r.vectorized_views == 1));
        assert!(sca_reports.iter().all(|r| r.vectorized_views == 0));
        for (v, s) in vec_reports.iter().zip(&sca_reports) {
            assert_eq!(v.total_work, s.total_work, "work charges must match");
        }
    }

    #[test]
    fn multiple_views_one_append() {
        let (cat, c) = setup();
        let mut m = Maintainer::new();
        for i in 0..5 {
            let expr = ScaExpr::group_agg(
                CaExpr::chronicle(cat.chronicle(c)),
                &["caller"],
                vec![AggSpec::new(AggFunc::Sum(2), "total")],
            )
            .unwrap();
            m.register(&format!("v{i}"), expr).unwrap();
        }
        let r = m
            .on_append(&cat, &event(c, 1, 1, vec![tuple![SeqNo(1), 9i64, 1.0f64]]))
            .unwrap();
        assert_eq!(r.views.len(), 5);
        assert!(r.total_work.total() > 0);
        assert_eq!(m.view_count(), 5);
        assert_eq!(m.iter_views().count(), 5);
    }
}
