//! History-less composite-event detection — the §6 incarnation.
//!
//! *"Incarnations of the chronicle model may be applicable to domains other
//! than transactional systems. For example, in active databases, the
//! recognition of complex events to be fired is done on a chronicle of
//! events. The notion of history-less evaluation [Cho92a, GJS92b, …] is
//! simply the idea of incremental maintenance of the persistent views
//! defined by the event algebra. The language L in these cases is … a
//! variant of regular expressions."*
//!
//! [`Pattern`] is that regular-expression event algebra; [`EventMatcher`]
//! is its persistent view: per key it keeps only the NFA state set —
//! **never the event history** — and advances it in O(#states) per event.
//! This is exactly a chronicle persistent view in IM-Constant (the state
//! set is bounded by the pattern, not by the data).

use std::collections::{BTreeMap, BTreeSet};

use chronicle_types::{ChronicleError, Result, Value};

/// A regular expression over event type names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// One event of the given type.
    Event(String),
    /// Any single event.
    Any,
    /// `p₁ ; p₂ ; …` — the patterns in order (other events may NOT occur in
    /// between; compose with `Star(Any)` for gaps).
    Seq(Vec<Pattern>),
    /// `p₁ | p₂ | …`.
    Alt(Vec<Pattern>),
    /// `p*` — zero or more.
    Star(Box<Pattern>),
    /// `p+` — one or more.
    Plus(Box<Pattern>),
    /// `p?` — zero or one.
    Opt(Box<Pattern>),
}

impl Pattern {
    /// `a` then `b` with arbitrary events in between: `a ; .* ; b`.
    pub fn then_eventually(a: Pattern, b: Pattern) -> Pattern {
        Pattern::Seq(vec![a, Pattern::Star(Box::new(Pattern::Any)), b])
    }

    /// `n` consecutive events of one type.
    pub fn repeat(event: &str, n: usize) -> Pattern {
        Pattern::Seq(vec![Pattern::Event(event.to_string()); n])
    }
}

/// A Thompson-construction NFA transition.
#[derive(Debug, Clone)]
enum Trans {
    /// Consume an event of this type (or any, for `None`) and move on.
    Consume(Option<String>, usize),
    /// ε-transitions.
    Eps(Vec<usize>),
}

/// The compiled NFA: states `0..n`, entry 0 by construction of `compile`.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    trans: Vec<Trans>,
    start: usize,
    accept: usize,
}

impl CompiledPattern {
    /// Compile a pattern (Thompson construction).
    pub fn compile(pattern: &Pattern) -> Result<CompiledPattern> {
        let mut c = Compiler { trans: Vec::new() };
        let (start, accept) = c.build(pattern)?;
        Ok(CompiledPattern {
            trans: c.trans,
            start,
            accept,
        })
    }

    /// Number of NFA states (the per-key space bound).
    pub fn states(&self) -> usize {
        self.trans.len()
    }

    fn eps_closure(&self, set: &mut BTreeSet<usize>) {
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            if let Trans::Eps(targets) = &self.trans[s] {
                for &t in targets {
                    if set.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
    }

    /// The initial state set.
    pub fn initial(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::from([self.start]);
        self.eps_closure(&mut set);
        set
    }

    /// Advance a state set by one event; returns whether an accepting state
    /// is reached. O(#states).
    pub fn step(&self, set: &BTreeSet<usize>, event: &str) -> (BTreeSet<usize>, bool) {
        let mut next = BTreeSet::new();
        for &s in set {
            if let Trans::Consume(ty, target) = &self.trans[s] {
                if ty.as_deref().is_none_or(|t| t == event) {
                    next.insert(*target);
                }
            }
        }
        self.eps_closure(&mut next);
        let matched = next.contains(&self.accept);
        (next, matched)
    }
}

struct Compiler {
    trans: Vec<Trans>,
}

impl Compiler {
    fn push(&mut self, t: Trans) -> usize {
        self.trans.push(t);
        self.trans.len() - 1
    }

    /// Build a fragment; returns (entry, exit) where exit is an ε node with
    /// no outgoing edges yet (patched by callers).
    fn build(&mut self, p: &Pattern) -> Result<(usize, usize)> {
        match p {
            Pattern::Event(name) => {
                let exit = self.push(Trans::Eps(vec![]));
                let entry = self.push(Trans::Consume(Some(name.clone()), exit));
                Ok((entry, exit))
            }
            Pattern::Any => {
                let exit = self.push(Trans::Eps(vec![]));
                let entry = self.push(Trans::Consume(None, exit));
                Ok((entry, exit))
            }
            Pattern::Seq(parts) => {
                if parts.is_empty() {
                    return Err(ChronicleError::InvalidSchema("empty Seq pattern".into()));
                }
                let mut frags = Vec::with_capacity(parts.len());
                for part in parts {
                    frags.push(self.build(part)?);
                }
                for w in frags.windows(2) {
                    let (_, exit_a) = w[0];
                    let (entry_b, _) = w[1];
                    self.link(exit_a, entry_b);
                }
                Ok((frags[0].0, frags[frags.len() - 1].1))
            }
            Pattern::Alt(parts) => {
                if parts.is_empty() {
                    return Err(ChronicleError::InvalidSchema("empty Alt pattern".into()));
                }
                let exit = self.push(Trans::Eps(vec![]));
                let mut entries = Vec::with_capacity(parts.len());
                for part in parts {
                    let (e, x) = self.build(part)?;
                    self.link(x, exit);
                    entries.push(e);
                }
                let entry = self.push(Trans::Eps(entries));
                Ok((entry, exit))
            }
            Pattern::Star(inner) => {
                let (e, x) = self.build(inner)?;
                let exit = self.push(Trans::Eps(vec![]));
                let entry = self.push(Trans::Eps(vec![e, exit]));
                self.link(x, e);
                self.link(x, exit);
                Ok((entry, exit))
            }
            Pattern::Plus(inner) => {
                let (e, x) = self.build(inner)?;
                let exit = self.push(Trans::Eps(vec![]));
                self.link(x, e);
                self.link(x, exit);
                Ok((e, exit))
            }
            Pattern::Opt(inner) => {
                let (e, x) = self.build(inner)?;
                let exit = self.push(Trans::Eps(vec![]));
                self.link(x, exit);
                let entry = self.push(Trans::Eps(vec![e, exit]));
                Ok((entry, exit))
            }
        }
    }

    fn link(&mut self, from: usize, to: usize) {
        match &mut self.trans[from] {
            Trans::Eps(targets) => targets.push(to),
            Trans::Consume(..) => unreachable!("fragment exits are ε nodes"),
        }
    }
}

/// A keyed, history-less event matcher: the persistent view of the event
/// algebra. Matching restarts at every event (every suffix is a candidate
/// match start), so the matcher recognizes the pattern *anywhere* in each
/// key's stream — while storing only O(#states) per key.
#[derive(Debug)]
pub struct EventMatcher {
    compiled: CompiledPattern,
    /// Per-key live NFA state set.
    states: BTreeMap<Vec<Value>, BTreeSet<usize>>,
    /// Per-key number of matches fired so far.
    matches: BTreeMap<Vec<Value>, u64>,
    events_processed: u64,
}

impl EventMatcher {
    /// Compile `pattern` into a matcher.
    pub fn new(pattern: &Pattern) -> Result<EventMatcher> {
        Ok(EventMatcher {
            compiled: CompiledPattern::compile(pattern)?,
            states: BTreeMap::new(),
            matches: BTreeMap::new(),
            events_processed: 0,
        })
    }

    /// Process one event for `key`; returns true iff the pattern completed
    /// on this event. O(#pattern-states), independent of history length.
    pub fn on_event(&mut self, key: &[Value], event: &str) -> bool {
        self.events_processed += 1;
        let current = self
            .states
            .entry(key.to_vec())
            .or_insert_with(|| self.compiled.initial());
        // Every event may also start a fresh match attempt.
        let mut set = current.clone();
        set.extend(self.compiled.initial());
        let (next, matched) = self.compiled.step(&set, event);
        *current = next;
        if matched {
            *self.matches.entry(key.to_vec()).or_insert(0) += 1;
        }
        matched
    }

    /// Matches fired for `key` so far.
    pub fn match_count(&self, key: &[Value]) -> u64 {
        self.matches.get(key).copied().unwrap_or(0)
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The per-key space bound: NFA states in the compiled pattern.
    pub fn state_bound(&self) -> usize {
        self.compiled.states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: i64) -> Vec<Value> {
        vec![Value::Int(k)]
    }

    #[test]
    fn three_consecutive_withdrawals() {
        // The classic fraud pattern: three withdrawals in a row.
        let p = Pattern::repeat("withdrawal", 3);
        let mut m = EventMatcher::new(&p).unwrap();
        assert!(!m.on_event(&key(1), "withdrawal"));
        assert!(!m.on_event(&key(1), "withdrawal"));
        assert!(m.on_event(&key(1), "withdrawal"), "third in a row fires");
        // A fourth fires again (the last three are also consecutive).
        assert!(m.on_event(&key(1), "withdrawal"));
        // A deposit breaks the run.
        assert!(!m.on_event(&key(1), "deposit"));
        assert!(!m.on_event(&key(1), "withdrawal"));
        assert!(!m.on_event(&key(1), "withdrawal"));
        assert!(m.on_event(&key(1), "withdrawal"));
        assert_eq!(m.match_count(&key(1)), 3);
    }

    #[test]
    fn keys_are_independent() {
        let p = Pattern::repeat("w", 2);
        let mut m = EventMatcher::new(&p).unwrap();
        assert!(!m.on_event(&key(1), "w"));
        assert!(!m.on_event(&key(2), "w"));
        assert!(m.on_event(&key(1), "w"));
        assert_eq!(m.match_count(&key(1)), 1);
        assert_eq!(m.match_count(&key(2)), 0);
    }

    #[test]
    fn eventually_pattern() {
        // login …anything… large_transfer
        let p = Pattern::then_eventually(
            Pattern::Event("login".into()),
            Pattern::Event("large_transfer".into()),
        );
        let mut m = EventMatcher::new(&p).unwrap();
        assert!(!m.on_event(&key(1), "large_transfer"), "no login yet");
        assert!(!m.on_event(&key(1), "login"));
        assert!(!m.on_event(&key(1), "browse"));
        assert!(!m.on_event(&key(1), "browse"));
        assert!(m.on_event(&key(1), "large_transfer"));
    }

    #[test]
    fn alternation_and_option() {
        // (deposit | refund) check?  — a credit followed optionally by a check.
        let p = Pattern::Seq(vec![
            Pattern::Alt(vec![
                Pattern::Event("deposit".into()),
                Pattern::Event("refund".into()),
            ]),
            Pattern::Opt(Box::new(Pattern::Event("check".into()))),
        ]);
        let mut m = EventMatcher::new(&p).unwrap();
        assert!(
            m.on_event(&key(1), "refund"),
            "credit alone matches (check optional)"
        );
        assert!(
            m.on_event(&key(1), "check"),
            "…and with the check it matches again"
        );
        assert!(!m.on_event(&key(1), "withdrawal"));
        assert!(m.on_event(&key(1), "deposit"));
    }

    #[test]
    fn plus_and_star() {
        // error+ reboot
        let p = Pattern::Seq(vec![
            Pattern::Plus(Box::new(Pattern::Event("error".into()))),
            Pattern::Event("reboot".into()),
        ]);
        let mut m = EventMatcher::new(&p).unwrap();
        assert!(!m.on_event(&key(1), "reboot"), "needs at least one error");
        assert!(!m.on_event(&key(1), "error"));
        assert!(!m.on_event(&key(1), "error"));
        assert!(m.on_event(&key(1), "reboot"));
    }

    #[test]
    fn history_less_space_bound() {
        // A million events: per-key state stays bounded by the pattern.
        let p = Pattern::repeat("w", 5);
        let mut m = EventMatcher::new(&p).unwrap();
        let bound = m.state_bound();
        for i in 0..100_000u64 {
            let e = if i % 7 == 0 { "d" } else { "w" };
            m.on_event(&key(1), e);
        }
        assert_eq!(m.events_processed(), 100_000);
        assert!(m.states[&key(1)].len() <= bound);
        assert!(m.match_count(&key(1)) > 0);
    }

    #[test]
    fn empty_patterns_rejected() {
        assert!(EventMatcher::new(&Pattern::Seq(vec![])).is_err());
        assert!(EventMatcher::new(&Pattern::Alt(vec![])).is_err());
    }

    #[test]
    fn any_matches_everything() {
        let p = Pattern::Seq(vec![Pattern::Event("a".into()), Pattern::Any]);
        let mut m = EventMatcher::new(&p).unwrap();
        assert!(!m.on_event(&key(1), "a"));
        assert!(m.on_event(&key(1), "whatever"));
    }
}
