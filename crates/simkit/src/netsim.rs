//! Deterministic in-memory transport for replication simulation.
//!
//! [`SimPipe`] models one direction of a TCP connection as a plain byte
//! queue: the sender appends, the receiver drains arbitrary-sized
//! prefixes, and a *cut* — the simulated connection dropping — discards
//! everything still in flight. The pipe itself draws no randomness; the
//! simulation driver's seeded RNG decides how many bytes each delivery
//! hands over and when the connection dies, so a replay from the seed
//! reproduces every partial frame and every truncation byte-for-byte.
//!
//! For failover simulation the pipe also models two softer network
//! moods: a *partition* ([`SimPipe::partition`]) holds every in-flight
//! byte — sends still queue, deliveries return nothing — until
//! [`SimPipe::heal`] reopens the link (a long delay is a partition the
//! driver heals later); and [`SimPipe::duplicate_last`] re-queues a copy
//! of the most recent send, modeling a retransmit whose original was not
//! actually lost. Both stay fully deterministic: the driver decides when.

use std::collections::VecDeque;

/// One direction of a simulated connection: a byte queue with loss only
/// at explicit cut points (TCP's contract — reliable until it isn't).
#[derive(Debug, Default)]
pub struct SimPipe {
    pending: VecDeque<u8>,
    last_send: Vec<u8>,
    partitioned: bool,
    sent: u64,
    delivered: u64,
    cuts: u64,
    dropped: u64,
    duplicates: u64,
}

impl SimPipe {
    /// A fresh, connected pipe.
    pub fn new() -> SimPipe {
        SimPipe::default()
    }

    /// Queue bytes on the sending side.
    pub fn send(&mut self, bytes: &[u8]) {
        self.sent += bytes.len() as u64;
        self.pending.extend(bytes);
        self.last_send = bytes.to_vec();
    }

    /// Deliver up to `max` queued bytes to the receiving side. The driver
    /// picks `max` from its seeded RNG, so frames arrive re-chunked at
    /// arbitrary boundaries — including mid-header. During a partition
    /// nothing is delivered, however large `max` is.
    pub fn deliver(&mut self, max: usize) -> Vec<u8> {
        if self.partitioned {
            return Vec::new();
        }
        let n = max.min(self.pending.len());
        let out: Vec<u8> = self.pending.drain(..n).collect();
        self.delivered += out.len() as u64;
        out
    }

    /// The link stalls: sends keep queueing but deliveries return nothing
    /// until [`heal`](SimPipe::heal). Unlike a cut, no bytes are lost —
    /// this is a delay/partition, not a drop.
    pub fn partition(&mut self) {
        self.partitioned = true;
    }

    /// Reopen a partitioned link; queued bytes become deliverable again.
    pub fn heal(&mut self) {
        self.partitioned = false;
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Re-queue a copy of the most recent send — a retransmit whose
    /// original also made it. Returns how many bytes were duplicated
    /// (zero if nothing was ever sent on this connection).
    pub fn duplicate_last(&mut self) -> usize {
        let n = self.last_send.len();
        if n > 0 {
            self.sent += n as u64;
            self.duplicates += 1;
            let copy = self.last_send.clone();
            self.pending.extend(copy);
        }
        n
    }

    /// Bytes queued but not yet delivered (in flight).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The connection drops: every in-flight byte is lost. Returns how
    /// many were discarded. The pipe is reusable afterwards — a reuse is
    /// a *new* connection, so the receiver must also reset its frame
    /// decoder and renegotiate its resume point.
    pub fn cut(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        self.last_send.clear();
        self.partitioned = false;
        self.cuts += 1;
        self.dropped += n as u64;
        n
    }

    /// Total bytes ever queued.
    pub fn bytes_sent(&self) -> u64 {
        self.sent
    }

    /// Total bytes ever delivered.
    pub fn bytes_delivered(&self) -> u64 {
        self.delivered
    }

    /// Cuts suffered so far.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// Bytes lost to cuts.
    pub fn bytes_dropped(&self) -> u64 {
        self.dropped
    }

    /// Retransmit duplications injected so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_across_arbitrary_chunks() {
        let mut pipe = SimPipe::new();
        pipe.send(b"hello ");
        pipe.send(b"world");
        let mut got = Vec::new();
        for max in [1, 4, 2, 100] {
            got.extend(pipe.deliver(max));
        }
        assert_eq!(got, b"hello world");
        assert_eq!(pipe.pending(), 0);
        assert_eq!(pipe.bytes_sent(), 11);
        assert_eq!(pipe.bytes_delivered(), 11);
    }

    #[test]
    fn cut_discards_only_in_flight_bytes() {
        let mut pipe = SimPipe::new();
        pipe.send(b"abcdef");
        let first = pipe.deliver(2);
        assert_eq!(first, b"ab");
        assert_eq!(pipe.cut(), 4);
        assert_eq!(pipe.pending(), 0);
        assert_eq!(pipe.bytes_dropped(), 4);
        // The pipe carries a fresh connection afterwards.
        pipe.send(b"xy");
        assert_eq!(pipe.deliver(10), b"xy");
        assert_eq!(pipe.cuts(), 1);
    }

    #[test]
    fn partition_holds_bytes_without_loss() {
        let mut pipe = SimPipe::new();
        pipe.send(b"held");
        pipe.partition();
        assert!(pipe.is_partitioned());
        assert_eq!(pipe.deliver(100), b"");
        pipe.send(b" more");
        assert_eq!(pipe.deliver(100), b"");
        assert_eq!(pipe.pending(), 9);
        pipe.heal();
        assert_eq!(pipe.deliver(100), b"held more");
        assert_eq!(pipe.bytes_dropped(), 0);
    }

    #[test]
    fn duplicate_last_requeues_the_most_recent_send() {
        let mut pipe = SimPipe::new();
        assert_eq!(pipe.duplicate_last(), 0, "nothing to retransmit yet");
        pipe.send(b"abc");
        pipe.send(b"de");
        assert_eq!(pipe.duplicate_last(), 2);
        assert_eq!(pipe.deliver(100), b"abcdede");
        assert_eq!(pipe.duplicates(), 1);
        assert_eq!(pipe.bytes_sent(), 7);
    }

    #[test]
    fn cut_forgets_the_last_send() {
        let mut pipe = SimPipe::new();
        pipe.send(b"abc");
        pipe.partition();
        pipe.cut();
        // A cut is a fresh connection: no partition, no retransmit memory.
        assert!(!pipe.is_partitioned());
        assert_eq!(pipe.duplicate_last(), 0);
        assert_eq!(pipe.pending(), 0);
    }
}
