//! Deterministic in-memory transport for replication simulation.
//!
//! [`SimPipe`] models one direction of a TCP connection as a plain byte
//! queue: the sender appends, the receiver drains arbitrary-sized
//! prefixes, and a *cut* — the simulated connection dropping — discards
//! everything still in flight. The pipe itself draws no randomness; the
//! simulation driver's seeded RNG decides how many bytes each delivery
//! hands over and when the connection dies, so a replay from the seed
//! reproduces every partial frame and every truncation byte-for-byte.

use std::collections::VecDeque;

/// One direction of a simulated connection: a byte queue with loss only
/// at explicit cut points (TCP's contract — reliable until it isn't).
#[derive(Debug, Default)]
pub struct SimPipe {
    pending: VecDeque<u8>,
    sent: u64,
    delivered: u64,
    cuts: u64,
    dropped: u64,
}

impl SimPipe {
    /// A fresh, connected pipe.
    pub fn new() -> SimPipe {
        SimPipe::default()
    }

    /// Queue bytes on the sending side.
    pub fn send(&mut self, bytes: &[u8]) {
        self.sent += bytes.len() as u64;
        self.pending.extend(bytes);
    }

    /// Deliver up to `max` queued bytes to the receiving side. The driver
    /// picks `max` from its seeded RNG, so frames arrive re-chunked at
    /// arbitrary boundaries — including mid-header.
    pub fn deliver(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.pending.len());
        let out: Vec<u8> = self.pending.drain(..n).collect();
        self.delivered += out.len() as u64;
        out
    }

    /// Bytes queued but not yet delivered (in flight).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The connection drops: every in-flight byte is lost. Returns how
    /// many were discarded. The pipe is reusable afterwards — a reuse is
    /// a *new* connection, so the receiver must also reset its frame
    /// decoder and renegotiate its resume point.
    pub fn cut(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        self.cuts += 1;
        self.dropped += n as u64;
        n
    }

    /// Total bytes ever queued.
    pub fn bytes_sent(&self) -> u64 {
        self.sent
    }

    /// Total bytes ever delivered.
    pub fn bytes_delivered(&self) -> u64 {
        self.delivered
    }

    /// Cuts suffered so far.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// Bytes lost to cuts.
    pub fn bytes_dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_across_arbitrary_chunks() {
        let mut pipe = SimPipe::new();
        pipe.send(b"hello ");
        pipe.send(b"world");
        let mut got = Vec::new();
        for max in [1, 4, 2, 100] {
            got.extend(pipe.deliver(max));
        }
        assert_eq!(got, b"hello world");
        assert_eq!(pipe.pending(), 0);
        assert_eq!(pipe.bytes_sent(), 11);
        assert_eq!(pipe.bytes_delivered(), 11);
    }

    #[test]
    fn cut_discards_only_in_flight_bytes() {
        let mut pipe = SimPipe::new();
        pipe.send(b"abcdef");
        let first = pipe.deliver(2);
        assert_eq!(first, b"ab");
        assert_eq!(pipe.cut(), 4);
        assert_eq!(pipe.pending(), 0);
        assert_eq!(pipe.bytes_dropped(), 4);
        // The pipe carries a fresh connection afterwards.
        pipe.send(b"xy");
        assert_eq!(pipe.deliver(10), b"xy");
        assert_eq!(pipe.cuts(), 1);
    }
}
