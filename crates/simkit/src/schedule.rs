//! Seeded operation schedules for the simulation driver.
//!
//! A [`Schedule`] is pure data: a list of [`SimOp`]s — SQL statements plus
//! meta-operations (checkpoint, crash, clean reopen) — generated
//! deterministically from a single `u64` seed. The driver (in the root
//! crate) executes the ops against `ChronicleDb`/`ShardedDb` over a
//! [`crate::SimFs`] seeded with the same value, so *everything* a failing
//! run did — which statements ran, where the crash hit, which bytes the
//! torn write kept — replays from that one seed.
//!
//! The generator keeps just enough bookkeeping to emit mostly-valid
//! statements (live relation keys for `UPDATE`/`DELETE`, live view names
//! for `DROP VIEW`, monotone chronons from a [`crate::VirtualClock`]), so
//! schedules exercise the maintenance machinery rather than the error
//! paths.

use chronicle_testkit::{Rng, SeedableRng, SmallRng};

use crate::clock::VirtualClock;

/// One step of a simulation schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOp {
    /// Execute one SQL statement. Counts as *acknowledged* iff it returns
    /// `Ok` — the oracle replays exactly the acknowledged prefix.
    Sql(String),
    /// Flush the WAL and write a checkpoint (no logical state change).
    Checkpoint,
    /// Arm the filesystem to crash after `countdown` further mutating
    /// operations, then keep executing: some later op dies mid-syscall,
    /// the driver power-cycles the disk, reopens, and compares against
    /// the oracle.
    Crash {
        /// Mutating fs ops until the lights go out (1 = the very next).
        countdown: u64,
    },
    /// Relocate one chronicle group to an explicit shard (heavy-light
    /// placement's move primitive, driven adversarially). The driver
    /// renders this as `MOVE GROUP <g> TO SHARD <to % n>`; single-shard
    /// runs reject it (not acknowledged), so oracle and engine stay in
    /// lockstep. Crashing mid-move exercises the epoch roll-forward
    /// reconcile in `ShardedDb::open`.
    MoveGroup {
        /// Group name (always one of the prologue's `g{i}`).
        group: String,
        /// Raw target; the driver reduces it modulo the shard count.
        to: u64,
    },
    /// Clean shutdown and reopen: recovery must reproduce the exact
    /// acknowledged state. `short_reads` transient read faults are armed
    /// first (single-shard runs only — parallel shard recovery would
    /// consume them in nondeterministic thread order), so recovery must
    /// fail cleanly and succeed on retry rather than corrupt anything.
    Reopen {
        /// Whole-file reads that fail with `Interrupted` before recovery
        /// reads start succeeding again (0 = a plain clean reopen).
        short_reads: u64,
    },
}

/// Tuning knobs for [`generate`]. `Default` gives a small, fast schedule
/// (a few hundred ops) suitable for running many seeds in a test gate.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleConfig {
    /// Chronicle groups to create.
    pub groups: usize,
    /// Chronicles to create (assigned to groups round-robin).
    pub chronicles: usize,
    /// Body operations to generate after the DDL prologue.
    pub ops: usize,
    /// Upper bound on concurrently live persistent views.
    pub max_views: usize,
    /// Upper bound on periodic view families (never dropped).
    pub max_periodic: usize,
}

impl Default for ScheduleConfig {
    fn default() -> ScheduleConfig {
        ScheduleConfig {
            groups: 2,
            chronicles: 3,
            ops: 120,
            max_views: 4,
            max_periodic: 2,
        }
    }
}

/// A generated schedule, tagged with the seed that reproduces it.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The seed [`generate`] was called with.
    pub seed: u64,
    /// The ops, in execution order.
    pub ops: Vec<SimOp>,
}

/// Deterministically generate a schedule from `seed`.
///
/// Shape: a DDL prologue (groups, `RETAIN ALL` chronicles, one keyed
/// relation, one view) followed by `cfg.ops` weighted body ops — appends
/// with monotone chronons, relation inserts/updates/deletes against live
/// keys, mid-stream view DDL and drops, periodic views, checkpoints,
/// armed crashes, and clean reopens.
pub fn generate(seed: u64, cfg: &ScheduleConfig) -> Schedule {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_5c4e_d01e_u64);
    let mut clock = VirtualClock::new(1);
    let mut ops = Vec::with_capacity(cfg.ops + 16);

    // ---- prologue: the world the body mutates --------------------------
    for g in 0..cfg.groups {
        ops.push(SimOp::Sql(format!("CREATE GROUP g{g}")));
    }
    for c in 0..cfg.chronicles {
        let g = c % cfg.groups;
        ops.push(SimOp::Sql(format!(
            "CREATE CHRONICLE c{c} (sn SEQ, k INT, v FLOAT) IN GROUP g{g} RETAIN ALL"
        )));
    }
    ops.push(SimOp::Sql(
        "CREATE RELATION r0 (rk INT, tag STRING, PRIMARY KEY (rk))".into(),
    ));

    let mut next_view;
    let mut live_views: Vec<String> = Vec::new();
    let mut next_periodic = 0usize;
    let mut next_key = 0i64;
    let mut live_keys: Vec<i64> = Vec::new();

    ops.push(SimOp::Sql(
        "CREATE VIEW v0 AS SELECT k, SUM(v) AS s FROM c0 GROUP BY k".into(),
    ));
    next_view = 1;
    live_views.push("v0".into());

    // ---- body ----------------------------------------------------------
    for _ in 0..cfg.ops {
        let roll = rng.gen_range(0..100u64);
        match roll {
            // Appends dominate: this is an append-mostly model.
            0..=54 => {
                let c = rng.gen_range(0..cfg.chronicles as u64);
                let nrows = 1 + rng.gen_range(0..3u64);
                let rows: Vec<String> = (0..nrows)
                    .map(|_| {
                        let k = rng.gen_range(0..8u64);
                        let v = rng.gen_range(0..40u64) as f64 / 4.0;
                        format!("({k}, {v:.2})")
                    })
                    .collect();
                let at = clock.advance(rng.gen_range(0..3u64));
                ops.push(SimOp::Sql(format!(
                    "APPEND INTO c{c} AT {at} VALUES {}",
                    rows.join(", ")
                )));
            }
            55..=64 => {
                let k = next_key;
                next_key += 1;
                live_keys.push(k);
                ops.push(SimOp::Sql(format!("INSERT INTO r0 VALUES ({k}, 't{k}')")));
            }
            65..=70 => {
                if live_keys.is_empty() {
                    continue;
                }
                let k = live_keys[rng.gen_range(0..live_keys.len() as u64) as usize];
                ops.push(SimOp::Sql(format!(
                    "UPDATE r0 SET tag = 'u{}' WHERE rk = {k}",
                    rng.gen_range(0..1000u64)
                )));
            }
            71..=73 => {
                if live_keys.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..live_keys.len() as u64) as usize;
                let k = live_keys.swap_remove(i);
                ops.push(SimOp::Sql(format!("DELETE FROM r0 WHERE rk = {k}")));
            }
            74..=79 => {
                if live_views.len() >= cfg.max_views {
                    continue;
                }
                let name = format!("v{next_view}");
                next_view += 1;
                let c = rng.gen_range(0..cfg.chronicles as u64);
                let sql = match rng.gen_range(0..4u64) {
                    0 => {
                        format!("CREATE VIEW {name} AS SELECT k, SUM(v) AS s FROM c{c} GROUP BY k")
                    }
                    1 => format!(
                        "CREATE VIEW {name} AS SELECT k, COUNT(*) AS n FROM c{c} GROUP BY k"
                    ),
                    2 => format!(
                        "CREATE VIEW {name} AS SELECT k, MAX(v) AS m FROM c{c} \
                         WHERE v > 0.5 GROUP BY k"
                    ),
                    _ => format!(
                        "CREATE VIEW {name} AS SELECT k, COUNT(*) AS n FROM c{c} \
                         JOIN r0 ON k = rk GROUP BY k"
                    ),
                };
                live_views.push(name);
                ops.push(SimOp::Sql(sql));
            }
            80..=81 => {
                if live_views.len() <= 1 {
                    continue;
                }
                let i = rng.gen_range(0..live_views.len() as u64) as usize;
                let name = live_views.swap_remove(i);
                ops.push(SimOp::Sql(format!("DROP VIEW {name}")));
            }
            82..=84 => {
                if next_periodic >= cfg.max_periodic {
                    continue;
                }
                let name = format!("p{next_periodic}");
                next_periodic += 1;
                let c = rng.gen_range(0..cfg.chronicles as u64);
                let width = 5 + rng.gen_range(0..20u64);
                let expire = if rng.gen_bool(0.5) {
                    format!(" EXPIRE AFTER {}", width * 3)
                } else {
                    String::new()
                };
                ops.push(SimOp::Sql(format!(
                    "CREATE PERIODIC VIEW {name} AS SELECT k, SUM(v) AS s FROM c{c} \
                     GROUP BY k OVER CALENDAR EVERY {width}{expire}"
                )));
            }
            85..=86 => {
                let g = rng.gen_range(0..cfg.groups as u64);
                ops.push(SimOp::MoveGroup {
                    group: format!("g{g}"),
                    to: rng.gen_range(0..8u64),
                });
            }
            87..=90 => ops.push(SimOp::Checkpoint),
            91..=96 => ops.push(SimOp::Crash {
                countdown: 1 + rng.gen_range(0..24u64),
            }),
            _ => {
                let short_reads = if rng.gen_bool(0.4) {
                    1 + rng.gen_range(0..2u64)
                } else {
                    0
                };
                ops.push(SimOp::Reopen { short_reads });
            }
        }
    }
    // Every schedule ends with a hard power cut + recovery check in the
    // driver, so even crash-free rolls exercise recovery.
    Schedule { seed, ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ScheduleConfig::default();
        let a = generate(7, &cfg);
        let b = generate(7, &cfg);
        assert_eq!(a.ops, b.ops);
        let c = generate(8, &cfg);
        assert_ne!(a.ops, c.ops, "different seeds diverge");
    }

    #[test]
    fn schedule_has_expected_shape() {
        let cfg = ScheduleConfig::default();
        let mut seen_crash = false;
        let mut seen_checkpoint = false;
        let mut seen_move = false;
        for seed in 0..16 {
            let s = generate(seed, &cfg);
            assert!(s.ops.len() > cfg.groups + cfg.chronicles);
            for op in &s.ops {
                match op {
                    SimOp::Crash { countdown } => {
                        assert!(*countdown >= 1);
                        seen_crash = true;
                    }
                    SimOp::Checkpoint => seen_checkpoint = true,
                    SimOp::MoveGroup { group, .. } => {
                        assert!(group.starts_with('g'), "moves target prologue groups");
                        seen_move = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(seen_crash && seen_checkpoint && seen_move);
    }

    #[test]
    fn chronons_are_monotone() {
        let s = generate(3, &ScheduleConfig::default());
        let mut last = 0i64;
        for op in &s.ops {
            if let SimOp::Sql(sql) = op {
                if let Some(rest) = sql.strip_prefix("APPEND INTO ") {
                    let at: i64 = rest
                        .split(" AT ")
                        .nth(1)
                        .and_then(|r| r.split(' ').next())
                        .unwrap()
                        .parse()
                        .unwrap();
                    assert!(at >= last, "chronon went backwards: {sql}");
                    last = at;
                }
            }
        }
    }
}
