//! The filesystem abstraction the durability layer is written against.
//!
//! [`Vfs`] captures exactly the operations the WAL, checkpoint, and
//! manifest code need — whole-file reads, append-oriented writable
//! handles, rename, remove, directory listing, and the two sync points
//! (`sync_data` on a file, `sync_dir` on a directory). Production code
//! runs over [`RealFs`], which maps each method 1:1 onto `std::fs`; the
//! deterministic simulator runs over [`crate::SimFs`], which models the
//! page cache and injects crashes and faults at syscall granularity.
//!
//! All methods return `std::io::Result` so implementations stay free of
//! workspace error types; callers wrap failures into their own typed
//! errors exactly as they did with `std::fs`.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A writable file handle obtained from [`Vfs::create`].
///
/// Handles are append-oriented: the durability layer only ever creates a
/// file and extends it (WAL segments, checkpoint temporaries); in-place
/// rewrites go through create-truncate or [`Vfs::truncate`].
pub trait VfsFile: Send + fmt::Debug {
    /// Append `data` at the current end of the file.
    fn write_all(&mut self, data: &[u8]) -> io::Result<()>;

    /// Make everything written so far durable (survives a crash).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// A filesystem. Object-safe; shared as `Arc<dyn Vfs>`.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Full paths of the entries directly inside `dir` (files and
    /// directories), in no guaranteed order.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// The entire contents of the file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// True iff `path` exists (file or directory).
    fn exists(&self, path: &Path) -> bool;

    /// Create (or truncate) the file at `path` and return a writable
    /// handle positioned at its start.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Shrink the existing file at `path` to `len` bytes and make the new
    /// content durable before returning. Used by recovery repair (torn-tail
    /// truncation), where the shorter image must not be lost to a later
    /// crash once new records land after it.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Atomically rename `from` to `to` (replacing `to` if present). The
    /// rename is durable only after [`Vfs::sync_dir`] on the parent.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Make the *namespace* of `dir` durable: creations, renames, and
    /// removals inside it survive a crash only after this returns.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production filesystem: every method maps directly onto `std::fs`,
/// preserving the exact behaviour the durability layer had when it called
/// `std::fs` itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl RealFs {
    /// A shared handle, ready to pass where `Arc<dyn Vfs>` is expected.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(RealFs)
    }
}

/// A real file opened for appending writes.
struct RealFile {
    file: File,
    path: PathBuf,
}

impl fmt::Debug for RealFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RealFile")
            .field("path", &self.path)
            .finish()
    }
}

impl VfsFile for RealFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = File::create(path)?;
        Ok(Box::new(RealFile {
            file,
            path: path.to_path_buf(),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_testkit::TempDir;

    #[test]
    fn realfs_round_trip() {
        let tmp = TempDir::new("simkit-realfs");
        let fs = RealFs;
        let dir = tmp.join("sub");
        fs.create_dir_all(&dir).unwrap();
        let a = dir.join("a.bin");
        {
            let mut f = fs.create(&a).unwrap();
            f.write_all(b"hello ").unwrap();
            f.write_all(b"world").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(fs.read(&a).unwrap(), b"hello world");
        assert!(fs.exists(&a));
        fs.truncate(&a, 5).unwrap();
        assert_eq!(fs.read(&a).unwrap(), b"hello");
        let b = dir.join("b.bin");
        fs.rename(&a, &b).unwrap();
        assert!(!fs.exists(&a));
        let listed = fs.list(&dir).unwrap();
        assert_eq!(listed, vec![b.clone()]);
        fs.sync_dir(&dir).unwrap();
        fs.remove_file(&b).unwrap();
        assert!(fs.list(&dir).unwrap().is_empty());
        assert!(fs.read(&b).is_err());
    }
}
