//! A deterministic logical clock for simulation schedules.
//!
//! Real wall clocks are a source of nondeterminism; inside a simulation
//! every timestamp must derive from the seed. [`VirtualClock`] hands out
//! monotonically non-decreasing chronons: the schedule generator advances
//! it by seeded increments, so a given seed always produces the same
//! timeline — and replays it.

/// A monotone logical clock. Chronons only move forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock starting at chronon `start`.
    pub fn new(start: u64) -> VirtualClock {
        VirtualClock { now: start }
    }

    /// The current chronon.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Move time forward by `delta` chronons and return the new now.
    pub fn advance(&mut self, delta: u64) -> u64 {
        self.now = self.now.saturating_add(delta);
        self.now
    }
}

impl Default for VirtualClock {
    fn default() -> VirtualClock {
        VirtualClock::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_saturating() {
        let mut c = VirtualClock::new(5);
        assert_eq!(c.now(), 5);
        assert_eq!(c.advance(0), 5);
        assert_eq!(c.advance(3), 8);
        assert!(c.advance(u64::MAX) == u64::MAX && c.now() == u64::MAX);
    }
}
