//! An in-memory filesystem with programmable faults, for deterministic
//! crash-consistency simulation (FoundationDB-style).
//!
//! # Model
//!
//! `SimFs` models the two layers a real disk stack has:
//!
//! * the **page cache** — every write lands here first; reads see it;
//! * the **durable medium** — a file's content reaches it only on
//!   `sync_data`, and a *name* (creation, rename, removal) reaches it only
//!   on `sync_dir` of the parent directory.
//!
//! A simulated crash (power loss) discards the cache and keeps only what
//! was durable, with the same latitude a real disk has:
//!
//! * **torn / partial writes** — an unsynced appended suffix survives as
//!   an arbitrary byte prefix (possibly empty, possibly whole);
//! * **unsynced-data loss** — unsynced content may vanish entirely;
//! * **fsync reordering** — each file's unsynced data survives or not
//!   *independently*, so writes issued in program order may survive out
//!   of order across files;
//! * **rename tearing** — an unsynced rename/create/remove may or may not
//!   have reached the disk, and a removed-but-unsynced name may resurrect
//!   with its old durable content.
//!
//! Crashes are injected at *syscall granularity*: arm a countdown with
//! [`SimFs::set_crash_after`] and the N-th subsequent mutating operation
//! partially applies (a write keeps only a seeded prefix), the filesystem
//! enters the crashed state, and every operation fails with a "simulated
//! crash" error until [`SimFs::crash_and_restore`] resolves survival and
//! brings the disk back. All nondeterminism is drawn from a seeded
//! [`SmallRng`], so a schedule replays byte-for-byte from its seed.
//!
//! Transient **short reads** ([`SimFs::set_short_reads`]) make the next N
//! whole-file reads fail with an `Interrupted` error, exercising error
//! propagation through recovery without corrupting state.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use chronicle_testkit::{Rng, SeedableRng, SmallRng};

use crate::vfs::{Vfs, VfsFile};

/// Message carried by every error after the simulated power loss.
pub const CRASH_MSG: &str = "simulated crash (power loss)";

/// Message carried by an injected transient read fault.
pub const SHORT_READ_MSG: &str = "simulated transient read fault";

#[derive(Debug, Clone)]
struct Node {
    /// Live content — what reads observe (the page cache view).
    cache: Vec<u8>,
    /// Content guaranteed to survive a crash (synced).
    durable: Vec<u8>,
    /// The *link* to this name survives a crash (parent dir synced since
    /// this name appeared).
    name_durable: bool,
    /// When this (not yet durable) link was produced by renaming a durably
    /// linked name, that old name. Rename is atomic: exactly one of the
    /// two dirents survives a crash, so if this link is lost the tombstone
    /// at the old name *must* resurrect — the inode cannot vanish.
    renamed_from: Option<PathBuf>,
    /// When this (not yet durable) link was produced by renaming *over* a
    /// durably linked name, the overwritten file's durable content. Rename
    /// never unlinks its target: the on-disk dirent flips atomically from
    /// the old inode to the new one, so if this link is lost the old
    /// content is *certainly* still at this name after a crash.
    replaced_durable: Option<Vec<u8>>,
}

#[derive(Debug, Clone, Default)]
struct State {
    files: BTreeMap<PathBuf, Node>,
    dirs: Vec<PathBuf>,
    /// Durably linked names removed (unlink / rename-away) without a dir
    /// sync yet: on crash each may resurrect with its durable content.
    tombstones: BTreeMap<PathBuf, Vec<u8>>,
    crashed: bool,
    crash_after: Option<u64>,
    short_reads: u64,
    mutations: u64,
}

/// The deterministic in-memory filesystem. Cheap to clone the *handle*
/// (`Clone` shares state); use [`SimFs::fork`] for an independent copy.
#[derive(Debug, Clone)]
pub struct SimFs {
    state: Arc<Mutex<State>>,
    rng: Arc<Mutex<SmallRng>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn crash_err() -> io::Error {
    io::Error::other(CRASH_MSG)
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl State {
    /// Count one mutating operation against the crash countdown. Returns
    /// true when this very operation trips the crash (the caller then
    /// partially applies it and errors out).
    fn count_mutation(&mut self) -> bool {
        self.mutations += 1;
        match self.crash_after.as_mut() {
            Some(0) | None => false,
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.crash_after = None;
                    self.crashed = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn has_dir(&self, dir: &Path) -> bool {
        self.dirs.iter().any(|d| d == dir)
    }
}

impl SimFs {
    /// An empty filesystem whose fault decisions replay deterministically
    /// from `seed`.
    pub fn new(seed: u64) -> SimFs {
        SimFs {
            state: Arc::new(Mutex::new(State::default())),
            rng: Arc::new(Mutex::new(SmallRng::seed_from_u64(seed))),
        }
    }

    /// A deep, independent copy: same files, same pending cache state,
    /// same fault plan and RNG position. Mutating the fork never affects
    /// the original — the torn-tail sweeps fork once per cut point.
    pub fn fork(&self) -> SimFs {
        SimFs {
            state: Arc::new(Mutex::new(lock(&self.state).clone())),
            rng: Arc::new(Mutex::new(lock(&self.rng).clone())),
        }
    }

    // ---- fault programming -------------------------------------------------

    /// Arm the crash countdown: the `n`-th subsequent mutating operation
    /// (write, create, rename, remove, truncate, sync) partially applies
    /// and fails, and the filesystem stays down until
    /// [`SimFs::crash_and_restore`]. `n = 1` trips the very next one.
    pub fn set_crash_after(&self, n: u64) {
        lock(&self.state).crash_after = if n == 0 { None } else { Some(n) };
    }

    /// Disarm any pending crash countdown and transient read faults.
    pub fn clear_faults(&self) {
        let mut st = lock(&self.state);
        st.crash_after = None;
        st.short_reads = 0;
    }

    /// Make the next `n` whole-file reads fail with a transient
    /// [`io::ErrorKind::Interrupted`] error carrying [`SHORT_READ_MSG`].
    pub fn set_short_reads(&self, n: u64) {
        lock(&self.state).short_reads = n;
    }

    /// True iff the simulated machine is down (a crash tripped and
    /// [`SimFs::crash_and_restore`] has not run yet).
    pub fn crashed(&self) -> bool {
        lock(&self.state).crashed
    }

    /// Mutating operations performed since construction (diagnostics; the
    /// schedule driver uses it to spread crash points over an op range).
    pub fn mutation_count(&self) -> u64 {
        lock(&self.state).mutations
    }

    /// Power-cycle the machine: resolve what survives on the durable
    /// medium (seeded — torn suffixes, lost renames, resurrected names)
    /// and bring the filesystem back up. Also callable while the machine
    /// is still "up" to simulate a hard power cut with no warning.
    pub fn crash_and_restore(&self) {
        let mut st = lock(&self.state);
        let mut rng = lock(&self.rng);
        let mut survivors: BTreeMap<PathBuf, Node> = BTreeMap::new();
        let mut tombstones = std::mem::take(&mut st.tombstones);
        // Rename-away tombstones whose new link was lost: the rename never
        // reached the disk, so the old dirent is certainly still there.
        let mut forced: Vec<PathBuf> = Vec::new();
        for (path, node) in std::mem::take(&mut st.files) {
            let name_survives = node.name_durable || rng.gen_bool(0.5);
            if let Some(src) = &node.renamed_from {
                if name_survives {
                    // The rename reached the disk: the old dirent is gone.
                    tombstones.remove(src);
                } else {
                    forced.push(src.clone());
                }
            }
            if !name_survives {
                // The link flip never hit the disk — but if it was a
                // rename *over* a durably linked file, that dirent is
                // certainly still there with the overwritten content.
                if let Some(old) = node.replaced_durable {
                    survivors.insert(
                        path,
                        Node {
                            cache: old.clone(),
                            durable: old,
                            name_durable: true,
                            renamed_from: None,
                            replaced_durable: None,
                        },
                    );
                }
                continue;
            }
            let content = resolve_content(&node, &mut rng);
            survivors.insert(
                path,
                Node {
                    cache: content.clone(),
                    durable: content,
                    name_durable: true,
                    renamed_from: None,
                    replaced_durable: None,
                },
            );
        }
        // A durably linked name whose removal was never dir-synced may
        // come back with its old durable content — unless the name is now
        // occupied by a surviving rename target. Removal tombstones come
        // back on a coin flip; rename-away tombstones whose target link
        // was lost come back unconditionally (atomicity).
        for (path, durable) in tombstones {
            let resurrect = forced.contains(&path) || rng.gen_bool(0.5);
            if !survivors.contains_key(&path) && resurrect {
                survivors.insert(
                    path,
                    Node {
                        cache: durable.clone(),
                        durable,
                        name_durable: true,
                        renamed_from: None,
                        replaced_durable: None,
                    },
                );
            }
        }
        st.files = survivors;
        st.crashed = false;
        st.crash_after = None;
        st.short_reads = 0;
    }

    // ---- test hooks (direct durable-state surgery) -------------------------

    /// Overwrite (or create) `path` with `bytes`, both live and durable —
    /// the hook the torn-tail sweeps use to install a cut segment.
    pub fn install(&self, path: &Path, bytes: &[u8]) {
        let mut st = lock(&self.state);
        if let Some(parent) = path.parent() {
            add_dirs(&mut st, parent);
        }
        st.tombstones.remove(path);
        st.files.insert(
            path.to_path_buf(),
            Node {
                cache: bytes.to_vec(),
                durable: bytes.to_vec(),
                name_durable: true,
                renamed_from: None,
                replaced_durable: None,
            },
        );
    }

    /// Remove `path` outright (live and durable), without fault
    /// accounting.
    pub fn delete(&self, path: &Path) {
        let mut st = lock(&self.state);
        st.files.remove(path);
        st.tombstones.remove(path);
    }

    /// The live content of `path`, bypassing fault injection.
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        lock(&self.state).files.get(path).map(|n| n.cache.clone())
    }

    /// Every live file path, sorted (diagnostics and sweeps).
    pub fn live_files(&self) -> Vec<PathBuf> {
        lock(&self.state).files.keys().cloned().collect()
    }

    /// Seeded bit rot: flip 1–3 random bits in each of 1–2 random
    /// non-empty files, in *both* the cache and the durable image.
    /// Intended to run right after [`SimFs::crash_and_restore`], when the
    /// two agree — the decay then looks exactly like a sector that went
    /// bad while the machine was down. Returns the number of bits
    /// flipped (0 when the disk holds no bytes at all). Draws from the
    /// filesystem RNG, so a run's rot pattern replays from its seed; it
    /// is not a mutating *operation* (the medium decaying is not an op),
    /// so it never advances the crash countdown.
    pub fn inject_bit_rot(&self) -> usize {
        let mut st = lock(&self.state);
        let mut rng = lock(&self.rng);
        let candidates: Vec<PathBuf> = st
            .files
            .iter()
            .filter(|(_, n)| !n.durable.is_empty())
            .map(|(p, _)| p.clone())
            .collect();
        if candidates.is_empty() {
            return 0;
        }
        let files = (1 + rng.gen_range(0..2usize)).min(candidates.len());
        let mut flipped = 0;
        for _ in 0..files {
            let path = &candidates[rng.gen_range(0..candidates.len())];
            let node = st.files.get_mut(path).expect("candidate is live");
            for _ in 0..1 + rng.gen_range(0..3usize) {
                let i = rng.gen_range(0..node.durable.len());
                let bit = 1u8 << rng.gen_range(0..8u8);
                node.durable[i] ^= bit;
                if i < node.cache.len() {
                    node.cache[i] ^= bit;
                }
                flipped += 1;
            }
        }
        flipped
    }
}

/// What a file's content looks like after power loss.
fn resolve_content(node: &Node, rng: &mut SmallRng) -> Vec<u8> {
    let (c, d) = (&node.cache, &node.durable);
    if c == d {
        return d.clone();
    }
    if c.len() > d.len() && c[..d.len()] == d[..] {
        // Pure unsynced append: a torn byte prefix of the suffix survives
        // (0 = lost entirely, len = fully survived).
        let keep = rng.gen_range(0..(c.len() - d.len()) as u64 + 1) as usize;
        let mut out = d.clone();
        out.extend_from_slice(&c[d.len()..d.len() + keep]);
        return out;
    }
    // Truncate or rewrite in flight: the old durable image, or a torn
    // prefix of the new one.
    if rng.gen_bool(0.5) {
        d.clone()
    } else {
        let keep = rng.gen_range(0..c.len() as u64 + 1) as usize;
        c[..keep].to_vec()
    }
}

fn add_dirs(st: &mut State, dir: &Path) {
    let mut cur = PathBuf::new();
    for comp in dir.components() {
        cur.push(comp);
        if !st.has_dir(&cur) {
            st.dirs.push(cur.clone());
        }
    }
}

/// A writable handle into the simulated cache.
#[derive(Debug)]
pub struct SimFile {
    fs: SimFs,
    path: PathBuf,
}

impl VfsFile for SimFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        let mut st = lock(&self.fs.state);
        if st.crashed {
            return Err(crash_err());
        }
        if st.count_mutation() {
            // Torn write: a seeded prefix reaches the cache before the
            // lights go out.
            let keep = lock(&self.fs.rng).gen_range(0..data.len() as u64 + 1) as usize;
            if let Some(node) = st.files.get_mut(&self.path) {
                node.cache.extend_from_slice(&data[..keep]);
            }
            return Err(crash_err());
        }
        match st.files.get_mut(&self.path) {
            Some(node) => {
                node.cache.extend_from_slice(data);
                Ok(())
            }
            None => Err(not_found(&self.path)),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut st = lock(&self.fs.state);
        if st.crashed {
            return Err(crash_err());
        }
        if st.count_mutation() {
            return Err(crash_err());
        }
        match st.files.get_mut(&self.path) {
            Some(node) => {
                node.durable = node.cache.clone();
                Ok(())
            }
            None => Err(not_found(&self.path)),
        }
    }
}

impl Vfs for SimFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        // Directory creation is modelled as always durable: losing an
        // empty directory is invisible to recovery (open re-creates it),
        // and modelling it would only add noise to every schedule.
        add_dirs(&mut st, dir);
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        if !st.has_dir(dir) {
            return Err(not_found(dir));
        }
        let mut out: Vec<PathBuf> = st
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect();
        out.extend(st.dirs.iter().filter(|d| d.parent() == Some(dir)).cloned());
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        if st.short_reads > 0 {
            st.short_reads -= 1;
            return Err(io::Error::new(io::ErrorKind::Interrupted, SHORT_READ_MSG));
        }
        st.files
            .get(path)
            .map(|n| n.cache.clone())
            .ok_or_else(|| not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        let st = lock(&self.state);
        !st.crashed && (st.files.contains_key(path) || st.has_dir(path))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        let tripped = st.count_mutation();
        let create_it = !tripped || lock(&self.rng).gen_bool(0.5);
        if create_it {
            let parent = path.parent().unwrap_or(Path::new("")).to_path_buf();
            add_dirs(&mut st, &parent);
            // Truncating an existing file keeps its inode's durable image
            // (the old bytes may resurface after a crash); a fresh file
            // starts with nothing durable, and its *name* becomes durable
            // only on dir sync.
            match st.files.get_mut(path) {
                Some(node) => node.cache.clear(),
                None => {
                    st.files.insert(
                        path.to_path_buf(),
                        Node {
                            cache: Vec::new(),
                            durable: Vec::new(),
                            name_durable: false,
                            renamed_from: None,
                            replaced_durable: None,
                        },
                    );
                }
            }
        }
        if tripped {
            return Err(crash_err());
        }
        Ok(Box::new(SimFile {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        let tripped = st.count_mutation();
        let apply = !tripped || lock(&self.rng).gen_bool(0.5);
        let node = st.files.get_mut(path).ok_or_else(|| not_found(path))?;
        if apply {
            node.cache.truncate(len as usize);
            if !tripped {
                // The contract persists the truncated image (set_len +
                // fdatasync); a crash mid-call leaves it ambiguous.
                node.durable = node.cache.clone();
            }
        }
        if tripped {
            return Err(crash_err());
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        let tripped = st.count_mutation();
        let apply = !tripped || lock(&self.rng).gen_bool(0.5);
        if apply {
            let node = st.files.remove(from).ok_or_else(|| not_found(from))?;
            let renamed_from = if node.name_durable {
                st.tombstones
                    .insert(from.to_path_buf(), node.durable.clone());
                Some(from.to_path_buf())
            } else {
                // Chained rename of a still-unsynced link: the inode trail
                // still ends at the original durable name, if any. If that
                // unsynced link had itself overwritten a durable dirent at
                // `from`, the disk may still hold the overwritten file
                // there — an ordinary (coin-flip) tombstone.
                if let Some(old) = node.replaced_durable.clone() {
                    st.tombstones.insert(from.to_path_buf(), old);
                }
                node.renamed_from.clone()
            };
            // Rename never unlinks its target: the dirent flips atomically
            // from the old inode to ours once the directory is synced.
            // Until then the overwritten durable content rides on the new
            // node, to be restored verbatim if this link is lost.
            let replaced_durable = match st.files.remove(to) {
                Some(old) if old.name_durable => Some(old.durable),
                Some(old) => old.replaced_durable,
                None => None,
            };
            st.files.insert(
                to.to_path_buf(),
                Node {
                    name_durable: false,
                    renamed_from,
                    replaced_durable,
                    ..node
                },
            );
        } else if !st.files.contains_key(from) {
            return Err(not_found(from));
        }
        if tripped {
            return Err(crash_err());
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        let tripped = st.count_mutation();
        let apply = !tripped || lock(&self.rng).gen_bool(0.5);
        if apply {
            let node = st.files.remove(path).ok_or_else(|| not_found(path))?;
            if node.name_durable {
                st.tombstones.insert(path.to_path_buf(), node.durable);
            } else if let Some(old) = node.replaced_durable {
                // Unlinking an unsynced rename target: on disk the dirent
                // may still hold the file the rename overwrote.
                st.tombstones.insert(path.to_path_buf(), old);
            }
        } else if !st.files.contains_key(path) {
            return Err(not_found(path));
        }
        if tripped {
            return Err(crash_err());
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.crashed {
            return Err(crash_err());
        }
        if st.count_mutation() {
            return Err(crash_err());
        }
        if !st.has_dir(dir) {
            return Err(not_found(dir));
        }
        for (path, node) in st.files.iter_mut() {
            if path.parent() == Some(dir) {
                node.name_durable = true;
                node.renamed_from = None;
                node.replaced_durable = None;
            }
        }
        let keep: Vec<PathBuf> = st
            .tombstones
            .keys()
            .filter(|p| p.parent() != Some(dir))
            .cloned()
            .collect();
        st.tombstones.retain(|p, _| keep.contains(p));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_sync(fs: &SimFs, path: &Path, bytes: &[u8]) {
        let mut f = fs.create(path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_data().unwrap();
        fs.sync_dir(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn synced_data_survives_any_crash() {
        let fs = SimFs::new(1);
        fs.create_dir_all(Path::new("/d")).unwrap();
        write_sync(&fs, Path::new("/d/a"), b"durable");
        for _ in 0..8 {
            fs.crash_and_restore();
            assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"durable");
        }
    }

    #[test]
    fn unsynced_suffix_survives_as_prefix_only() {
        // Across many seeds the torn suffix must always be a byte prefix
        // of what was written, and both extremes must be reachable.
        let (mut lost, mut full) = (false, false);
        for seed in 0..64 {
            let fs = SimFs::new(seed);
            fs.create_dir_all(Path::new("/d")).unwrap();
            write_sync(&fs, Path::new("/d/a"), b"base-");
            let mut f = fs.create(Path::new("/d/a")).unwrap();
            // create() truncated the cache; re-sync the base then append
            // without syncing.
            f.write_all(b"base-").unwrap();
            f.sync_data().unwrap();
            f.write_all(b"unsynced").unwrap();
            fs.crash_and_restore();
            let got = fs.read(Path::new("/d/a")).unwrap();
            assert!(b"base-unsynced".starts_with(&got[..]), "got {got:?}");
            assert!(got.len() >= 5, "synced base must survive, got {got:?}");
            lost |= got.len() == 5;
            full |= got.len() == 13;
        }
        assert!(
            lost && full,
            "both extremes reachable: lost={lost} full={full}"
        );
    }

    #[test]
    fn crash_countdown_trips_and_blocks_everything() {
        let fs = SimFs::new(7);
        fs.create_dir_all(Path::new("/d")).unwrap();
        write_sync(&fs, Path::new("/d/a"), b"ok");
        fs.set_crash_after(2);
        let mut f = fs.create(Path::new("/d/b")).unwrap(); // mutation 1
        let err = f.write_all(b"xxxx").unwrap_err(); // mutation 2 -> trip
        assert_eq!(err.to_string(), CRASH_MSG);
        assert!(fs.crashed());
        assert!(fs.read(Path::new("/d/a")).is_err(), "reads fail while down");
        assert!(!fs.exists(Path::new("/d/a")));
        fs.crash_and_restore();
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"ok");
        // The unsynced, unlinked b may or may not exist; if it does, its
        // content is a prefix of the torn write.
        if let Some(b) = fs.peek(Path::new("/d/b")) {
            assert!(b"xxxx".starts_with(&b[..]));
        }
    }

    #[test]
    fn rename_tearing_resolves_to_old_or_new() {
        let (mut olds, mut news) = (0, 0);
        for seed in 0..64 {
            let fs = SimFs::new(seed);
            fs.create_dir_all(Path::new("/d")).unwrap();
            write_sync(&fs, Path::new("/d/a.tmp"), b"payload");
            fs.rename(Path::new("/d/a.tmp"), Path::new("/d/a")).unwrap();
            // No sync_dir: the rename is in the namespace cache only.
            fs.crash_and_restore();
            let new = fs.read(Path::new("/d/a")).is_ok();
            let old = fs.read(Path::new("/d/a.tmp")).is_ok();
            assert!(new || old, "the synced payload exists under some name");
            if new {
                assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"payload");
                news += 1;
            }
            if old {
                assert_eq!(fs.read(Path::new("/d/a.tmp")).unwrap(), b"payload");
                olds += 1;
            }
        }
        assert!(
            olds > 0 && news > 0,
            "tearing reachable: old={olds} new={news}"
        );
    }

    #[test]
    fn rename_over_durable_target_never_loses_the_name() {
        // Rename never unlinks its target: the dirent flips atomically
        // from old inode to new, so after a crash the target name holds
        // the old bytes or the new bytes — it cannot be absent. (The
        // simulator once modeled the overwritten file as an ordinary
        // coin-flip tombstone; the seed-370 schedule then "lost" a
        // checkpoint that a second checkpoint write was replacing, after
        // the first had already truncated the WAL segments it covered.)
        let (mut olds, mut news) = (0, 0);
        for seed in 0..64 {
            let fs = SimFs::new(seed);
            fs.create_dir_all(Path::new("/d")).unwrap();
            write_sync(&fs, Path::new("/d/a"), b"old");
            fs.sync_dir(Path::new("/d")).unwrap();
            write_sync(&fs, Path::new("/d/a.tmp"), b"new");
            fs.rename(Path::new("/d/a.tmp"), Path::new("/d/a")).unwrap();
            // No sync_dir: the link flip is in the namespace cache only.
            fs.crash_and_restore();
            let got = fs.read(Path::new("/d/a")).expect("target name survives");
            match got.as_slice() {
                b"old" => olds += 1,
                b"new" => news += 1,
                other => panic!("target holds neither image: {other:?}"),
            }
        }
        assert!(
            olds > 0 && news > 0,
            "both outcomes reachable: old={olds} new={news}"
        );
    }

    #[test]
    fn synced_rename_is_stable() {
        let fs = SimFs::new(3);
        fs.create_dir_all(Path::new("/d")).unwrap();
        write_sync(&fs, Path::new("/d/a.tmp"), b"payload");
        fs.rename(Path::new("/d/a.tmp"), Path::new("/d/a")).unwrap();
        fs.sync_dir(Path::new("/d")).unwrap();
        for _ in 0..8 {
            fs.crash_and_restore();
            assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"payload");
            assert!(fs.read(Path::new("/d/a.tmp")).is_err());
        }
    }

    #[test]
    fn unsynced_remove_may_resurrect_synced_remove_never() {
        let mut resurrected = 0;
        for seed in 0..64 {
            let fs = SimFs::new(seed);
            fs.create_dir_all(Path::new("/d")).unwrap();
            write_sync(&fs, Path::new("/d/a"), b"ghost");
            fs.remove_file(Path::new("/d/a")).unwrap();
            fs.crash_and_restore();
            if let Ok(got) = fs.read(Path::new("/d/a")) {
                assert_eq!(got, b"ghost");
                resurrected += 1;
            }
        }
        assert!(resurrected > 0, "resurrection reachable");
        let fs = SimFs::new(9);
        fs.create_dir_all(Path::new("/d")).unwrap();
        write_sync(&fs, Path::new("/d/a"), b"ghost");
        fs.remove_file(Path::new("/d/a")).unwrap();
        fs.sync_dir(Path::new("/d")).unwrap();
        fs.crash_and_restore();
        assert!(fs.read(Path::new("/d/a")).is_err());
    }

    #[test]
    fn short_reads_are_transient() {
        let fs = SimFs::new(5);
        fs.create_dir_all(Path::new("/d")).unwrap();
        write_sync(&fs, Path::new("/d/a"), b"abc");
        fs.set_short_reads(2);
        assert_eq!(
            fs.read(Path::new("/d/a")).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert!(fs.read(Path::new("/d/a")).is_err());
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"abc");
    }

    #[test]
    fn fork_is_independent_and_deterministic() {
        let fs = SimFs::new(11);
        fs.create_dir_all(Path::new("/d")).unwrap();
        write_sync(&fs, Path::new("/d/a"), b"shared");
        let fork = fs.fork();
        fork.install(Path::new("/d/a"), b"forked");
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"shared");
        assert_eq!(fork.read(Path::new("/d/a")).unwrap(), b"forked");
        // Identical forks make identical fault decisions.
        let (f1, f2) = (fs.fork(), fs.fork());
        for f in [&f1, &f2] {
            let mut h = f.create(Path::new("/d/t")).unwrap();
            h.write_all(b"0123456789").unwrap();
            f.crash_and_restore();
        }
        assert_eq!(f1.peek(Path::new("/d/t")), f2.peek(Path::new("/d/t")));
    }

    #[test]
    fn same_seed_same_world() {
        let run = || {
            let fs = SimFs::new(42);
            fs.create_dir_all(Path::new("/d")).unwrap();
            for i in 0..5u8 {
                let p = PathBuf::from(format!("/d/f{i}"));
                let mut f = fs.create(&p).unwrap();
                f.write_all(&[i; 16]).unwrap();
                if i % 2 == 0 {
                    f.sync_data().unwrap();
                }
            }
            fs.crash_and_restore();
            fs.live_files()
                .into_iter()
                .map(|p| (p.clone(), fs.peek(&p).unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn listing_and_exists() {
        let fs = SimFs::new(0);
        fs.create_dir_all(Path::new("/root/sub")).unwrap();
        write_sync(&fs, Path::new("/root/f"), b"x");
        let listed = fs.list(Path::new("/root")).unwrap();
        assert!(listed.contains(&PathBuf::from("/root/f")));
        assert!(listed.contains(&PathBuf::from("/root/sub")));
        assert!(fs.exists(Path::new("/root/sub")));
        assert!(!fs.exists(Path::new("/root/ghost")));
        assert!(fs.list(Path::new("/ghost")).is_err());
    }
}
