//! Deterministic simulation layer for the chronicle engine
//! (FoundationDB-style).
//!
//! Crash consistency is only as good as the crashes you test. This crate
//! supplies the three deterministic ingredients the simulation driver (in
//! the root crate, `chronicle::sim`) combines:
//!
//! * [`Vfs`] / [`VfsFile`] — the filesystem abstraction the durability
//!   layer is written against, with [`RealFs`] (straight `std::fs`, the
//!   production path) and [`SimFs`] (in-memory, programmable faults:
//!   torn writes, unsynced-data loss, rename tearing, resurrected
//!   unlinks, fsync reordering across files, transient short reads —
//!   all drawn from a seeded RNG).
//! * [`VirtualClock`] — monotone logical chronons, so no timestamp ever
//!   comes from the wall clock.
//! * [`Schedule`] / [`generate`] — seeded op sequences (SQL text plus
//!   checkpoint / crash / reopen meta-ops) as pure data.
//! * [`SimPipe`] — a byte queue standing in for a TCP connection in
//!   replication runs: deliveries re-chunk at driver-chosen boundaries,
//!   and a cut loses exactly the in-flight bytes.
//!
//! One `u64` seed determines the schedule *and* every fault decision, so
//! any failure replays exactly from the seed printed by the driver.

#![warn(missing_docs)]

mod clock;
mod netsim;
mod schedule;
mod simfs;
mod vfs;

pub use clock::VirtualClock;
pub use netsim::SimPipe;
pub use schedule::{generate, Schedule, ScheduleConfig, SimOp};
pub use simfs::{SimFs, CRASH_MSG, SHORT_READ_MSG};
pub use vfs::{RealFs, Vfs, VfsFile};
