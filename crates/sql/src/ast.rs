//! Abstract syntax of the view-definition language.

use chronicle_algebra::CmpOp;
use chronicle_types::{AttrType, Value};

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// NULL.
    Null,
}

impl Literal {
    /// Convert to a runtime value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Str(s) => Value::str(s),
            Literal::Null => Value::Null,
        }
    }
}

/// A column definition in CREATE CHRONICLE / CREATE RELATION.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: AttrType,
}

/// Retention clause of CREATE CHRONICLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionSpec {
    /// RETAIN NONE (default — the chronicle is not stored).
    None,
    /// RETAIN LAST n.
    Last(usize),
    /// RETAIN ALL.
    All,
}

/// One atom of a WHERE clause: `col θ literal` or `col θ col`.
#[derive(Debug, Clone, PartialEq)]
pub struct WhereAtom {
    /// Left column name.
    pub left: String,
    /// Operator.
    pub op: CmpOp,
    /// Right side: a literal or another column.
    pub right: WhereRhs,
}

/// Right side of a WHERE atom.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereRhs {
    /// A constant.
    Lit(Literal),
    /// Another column.
    Col(String),
}

/// A WHERE clause: either a conjunction (lowered to stacked σ) or a
/// disjunction (Def. 4.1's native form).
#[derive(Debug, Clone, PartialEq)]
pub enum WhereClause {
    /// `a AND b AND …`
    And(Vec<WhereAtom>),
    /// `a OR b OR …`
    Or(Vec<WhereAtom>),
}

/// An aggregate call in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Function name (upper-cased: SUM, COUNT, MIN, MAX, AVG, STDDEV,
    /// FIRST, LAST).
    pub func: String,
    /// Argument column, or `None` for `COUNT(*)`.
    pub arg: Option<String>,
    /// Output name (AS alias; defaults to `func_arg`).
    pub alias: String,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column (must appear in GROUP BY when aggregates are used).
    Column(String),
    /// An aggregate.
    Agg(AggCall),
}

/// The body of CREATE VIEW ... AS SELECT ...
#[derive(Debug, Clone, PartialEq)]
pub struct ViewQuery {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM chronicle.
    pub from: String,
    /// Optional JOIN relation ON chron_col = rel_col [AND ...].
    pub join: Option<JoinSpec>,
    /// Optional WHERE clause (applied to the chronicle before the join,
    /// when its columns permit, otherwise after).
    pub where_clause: Option<WhereClause>,
    /// GROUP BY columns (empty = global group when aggregates are present,
    /// projection summarization when not).
    pub group_by: Vec<String>,
}

/// JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// The relation joined.
    pub relation: String,
    /// Equi-join column pairs (chronicle column, relation column). Empty
    /// for CROSS JOIN.
    pub on: Vec<(String, String)>,
    /// True for CROSS JOIN (full CA product).
    pub cross: bool,
}

/// Calendar clause of CREATE PERIODIC VIEW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarSpec {
    /// Interval width in ticks.
    pub width: i64,
    /// Interval step (defaults to width = consecutive periods).
    pub step: i64,
    /// Anchor chronon (defaults to 0).
    pub anchor: i64,
    /// Optional EXPIRE AFTER grace period.
    pub expire_after: Option<i64>,
}

/// APPEND INTO statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendStmt {
    /// Target chronicle.
    pub chronicle: String,
    /// Optional AT chronon.
    pub at: Option<i64>,
    /// Value rows (each row excludes or includes the SEQ column; the
    /// executor decides by arity).
    pub rows: Vec<Vec<Literal>>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE GROUP name.
    CreateGroup {
        /// Group name.
        name: String,
    },
    /// CREATE CHRONICLE name (cols) [IN GROUP g] [RETAIN ...].
    CreateChronicle {
        /// Chronicle name.
        name: String,
        /// Columns (exactly one of type SEQ).
        columns: Vec<ColumnDef>,
        /// Optional group (default group used when absent).
        group: Option<String>,
        /// Retention policy.
        retention: RetentionSpec,
    },
    /// CREATE RELATION name (cols, PRIMARY KEY (...)).
    CreateRelation {
        /// Relation name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDef>,
        /// Primary-key column names (empty = keyless).
        key: Vec<String>,
    },
    /// CREATE VIEW name AS SELECT ...
    CreateView {
        /// View name.
        name: String,
        /// The query.
        query: ViewQuery,
    },
    /// CREATE PERIODIC VIEW name AS SELECT ... OVER CALENDAR ...
    CreatePeriodicView {
        /// Family name.
        name: String,
        /// The query template.
        query: ViewQuery,
        /// The calendar.
        calendar: CalendarSpec,
    },
    /// APPEND INTO chronicle [AT t] VALUES (...), (...).
    Append(AppendStmt),
    /// INSERT INTO relation VALUES (...).
    InsertRelation {
        /// Target relation.
        relation: String,
        /// Rows.
        rows: Vec<Vec<Literal>>,
    },
    /// UPDATE relation SET col = lit [, ...] WHERE keycol = lit.
    UpdateRelation {
        /// Target relation.
        relation: String,
        /// Assignments.
        sets: Vec<(String, Literal)>,
        /// Key equality filter.
        filter: (String, Literal),
    },
    /// DELETE FROM relation WHERE keycol = lit.
    DeleteRelation {
        /// Target relation.
        relation: String,
        /// Key equality filter.
        filter: (String, Literal),
    },
    /// SELECT * FROM target [WHERE col = lit [AND ...]].
    Select {
        /// View or relation name.
        target: String,
        /// Equality filters.
        filters: Vec<(String, Literal)>,
    },
    /// DROP VIEW name.
    DropView {
        /// View name.
        name: String,
    },
}
