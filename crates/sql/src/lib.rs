//! The declarative view-definition language of the chronicle model.
//!
//! §1 of the paper: *"one feature that must be provided [by] the chronicle
//! model is support for summary queries that are specified declaratively
//! (an SQL like language may be used)"*. This crate supplies that language:
//! a lexer, recursive-descent parser, and a planner that lowers parsed view
//! definitions onto the chronicle algebra — so every view written in SQL is
//! *automatically* validated into CA₁/CA⋈/CA and classified into its IM
//! complexity class before any data flows.
//!
//! Statement inventory (executed by `chronicle-db`):
//!
//! ```sql
//! CREATE GROUP billing;
//! CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP billing RETAIN NONE;
//! CREATE RELATION customers (acct INT, name STRING, state STRING, PRIMARY KEY (acct));
//! CREATE VIEW total_minutes AS
//!   SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller;
//! CREATE VIEW nj_calls AS
//!   SELECT caller, COUNT(*) AS n FROM calls
//!   JOIN customers ON caller = acct
//!   WHERE state = 'NJ' GROUP BY caller;
//! CREATE PERIODIC VIEW monthly AS
//!   SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller
//!   OVER CALENDAR EVERY 2592000 EXPIRE AFTER 5184000;
//! APPEND INTO calls VALUES (555, 12.5);          -- SN auto-assigned
//! APPEND INTO calls AT 1700000000 VALUES (555, 3.0);
//! INSERT INTO customers VALUES (555, 'alice', 'NJ');
//! UPDATE customers SET state = 'NY' WHERE acct = 555;
//! DELETE FROM customers WHERE acct = 555;
//! SELECT * FROM total_minutes WHERE caller = 555;
//! DROP VIEW total_minutes;
//! ```
//!
//! `WHERE` accepts either a pure conjunction (`a = 1 AND b > 2`, lowered to
//! stacked selections — σ_{p∧q} = σ_p(σ_q(C))) or a pure disjunction
//! (`a = 1 OR a = 2`, Def. 4.1's native predicate form). Mixing AND and OR
//! in one clause is rejected with a hint, since the paper's predicate
//! language has no parenthesized nesting.

#![warn(missing_docs)]

mod ast;
mod lexer;
mod parser;
mod planner;

pub use ast::{
    AggCall, AppendStmt, CalendarSpec, ColumnDef, Literal, RetentionSpec, SelectItem, Statement,
    ViewQuery, WhereAtom, WhereClause, WhereRhs,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;
pub use planner::{plan_any_view, plan_view, resolve_literal_row, PlannedView};
