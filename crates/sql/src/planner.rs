//! Lowering parsed view definitions onto the chronicle algebra.
//!
//! The planner is where "declarative" meets the paper's formal machinery:
//! the emitted [`ScaExpr`] is validated (and therefore *in the language*)
//! and statically classified — a `CREATE VIEW` either becomes a
//! maintainable SCA view or fails with the precise Theorem 4.3 /
//! Definition 4.2 reason.
//!
//! Join strategy: `JOIN r ON c = k` becomes the CA⋈ key join when the ON
//! columns cover `r`'s declared primary key (IM-log(R)); otherwise it
//! degrades to the full-CA product-plus-selection (IM-R^k). `CROSS JOIN`
//! always produces the product. The WHERE clause is pushed below the join
//! whenever all its columns resolve against the chronicle alone, which both
//! shrinks deltas and gives the §5.2 router a guard predicate.

use chronicle_algebra::{
    AggFunc, AggSpec, Atom, CaExpr, Operand, Predicate, RelQuery, RelationRef, ScaExpr,
};
use chronicle_store::Catalog;
use chronicle_types::{ChronicleError, Result, Schema, SeqNo, Tuple, Value};

use crate::ast::{AggCall, Literal, SelectItem, ViewQuery, WhereAtom, WhereClause, WhereRhs};

/// Resolve `name` in `schema`, accepting qualified suffixes: `customers.state`
/// matches attribute `state` when no exact `customers.state` exists, and
/// vice versa.
fn resolve_col(schema: &Schema, name: &str) -> Result<usize> {
    if let Ok(p) = schema.position(name) {
        return Ok(p);
    }
    if let Some((_, suffix)) = name.split_once('.') {
        if let Ok(p) = schema.position(suffix) {
            return Ok(p);
        }
    }
    // The joined schema renames collisions to `rel.attr`; accept a bare
    // name that uniquely matches such a suffix.
    let matches: Vec<usize> = schema
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            a.name
                .rsplit_once('.')
                .is_some_and(|(_, suffix)| suffix == name)
        })
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [one] => Ok(*one),
        [] => Err(ChronicleError::UnknownAttribute {
            name: name.into(),
            context: "view definition".into(),
        }),
        _ => Err(ChronicleError::UnknownAttribute {
            name: format!("{name} (ambiguous)"),
            context: "view definition".into(),
        }),
    }
}

fn atom_to_predicate(schema: &Schema, atom: &WhereAtom) -> Result<Predicate> {
    let left = resolve_col(schema, &atom.left)?;
    let right = match &atom.right {
        WhereRhs::Lit(l) => Operand::Const(l.to_value()),
        WhereRhs::Col(c) => Operand::Attr(resolve_col(schema, c)?),
    };
    let pred = Predicate::Or(vec![Atom {
        left,
        op: atom.op,
        right,
    }]);
    pred.validate(schema)?;
    Ok(pred)
}

fn atoms_resolve(schema: &Schema, atoms: &[WhereAtom]) -> bool {
    atoms.iter().all(|a| {
        resolve_col(schema, &a.left).is_ok()
            && match &a.right {
                WhereRhs::Lit(_) => true,
                WhereRhs::Col(c) => resolve_col(schema, c).is_ok(),
            }
    })
}

fn apply_where(expr: CaExpr, clause: &WhereClause) -> Result<CaExpr> {
    match clause {
        WhereClause::And(atoms) => {
            // σ_{p∧q} = σ_p(σ_q(C)): stacked selections.
            let mut e = expr;
            for atom in atoms {
                let p = atom_to_predicate(e.schema(), atom)?;
                e = e.select(p)?;
            }
            Ok(e)
        }
        WhereClause::Or(atoms) => {
            let mut alg_atoms = Vec::with_capacity(atoms.len());
            for atom in atoms {
                let left = resolve_col(expr.schema(), &atom.left)?;
                let right = match &atom.right {
                    WhereRhs::Lit(l) => Operand::Const(l.to_value()),
                    WhereRhs::Col(c) => Operand::Attr(resolve_col(expr.schema(), c)?),
                };
                alg_atoms.push(Atom {
                    left,
                    op: atom.op,
                    right,
                });
            }
            let pred = Predicate::disjunction(alg_atoms)?;
            pred.validate(expr.schema())?;
            expr.select(pred)
        }
    }
}

fn agg_func(schema: &Schema, call: &AggCall) -> Result<AggFunc> {
    let arg = call
        .arg
        .as_deref()
        .map(|a| resolve_col(schema, a))
        .transpose()?;
    Ok(match (call.func.as_str(), arg) {
        ("COUNT", None) => AggFunc::CountStar,
        ("COUNT", Some(a)) => AggFunc::Count(a),
        ("SUM", Some(a)) => AggFunc::Sum(a),
        ("MIN", Some(a)) => AggFunc::Min(a),
        ("MAX", Some(a)) => AggFunc::Max(a),
        ("AVG", Some(a)) => AggFunc::Avg(a),
        ("STDDEV", Some(a)) => AggFunc::StdDev(a),
        ("FIRST", Some(a)) => AggFunc::First(a),
        ("LAST", Some(a)) => AggFunc::Last(a),
        (f, _) => {
            return Err(ChronicleError::BadAggregate {
                detail: format!("unsupported aggregate {f}"),
            })
        }
    })
}

/// Lower a parsed view query to a validated SCA expression.
pub fn plan_view(catalog: &Catalog, query: &ViewQuery) -> Result<ScaExpr> {
    let chron_id = catalog.chronicle_id(&query.from)?;
    let chronicle = catalog.chronicle(chron_id);
    let mut expr = CaExpr::chronicle(chronicle);

    // Push the WHERE below the join when it only references chronicle
    // columns.
    let mut pending_where = query.where_clause.clone();
    if let Some(clause) = &pending_where {
        let atoms = match clause {
            WhereClause::And(a) | WhereClause::Or(a) => a,
        };
        if atoms_resolve(expr.schema(), atoms) {
            expr = apply_where(expr, clause)?;
            pending_where = None;
        }
    }

    if let Some(join) = &query.join {
        let rel_id = catalog.relation_id(&join.relation)?;
        let rel_schema = catalog.relation(rel_id).current().schema().clone();
        let rel_ref = RelationRef::new(rel_id, rel_schema.clone(), join.relation.clone());
        if join.cross {
            expr = expr.product(rel_ref)?;
        } else {
            // Orient each ON pair: one side must resolve in the chronicle,
            // the other in the relation.
            let mut pairs: Vec<(String, String)> = Vec::with_capacity(join.on.len());
            for (l, r) in &join.on {
                let l_in_c = resolve_col(expr.schema(), l).is_ok();
                let r_in_rel = resolve_col(&rel_schema, r).is_ok();
                if l_in_c && r_in_rel {
                    pairs.push((l.clone(), r.clone()));
                } else if resolve_col(expr.schema(), r).is_ok()
                    && resolve_col(&rel_schema, l).is_ok()
                {
                    pairs.push((r.clone(), l.clone()));
                } else {
                    return Err(ChronicleError::UnknownAttribute {
                        name: format!("{l} = {r}"),
                        context: "JOIN ... ON".into(),
                    });
                }
            }
            // CA⋈ when the ON columns cover the relation's key.
            let covers_key = rel_schema.key().is_some_and(|key| {
                key.len() == pairs.len()
                    && key.iter().all(|&k| {
                        pairs
                            .iter()
                            .any(|(_, r)| resolve_col(&rel_schema, r).is_ok_and(|p| p == k))
                    })
            });
            if covers_key {
                // Order chronicle attrs to match the key order, resolving
                // qualified names (`calls.acct`) to the schema's canonical
                // attribute names before handing them to the algebra.
                let key = rel_schema.key().expect("checked").to_vec();
                let mut chron_attrs: Vec<String> = Vec::with_capacity(key.len());
                for &k in &key {
                    let (c, _) = pairs
                        .iter()
                        .find(|(_, r)| resolve_col(&rel_schema, r).is_ok_and(|p| p == k))
                        .expect("covers_key checked");
                    let pos = resolve_col(expr.schema(), c)?;
                    chron_attrs.push(expr.schema().attr(pos).name.to_string());
                }
                let refs: Vec<&str> = chron_attrs.iter().map(String::as_str).collect();
                expr = expr.join_rel_key(rel_ref, &refs)?;
            } else {
                // Degrade to full CA: product + equality selections.
                let chron_arity = expr.schema().arity();
                expr = expr.product(rel_ref)?;
                for (c, r) in &pairs {
                    let left = resolve_col(expr.schema(), c)?;
                    // Resolve the relation column within the joined suffix.
                    let rel_pos = resolve_col(&rel_schema, r)?;
                    let right = chron_arity + rel_pos;
                    let pred = Predicate::Or(vec![Atom {
                        left,
                        op: chronicle_algebra::CmpOp::Eq,
                        right: Operand::Attr(right),
                    }]);
                    pred.validate(expr.schema())?;
                    expr = expr.select(pred)?;
                }
            }
        }
    }

    if let Some(clause) = &pending_where {
        expr = apply_where(expr, clause)?;
    }

    // Summarization.
    let plain: Vec<&String> = query
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Column(c) => Some(c),
            SelectItem::Agg(_) => None,
        })
        .collect();
    let aggs: Vec<&AggCall> = query
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Agg(a) => Some(a),
            SelectItem::Column(_) => None,
        })
        .collect();

    if aggs.is_empty() {
        if !query.group_by.is_empty() {
            return Err(ChronicleError::Parse {
                message: "GROUP BY without aggregates: list the columns in SELECT instead".into(),
                offset: 0,
            });
        }
        let names: Vec<&str> = plain.iter().map(|s| s.as_str()).collect();
        let cols: Vec<usize> = names
            .iter()
            .map(|n| resolve_col(expr.schema(), n))
            .collect::<Result<_>>()?;
        ScaExpr::project_cols(expr, cols)
    } else {
        // Every plain column must be in GROUP BY, and vice versa.
        for c in &plain {
            if !query.group_by.contains(c) {
                return Err(ChronicleError::Parse {
                    message: format!("column `{c}` appears in SELECT but not in GROUP BY"),
                    offset: 0,
                });
            }
        }
        let group_cols: Vec<usize> = query
            .group_by
            .iter()
            .map(|n| resolve_col(expr.schema(), n))
            .collect::<Result<_>>()?;
        let specs: Vec<AggSpec> = aggs
            .iter()
            .map(|call| Ok(AggSpec::new(agg_func(expr.schema(), call)?, &call.alias)))
            .collect::<Result<_>>()?;
        ScaExpr::group_agg_cols(expr, group_cols, specs)
    }
}

/// A planned `CREATE VIEW`: chronicle-backed (SCA, append-only
/// maintenance) or relation-backed (RQ, maintained under inserts, updates
/// and deletes via signed Z-set deltas).
#[derive(Debug, Clone)]
pub enum PlannedView {
    /// `FROM` named a chronicle.
    Chronicle(ScaExpr),
    /// `FROM` named a relation.
    Relation(RelQuery),
}

/// Lower a parsed view query against whichever source `FROM` names: a
/// chronicle plans to SCA exactly as [`plan_view`]; a relation plans onto
/// the retractable [`RelQuery`] fragment (σ/Π/γ, no joins).
pub fn plan_any_view(catalog: &Catalog, query: &ViewQuery) -> Result<PlannedView> {
    if catalog.chronicle_id(&query.from).is_ok() {
        return plan_view(catalog, query).map(PlannedView::Chronicle);
    }
    if catalog.relation_id(&query.from).is_ok() {
        return plan_relation_view(catalog, query).map(PlannedView::Relation);
    }
    // Neither exists: surface the chronicle-resolution error, which names
    // the missing source.
    plan_view(catalog, query).map(PlannedView::Chronicle)
}

/// Lower a view whose `FROM` is a relation onto [`RelQuery`].
fn plan_relation_view(catalog: &Catalog, query: &ViewQuery) -> Result<RelQuery> {
    let rid = catalog.relation_id(&query.from)?;
    let schema = catalog.relation(rid).current().schema().clone();
    if query.join.is_some() {
        return Err(ChronicleError::NotInLanguage {
            language: "RQ",
            reason: "JOIN is only available with a chronicle on the left; a relation view \
                     covers σ/Π/γ over a single relation"
                .into(),
        });
    }
    // A conjunction becomes stacked σ (each predicate linear over Z-sets);
    // a disjunction is one Def. 4.1 predicate.
    let preds: Vec<Predicate> = match &query.where_clause {
        None => Vec::new(),
        Some(WhereClause::And(atoms)) => atoms
            .iter()
            .map(|a| atom_to_predicate(&schema, a))
            .collect::<Result<_>>()?,
        Some(WhereClause::Or(atoms)) => {
            let alg_atoms: Vec<Atom> = atoms
                .iter()
                .map(|atom| {
                    let left = resolve_col(&schema, &atom.left)?;
                    let right = match &atom.right {
                        WhereRhs::Lit(l) => Operand::Const(l.to_value()),
                        WhereRhs::Col(c) => Operand::Attr(resolve_col(&schema, c)?),
                    };
                    Ok(Atom {
                        left,
                        op: atom.op,
                        right,
                    })
                })
                .collect::<Result<_>>()?;
            let pred = Predicate::disjunction(alg_atoms)?;
            pred.validate(&schema)?;
            vec![pred]
        }
    };

    let rel_ref = RelationRef::new(rid, schema.clone(), query.from.clone());
    let plain: Vec<&String> = query
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Column(c) => Some(c),
            SelectItem::Agg(_) => None,
        })
        .collect();
    let aggs: Vec<&AggCall> = query
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Agg(a) => Some(a),
            SelectItem::Column(_) => None,
        })
        .collect();

    if aggs.is_empty() {
        if !query.group_by.is_empty() {
            return Err(ChronicleError::Parse {
                message: "GROUP BY without aggregates: list the columns in SELECT instead".into(),
                offset: 0,
            });
        }
        let cols: Vec<usize> = plain
            .iter()
            .map(|n| resolve_col(&schema, n))
            .collect::<Result<_>>()?;
        RelQuery::project_cols(rel_ref, preds, cols)
    } else {
        for c in &plain {
            if !query.group_by.contains(c) {
                return Err(ChronicleError::Parse {
                    message: format!("column `{c}` appears in SELECT but not in GROUP BY"),
                    offset: 0,
                });
            }
        }
        let group_cols: Vec<usize> = query
            .group_by
            .iter()
            .map(|n| resolve_col(&schema, n))
            .collect::<Result<_>>()?;
        let specs: Vec<AggSpec> = aggs
            .iter()
            .map(|call| Ok(AggSpec::new(agg_func(&schema, call)?, &call.alias)))
            .collect::<Result<_>>()?;
        RelQuery::group_agg_cols(rel_ref, preds, group_cols, specs)
    }
}

/// Convert a literal row into a tuple conforming to `schema`.
///
/// For chronicle schemas the row may omit the sequencing attribute (the
/// usual case — the system assigns it): pass the admitted `seq` and it is
/// spliced in at the SN position. A full-arity row may also spell the SN
/// explicitly as an integer, which is converted to a `Seq` value (and must
/// then match `seq` if provided).
pub fn resolve_literal_row(
    schema: &Schema,
    literals: &[Literal],
    seq: Option<SeqNo>,
) -> Result<Tuple> {
    let arity = schema.arity();
    let values: Vec<Value> = match (schema.seq_attr(), literals.len()) {
        (Some(sp), n) if n == arity - 1 => {
            let seq = seq.ok_or_else(|| {
                ChronicleError::Internal(
                    "sequence number required to complete chronicle row".into(),
                )
            })?;
            let mut v: Vec<Value> = Vec::with_capacity(arity);
            let mut it = literals.iter();
            for i in 0..arity {
                if i == sp {
                    v.push(Value::Seq(seq));
                } else {
                    v.push(it.next().expect("arity checked").to_value());
                }
            }
            v
        }
        (Some(sp), n) if n == arity => literals
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == sp {
                    match l {
                        Literal::Int(x) if *x >= 0 => Ok(Value::Seq(SeqNo(*x as u64))),
                        other => Err(ChronicleError::TypeMismatch {
                            context: "sequencing attribute".into(),
                            left: format!("{other:?}"),
                            right: "non-negative integer".into(),
                        }),
                    }
                } else {
                    Ok(l.to_value())
                }
            })
            .collect::<Result<_>>()?,
        (None, n) if n == arity => literals.iter().map(Literal::to_value).collect(),
        (_, n) => {
            return Err(ChronicleError::ArityMismatch {
                expected: arity,
                found: n,
            })
        }
    };
    let t = Tuple::new(values);
    t.check_against(schema)?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use chronicle_algebra::{ImClass, LanguageFragment};
    use chronicle_store::Retention;
    use chronicle_types::{AttrType, Attribute};

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
                Attribute::new("dest", AttrType::Str),
            ],
            "sn",
        )
        .unwrap();
        cat.create_chronicle("calls", g, cs, Retention::None)
            .unwrap();
        let rs = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("state", AttrType::Str),
                Attribute::new("rate", AttrType::Float),
            ],
            &["acct"],
        )
        .unwrap();
        cat.create_relation("customers", rs).unwrap();
        let keyless = Schema::relation(vec![
            Attribute::new("region", AttrType::Str),
            Attribute::new("surcharge", AttrType::Float),
        ])
        .unwrap();
        cat.create_relation("surcharges", keyless).unwrap();
        cat
    }

    fn plan(cat: &Catalog, sql: &str) -> Result<ScaExpr> {
        match parse(sql)? {
            Statement::CreateView { query, .. } => plan_view(cat, &query),
            other => panic!("expected CREATE VIEW, got {other:?}"),
        }
    }

    #[test]
    fn simple_group_view_is_sca1() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller",
        )
        .unwrap();
        assert_eq!(v.fragment(), LanguageFragment::Ca1);
        assert_eq!(v.im_class(), ImClass::Constant);
        assert_eq!(v.schema().arity(), 2);
        assert_eq!(v.schema().attr(1).name.as_ref(), "mins");
    }

    #[test]
    fn key_join_view_is_sca_join() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls \
             JOIN customers ON caller = acct GROUP BY caller",
        )
        .unwrap();
        assert_eq!(v.fragment(), LanguageFragment::CaKey);
        assert_eq!(v.im_class(), ImClass::LogR);
    }

    #[test]
    fn reversed_on_pair_still_key_join() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls \
             JOIN customers ON acct = caller GROUP BY caller",
        )
        .unwrap();
        assert_eq!(v.fragment(), LanguageFragment::CaKey);
    }

    #[test]
    fn cross_join_is_full_sca() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls \
             CROSS JOIN customers GROUP BY caller",
        )
        .unwrap();
        assert_eq!(v.fragment(), LanguageFragment::Ca);
        assert_eq!(v.im_class(), ImClass::PolyR);
    }

    #[test]
    fn non_key_join_degrades_to_product_select() {
        let cat = setup();
        // `state` is not the key of customers.
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT dest, COUNT(*) AS n FROM calls \
             JOIN customers ON dest = state GROUP BY dest",
        )
        .unwrap();
        assert_eq!(v.fragment(), LanguageFragment::Ca);
    }

    #[test]
    fn keyless_relation_join_degrades() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT dest, COUNT(*) AS n FROM calls \
             JOIN surcharges ON dest = region GROUP BY dest",
        )
        .unwrap();
        assert_eq!(v.fragment(), LanguageFragment::Ca);
    }

    #[test]
    fn where_pushed_below_join_guards_chronicle() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, SUM(minutes) AS m FROM calls \
             JOIN customers ON caller = acct WHERE minutes > 10.0 GROUP BY caller",
        )
        .unwrap();
        // The guard shows up at the base: the router can use it.
        let guards = v.ca().base_guards();
        assert_eq!(guards.len(), 1);
        assert_eq!(guards[0].1.len(), 1, "minutes > 10 pushed to the chronicle");
    }

    #[test]
    fn where_on_relation_column_stays_above_join() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls \
             JOIN customers ON caller = acct WHERE state = 'NJ' GROUP BY caller",
        )
        .unwrap();
        let guards = v.ca().base_guards();
        assert!(
            guards[0].1.is_empty(),
            "relation predicate cannot guard the base"
        );
        assert_eq!(v.fragment(), LanguageFragment::CaKey);
    }

    #[test]
    fn or_where_single_selection() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls \
             WHERE dest = 'NYC' OR dest = 'LA' GROUP BY caller",
        )
        .unwrap();
        let guards = v.ca().base_guards();
        assert_eq!(guards[0].1.len(), 1, "one disjunctive σ");
    }

    #[test]
    fn projection_view_without_aggregates() {
        let cat = setup();
        let v = plan(&cat, "CREATE VIEW v AS SELECT caller, dest FROM calls").unwrap();
        assert!(matches!(
            v.summarize(),
            chronicle_algebra::Summarize::Project { .. }
        ));
        assert_eq!(v.schema().arity(), 2);
    }

    #[test]
    fn selecting_sn_in_summarization_rejected() {
        let cat = setup();
        let err = plan(&cat, "CREATE VIEW v AS SELECT sn, caller FROM calls").unwrap_err();
        assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
    }

    #[test]
    fn global_aggregate_no_group_by() {
        let cat = setup();
        let v = plan(&cat, "CREATE VIEW v AS SELECT COUNT(*) AS n FROM calls").unwrap();
        assert_eq!(v.schema().arity(), 1);
    }

    #[test]
    fn ungrouped_plain_column_rejected() {
        let cat = setup();
        let err = plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls",
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn group_by_without_aggregates_rejected() {
        let cat = setup();
        assert!(plan(
            &cat,
            "CREATE VIEW v AS SELECT caller FROM calls GROUP BY caller"
        )
        .is_err());
    }

    #[test]
    fn unknown_names_rejected() {
        let cat = setup();
        assert!(plan(&cat, "CREATE VIEW v AS SELECT ghost FROM calls").is_err());
        assert!(plan(&cat, "CREATE VIEW v AS SELECT caller FROM ghost").is_err());
        assert!(plan(
            &cat,
            "CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls \
             JOIN ghost ON caller = acct GROUP BY caller"
        )
        .is_err());
    }

    #[test]
    fn qualified_names_resolve() {
        let cat = setup();
        let v = plan(
            &cat,
            "CREATE VIEW v AS SELECT calls.caller, SUM(calls.minutes) AS m \
             FROM calls GROUP BY calls.caller",
        )
        .unwrap();
        assert_eq!(v.schema().arity(), 2);
    }

    fn plan_rel(cat: &Catalog, sql: &str) -> Result<RelQuery> {
        match parse(sql)? {
            Statement::CreateView { query, .. } => match plan_any_view(cat, &query)? {
                PlannedView::Relation(q) => Ok(q),
                PlannedView::Chronicle(_) => panic!("expected a relation view"),
            },
            other => panic!("expected CREATE VIEW, got {other:?}"),
        }
    }

    #[test]
    fn relation_from_plans_to_relquery() {
        let cat = setup();
        let q = plan_rel(
            &cat,
            "CREATE VIEW v AS SELECT state, COUNT(*) AS n, AVG(rate) AS r \
             FROM customers GROUP BY state",
        )
        .unwrap();
        assert_eq!(q.rel_name(), "customers");
        assert_eq!(q.schema().arity(), 3);
        assert_eq!(q.schema().attr(1).name.as_ref(), "n");
    }

    #[test]
    fn relation_projection_with_conjunctive_where() {
        let cat = setup();
        let q = plan_rel(
            &cat,
            "CREATE VIEW v AS SELECT acct FROM customers \
             WHERE rate > 1.0 AND state = 'NJ'",
        )
        .unwrap();
        assert_eq!(q.preds().len(), 2, "stacked σ");
        assert_eq!(q.schema().arity(), 1);
    }

    #[test]
    fn relation_view_rejects_join_and_min_max() {
        let cat = setup();
        match parse(
            "CREATE VIEW v AS SELECT state, COUNT(*) AS n FROM customers \
             JOIN surcharges ON state = region GROUP BY state",
        )
        .unwrap()
        {
            Statement::CreateView { query, .. } => {
                let err = plan_any_view(&cat, &query).unwrap_err();
                assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
            }
            _ => unreachable!(),
        }
        match parse("CREATE VIEW v AS SELECT state, MAX(rate) AS m FROM customers GROUP BY state")
            .unwrap()
        {
            Statement::CreateView { query, .. } => {
                let err = plan_any_view(&cat, &query).unwrap_err();
                assert!(
                    matches!(err, ChronicleError::NotInLanguage { language: "RQ", .. }),
                    "MAX not retractable: {err}"
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn chronicle_from_still_plans_to_sca() {
        let cat = setup();
        match parse("CREATE VIEW v AS SELECT caller, COUNT(*) AS n FROM calls GROUP BY caller")
            .unwrap()
        {
            Statement::CreateView { query, .. } => {
                assert!(matches!(
                    plan_any_view(&cat, &query).unwrap(),
                    PlannedView::Chronicle(_)
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn resolve_literal_row_variants() {
        let cat = setup();
        let schema = cat
            .chronicle(cat.chronicle_id("calls").unwrap())
            .schema()
            .clone();
        // SN omitted: spliced in.
        let t = resolve_literal_row(
            &schema,
            &[
                Literal::Int(555),
                Literal::Float(1.5),
                Literal::Str("NYC".into()),
            ],
            Some(SeqNo(7)),
        )
        .unwrap();
        assert_eq!(t.seq_at(0).unwrap(), SeqNo(7));
        // SN explicit as integer.
        let t = resolve_literal_row(
            &schema,
            &[
                Literal::Int(9),
                Literal::Int(555),
                Literal::Float(1.5),
                Literal::Str("NYC".into()),
            ],
            None,
        )
        .unwrap();
        assert_eq!(t.seq_at(0).unwrap(), SeqNo(9));
        // Wrong arity.
        assert!(resolve_literal_row(&schema, &[Literal::Int(1)], Some(SeqNo(1))).is_err());
        // Negative SN.
        assert!(resolve_literal_row(
            &schema,
            &[
                Literal::Int(-1),
                Literal::Int(555),
                Literal::Float(1.5),
                Literal::Str("NYC".into())
            ],
            None,
        )
        .is_err());
    }
}
