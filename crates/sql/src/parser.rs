//! Recursive-descent parser.

use chronicle_algebra::CmpOp;
use chronicle_types::{AttrType, ChronicleError, Result};

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parse one statement (a trailing semicolon is optional).
pub fn parse(src: &str) -> Result<Statement> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ChronicleError {
        ChronicleError::Parse {
            message: message.into(),
            offset: self.peek().offset,
        }
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek().kind)))
        }
    }

    /// Consume an identifier; keywords are matched case-insensitively via
    /// [`Parser::keyword`] instead.
    fn ident(&mut self, what: &str) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Is the next token the given keyword (case-insensitive)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword or error.
    fn keyword(&mut self, kw: &str) -> Result<()> {
        if self.at_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected keyword {kw}, found {:?}",
                self.peek().kind
            )))
        }
    }

    /// Consume the keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn int_literal(&mut self, what: &str) -> Result<i64> {
        match self.peek().kind {
            TokenKind::Int(i) => {
                self.bump();
                Ok(i)
            }
            _ => Err(self.err(format!("expected integer {what}"))),
        }
    }

    fn literal(&mut self) -> Result<Literal> {
        let lit = match &self.peek().kind {
            TokenKind::Int(i) => Literal::Int(*i),
            TokenKind::Float(f) => Literal::Float(*f),
            TokenKind::Str(s) => Literal::Str(s.clone()),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => Literal::Null,
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Literal::Int(1),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Literal::Int(0),
            other => return Err(self.err(format!("expected literal, found {other:?}"))),
        };
        self.bump();
        Ok(lit)
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.err("expected comparison operator")),
        };
        self.bump();
        Ok(op)
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.at_keyword("CREATE") {
            return self.create();
        }
        if self.at_keyword("APPEND") {
            return self.append();
        }
        if self.at_keyword("INSERT") {
            return self.insert();
        }
        if self.at_keyword("UPDATE") {
            return self.update();
        }
        if self.at_keyword("DELETE") {
            return self.delete();
        }
        if self.at_keyword("SELECT") {
            return self.select_query();
        }
        if self.at_keyword("DROP") {
            self.bump();
            self.keyword("VIEW")?;
            let name = self.ident("view name")?;
            return Ok(Statement::DropView { name });
        }
        Err(self.err("expected CREATE, APPEND, INSERT, UPDATE, DELETE, SELECT or DROP"))
    }

    fn create(&mut self) -> Result<Statement> {
        self.keyword("CREATE")?;
        if self.eat_keyword("GROUP") {
            let name = self.ident("group name")?;
            return Ok(Statement::CreateGroup { name });
        }
        if self.eat_keyword("CHRONICLE") {
            return self.create_chronicle();
        }
        if self.eat_keyword("RELATION") || self.eat_keyword("TABLE") {
            return self.create_relation();
        }
        if self.eat_keyword("PERIODIC") {
            self.keyword("VIEW")?;
            let name = self.ident("view name")?;
            self.keyword("AS")?;
            let query = self.view_query()?;
            self.keyword("OVER")?;
            self.keyword("CALENDAR")?;
            let calendar = self.calendar_spec()?;
            return Ok(Statement::CreatePeriodicView {
                name,
                query,
                calendar,
            });
        }
        if self.eat_keyword("VIEW") {
            let name = self.ident("view name")?;
            self.keyword("AS")?;
            let query = self.view_query()?;
            return Ok(Statement::CreateView { name, query });
        }
        Err(self.err("expected GROUP, CHRONICLE, RELATION, VIEW or PERIODIC VIEW after CREATE"))
    }

    fn column_type(&mut self) -> Result<AttrType> {
        let t = self.ident("column type")?;
        match t.to_ascii_uppercase().as_str() {
            "SEQ" => Ok(AttrType::Seq),
            "INT" | "INTEGER" | "BIGINT" => Ok(AttrType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(AttrType::Float),
            "STRING" | "TEXT" | "VARCHAR" => Ok(AttrType::Str),
            "BOOL" | "BOOLEAN" => Ok(AttrType::Bool),
            other => Err(self.err(format!("unknown column type `{other}`"))),
        }
    }

    fn create_chronicle(&mut self) -> Result<Statement> {
        let name = self.ident("chronicle name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let ty = self.column_type()?;
            columns.push(ColumnDef { name: col, ty });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        let group = if self.eat_keyword("IN") {
            self.keyword("GROUP")?;
            Some(self.ident("group name")?)
        } else {
            None
        };
        let retention = if self.eat_keyword("RETAIN") {
            if self.eat_keyword("ALL") {
                RetentionSpec::All
            } else if self.eat_keyword("NONE") {
                RetentionSpec::None
            } else if self.eat_keyword("LAST") {
                RetentionSpec::Last(self.int_literal("retention count")? as usize)
            } else {
                return Err(self.err("expected ALL, NONE or LAST after RETAIN"));
            }
        } else {
            RetentionSpec::None
        };
        Ok(Statement::CreateChronicle {
            name,
            columns,
            group,
            retention,
        })
    }

    fn create_relation(&mut self) -> Result<Statement> {
        let name = self.ident("relation name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        let mut key = Vec::new();
        loop {
            if self.at_keyword("PRIMARY") {
                self.bump();
                self.keyword("KEY")?;
                self.expect(&TokenKind::LParen, "`(`")?;
                loop {
                    key.push(self.ident("key column")?);
                    if !self.eat_if(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "`)`")?;
            } else {
                let col = self.ident("column name")?;
                let ty = self.column_type()?;
                columns.push(ColumnDef { name: col, ty });
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Statement::CreateRelation { name, columns, key })
    }

    fn view_query(&mut self) -> Result<ViewQuery> {
        self.keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.keyword("FROM")?;
        let from = self.ident("chronicle name")?;
        let join = if self.eat_keyword("JOIN") {
            let relation = self.ident("relation name")?;
            self.keyword("ON")?;
            let mut on = Vec::new();
            loop {
                let l = self.ident("join column")?;
                self.expect(&TokenKind::Eq, "`=` (joins are equi-joins)")?;
                let r = self.ident("join column")?;
                on.push((l, r));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
            Some(JoinSpec {
                relation,
                on,
                cross: false,
            })
        } else if self.eat_keyword("CROSS") {
            self.keyword("JOIN")?;
            let relation = self.ident("relation name")?;
            Some(JoinSpec {
                relation,
                on: Vec::new(),
                cross: true,
            })
        } else {
            None
        };
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.where_clause()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.keyword("BY")?;
            loop {
                group_by.push(self.ident("grouping column")?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(ViewQuery {
            items,
            from,
            join,
            where_clause,
            group_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let name = self.ident("column or aggregate")?;
        let upper = name.to_ascii_uppercase();
        let is_agg = matches!(
            upper.as_str(),
            "SUM" | "COUNT" | "MIN" | "MAX" | "AVG" | "STDDEV" | "FIRST" | "LAST"
        ) && self.peek().kind == TokenKind::LParen;
        if !is_agg {
            return Ok(SelectItem::Column(name));
        }
        self.expect(&TokenKind::LParen, "`(`")?;
        let arg = if self.eat_if(&TokenKind::Star) {
            if upper != "COUNT" {
                return Err(self.err(format!("{upper}(*) is not defined; only COUNT(*)")));
            }
            None
        } else {
            Some(self.ident("aggregate argument")?)
        };
        self.expect(&TokenKind::RParen, "`)`")?;
        let alias = if self.eat_keyword("AS") {
            self.ident("alias")?
        } else {
            match &arg {
                Some(a) => format!("{}_{}", upper.to_ascii_lowercase(), a.replace('.', "_")),
                None => "count".to_string(),
            }
        };
        Ok(SelectItem::Agg(AggCall {
            func: upper,
            arg,
            alias,
        }))
    }

    fn where_atom(&mut self) -> Result<WhereAtom> {
        let left = self.ident("column")?;
        let op = self.cmp_op()?;
        let right = match &self.peek().kind {
            TokenKind::Ident(s)
                if !s.eq_ignore_ascii_case("NULL")
                    && !s.eq_ignore_ascii_case("TRUE")
                    && !s.eq_ignore_ascii_case("FALSE") =>
            {
                let c = s.clone();
                self.bump();
                WhereRhs::Col(c)
            }
            _ => WhereRhs::Lit(self.literal()?),
        };
        Ok(WhereAtom { left, op, right })
    }

    fn where_clause(&mut self) -> Result<WhereClause> {
        let first = self.where_atom()?;
        if self.eat_keyword("AND") {
            let mut atoms = vec![first, self.where_atom()?];
            loop {
                if self.eat_keyword("AND") {
                    atoms.push(self.where_atom()?);
                } else if self.at_keyword("OR") {
                    return Err(self.err(
                        "mixing AND and OR in one WHERE clause is not supported; the chronicle \
                         predicate language (Def. 4.1) is a disjunction of atoms — split the \
                         view or rewrite the condition",
                    ));
                } else {
                    break;
                }
            }
            Ok(WhereClause::And(atoms))
        } else if self.eat_keyword("OR") {
            let mut atoms = vec![first, self.where_atom()?];
            loop {
                if self.eat_keyword("OR") {
                    atoms.push(self.where_atom()?);
                } else if self.at_keyword("AND") {
                    return Err(self.err("mixing AND and OR in one WHERE clause is not supported"));
                } else {
                    break;
                }
            }
            Ok(WhereClause::Or(atoms))
        } else {
            Ok(WhereClause::And(vec![first]))
        }
    }

    fn calendar_spec(&mut self) -> Result<CalendarSpec> {
        // EVERY w [STEP s] [ANCHOR a] [EXPIRE AFTER e]
        // or SLIDING w STEP s [ANCHOR a] [EXPIRE AFTER e]
        let (width, mut step) = if self.eat_keyword("EVERY") {
            let w = self.int_literal("calendar width")?;
            (w, w)
        } else if self.eat_keyword("SLIDING") {
            let w = self.int_literal("window width")?;
            self.keyword("STEP")?;
            let s = self.int_literal("window step")?;
            (w, s)
        } else {
            return Err(self.err("expected EVERY or SLIDING after OVER CALENDAR"));
        };
        if self.eat_keyword("STEP") {
            step = self.int_literal("calendar step")?;
        }
        let anchor = if self.eat_keyword("ANCHOR") {
            self.int_literal("calendar anchor")?
        } else {
            0
        };
        let expire_after = if self.eat_keyword("EXPIRE") {
            self.keyword("AFTER")?;
            Some(self.int_literal("expiry grace")?)
        } else {
            None
        };
        Ok(CalendarSpec {
            width,
            step,
            anchor,
            expire_after,
        })
    }

    fn append(&mut self) -> Result<Statement> {
        self.keyword("APPEND")?;
        self.keyword("INTO")?;
        let chronicle = self.ident("chronicle name")?;
        let at = if self.eat_keyword("AT") {
            Some(self.int_literal("chronon")?)
        } else {
            None
        };
        self.keyword("VALUES")?;
        let rows = self.value_rows()?;
        Ok(Statement::Append(AppendStmt {
            chronicle,
            at,
            rows,
        }))
    }

    fn value_rows(&mut self) -> Result<Vec<Vec<Literal>>> {
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            rows.push(row);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(rows)
    }

    fn insert(&mut self) -> Result<Statement> {
        self.keyword("INSERT")?;
        self.keyword("INTO")?;
        let relation = self.ident("relation name")?;
        self.keyword("VALUES")?;
        let rows = self.value_rows()?;
        Ok(Statement::InsertRelation { relation, rows })
    }

    fn update(&mut self) -> Result<Statement> {
        self.keyword("UPDATE")?;
        let relation = self.ident("relation name")?;
        self.keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident("column")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            sets.push((col, self.literal()?));
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.keyword("WHERE")?;
        let col = self.ident("key column")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let lit = self.literal()?;
        Ok(Statement::UpdateRelation {
            relation,
            sets,
            filter: (col, lit),
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.keyword("DELETE")?;
        self.keyword("FROM")?;
        let relation = self.ident("relation name")?;
        self.keyword("WHERE")?;
        let col = self.ident("key column")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let lit = self.literal()?;
        Ok(Statement::DeleteRelation {
            relation,
            filter: (col, lit),
        })
    }

    fn select_query(&mut self) -> Result<Statement> {
        self.keyword("SELECT")?;
        self.expect(&TokenKind::Star, "`*` (ad-hoc SELECT supports * only)")?;
        self.keyword("FROM")?;
        let target = self.ident("view or relation name")?;
        let mut filters = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                let col = self.ident("column")?;
                self.expect(&TokenKind::Eq, "`=` (point lookups only)")?;
                filters.push((col, self.literal()?));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        Ok(Statement::Select { target, filters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_group() {
        assert_eq!(
            parse("CREATE GROUP billing;").unwrap(),
            Statement::CreateGroup {
                name: "billing".into()
            }
        );
    }

    #[test]
    fn parse_create_chronicle() {
        let s = parse(
            "CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP g RETAIN LAST 100",
        )
        .unwrap();
        match s {
            Statement::CreateChronicle {
                name,
                columns,
                group,
                retention,
            } => {
                assert_eq!(name, "calls");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0].ty, AttrType::Seq);
                assert_eq!(group.as_deref(), Some("g"));
                assert_eq!(retention, RetentionSpec::Last(100));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_create_relation_with_key() {
        let s =
            parse("CREATE RELATION customers (acct INT, name STRING, PRIMARY KEY (acct))").unwrap();
        match s {
            Statement::CreateRelation { columns, key, .. } => {
                assert_eq!(columns.len(), 2);
                assert_eq!(key, vec!["acct"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_view_with_everything() {
        let s = parse(
            "CREATE VIEW v AS SELECT caller, SUM(minutes) AS mins, COUNT(*) AS n \
             FROM calls JOIN customers ON caller = acct \
             WHERE state = 'NJ' AND minutes > 1.5 GROUP BY caller",
        )
        .unwrap();
        match s {
            Statement::CreateView { name, query } => {
                assert_eq!(name, "v");
                assert_eq!(query.items.len(), 3);
                assert!(matches!(query.items[0], SelectItem::Column(_)));
                let join = query.join.unwrap();
                assert_eq!(join.relation, "customers");
                assert_eq!(join.on, vec![("caller".to_string(), "acct".to_string())]);
                match query.where_clause.unwrap() {
                    WhereClause::And(atoms) => assert_eq!(atoms.len(), 2),
                    other => panic!("unexpected {other:?}"),
                }
                assert_eq!(query.group_by, vec!["caller"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_or_where() {
        let s = parse("CREATE VIEW v AS SELECT a FROM c WHERE a = 1 OR a = 2").unwrap();
        match s {
            Statement::CreateView { query, .. } => match query.where_clause.unwrap() {
                WhereClause::Or(atoms) => assert_eq!(atoms.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_and_or_rejected_with_hint() {
        let err =
            parse("CREATE VIEW v AS SELECT a FROM c WHERE a = 1 AND b = 2 OR c = 3").unwrap_err();
        assert!(err.to_string().contains("Def. 4.1"));
        assert!(parse("CREATE VIEW v AS SELECT a FROM c WHERE a = 1 OR b = 2 AND c = 3").is_err());
    }

    #[test]
    fn parse_periodic_view() {
        let s = parse(
            "CREATE PERIODIC VIEW m AS SELECT acct, SUM(amt) AS total FROM txns GROUP BY acct \
             OVER CALENDAR EVERY 30 EXPIRE AFTER 60",
        )
        .unwrap();
        match s {
            Statement::CreatePeriodicView { calendar, .. } => {
                assert_eq!(calendar.width, 30);
                assert_eq!(calendar.step, 30);
                assert_eq!(calendar.expire_after, Some(60));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_sliding_calendar() {
        let s = parse(
            "CREATE PERIODIC VIEW m AS SELECT SUM(amt) AS total FROM txns \
             OVER CALENDAR SLIDING 30 STEP 1 ANCHOR 5",
        )
        .unwrap();
        match s {
            Statement::CreatePeriodicView {
                calendar, query, ..
            } => {
                assert_eq!(calendar.width, 30);
                assert_eq!(calendar.step, 1);
                assert_eq!(calendar.anchor, 5);
                assert!(query.group_by.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_append_variants() {
        let s = parse("APPEND INTO calls VALUES (555, 12.5), (777, 3.0)").unwrap();
        match s {
            Statement::Append(a) => {
                assert_eq!(a.chronicle, "calls");
                assert_eq!(a.at, None);
                assert_eq!(a.rows.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse("APPEND INTO calls AT 99 VALUES (555, 1.0)").unwrap();
        match s {
            Statement::Append(a) => assert_eq!(a.at, Some(99)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_relation_dml() {
        assert!(matches!(
            parse("INSERT INTO customers VALUES (1, 'alice', 'NJ')").unwrap(),
            Statement::InsertRelation { .. }
        ));
        let s = parse("UPDATE customers SET state = 'NY', name = 'al' WHERE acct = 1").unwrap();
        match s {
            Statement::UpdateRelation { sets, filter, .. } => {
                assert_eq!(sets.len(), 2);
                assert_eq!(filter.0, "acct");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse("DELETE FROM customers WHERE acct = 1").unwrap(),
            Statement::DeleteRelation { .. }
        ));
    }

    #[test]
    fn parse_select_and_drop() {
        let s = parse("SELECT * FROM totals WHERE caller = 555 AND plan = 'gold'").unwrap();
        match s {
            Statement::Select { target, filters } => {
                assert_eq!(target, "totals");
                assert_eq!(filters.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse("DROP VIEW totals").unwrap(),
            Statement::DropView { .. }
        ));
    }

    #[test]
    fn count_star_and_default_aliases() {
        let s = parse("CREATE VIEW v AS SELECT COUNT(*), SUM(minutes) FROM calls").unwrap();
        match s {
            Statement::CreateView { query, .. } => {
                match &query.items[0] {
                    SelectItem::Agg(a) => {
                        assert_eq!(a.func, "COUNT");
                        assert!(a.arg.is_none());
                        assert_eq!(a.alias, "count");
                    }
                    other => panic!("unexpected {other:?}"),
                }
                match &query.items[1] {
                    SelectItem::Agg(a) => assert_eq!(a.alias, "sum_minutes"),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sum_star_rejected() {
        assert!(parse("CREATE VIEW v AS SELECT SUM(*) FROM c").is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse("FROB THE KNOB").is_err());
        assert!(parse("CREATE VIEW v AS SELECT a FROM c trailing garbage").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn where_column_vs_column() {
        let s = parse("CREATE VIEW v AS SELECT a FROM c WHERE a > b").unwrap();
        match s {
            Statement::CreateView { query, .. } => match query.where_clause.unwrap() {
                WhereClause::And(atoms) => {
                    assert_eq!(atoms.len(), 1);
                    assert!(matches!(atoms[0].right, WhereRhs::Col(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
