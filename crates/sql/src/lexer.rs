//! Tokenizer for the view-definition language.

use chronicle_types::{ChronicleError, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (case-insensitive keywords; identifiers may
    /// contain dots for qualified names like `customers.state`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// A simple single-pass lexer.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            // `--` line comments.
            if self.bytes[self.pos..].starts_with(b"--") {
                while !matches!(self.peek(), None | Some(b'\n')) {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_ws_and_comments();
        let offset = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let kind = match b {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ne
                } else {
                    return Err(self.error(offset, "expected `!=`"));
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'\'' => {
                self.bump();
                let start = self.pos;
                loop {
                    match self.bump() {
                        Some(b'\'') => break,
                        Some(_) => {}
                        None => return Err(self.error(offset, "unterminated string literal")),
                    }
                }
                TokenKind::Str(self.src[start..self.pos - 1].to_string())
            }
            b'0'..=b'9' | b'-' => {
                // `-` only starts a number (no binary minus in this
                // language's grammar).
                self.bump();
                let start = offset;
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    match c {
                        b'0'..=b'9' => {
                            self.bump();
                        }
                        b'.' if !is_float => {
                            is_float = true;
                            self.bump();
                        }
                        _ => break,
                    }
                }
                let text = &self.src[start..self.pos];
                if text == "-" {
                    return Err(self.error(offset, "dangling `-`"));
                }
                if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| self.error(offset, "malformed float literal"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| self.error(offset, "malformed integer literal"))?,
                    )
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    match c {
                        b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'.' => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
                TokenKind::Ident(self.src[start..self.pos].to_string())
            }
            other => {
                return Err(self.error(offset, &format!("unexpected character `{}`", other as char)))
            }
        };
        Ok(Token { kind, offset })
    }

    fn error(&self, offset: usize, message: &str) -> ChronicleError {
        ChronicleError::Parse {
            message: message.to_string(),
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT * FROM t;"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds("42 -17 2.5 -0.5 'NJ'"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-17),
                TokenKind::Float(2.5),
                TokenKind::Float(-0.5),
                TokenKind::Str("NJ".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn qualified_identifiers() {
        assert_eq!(
            kinds("customers.state"),
            vec![TokenKind::Ident("customers.state".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment here\n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offset() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        match err {
            ChronicleError::Parse { offset, .. } => assert_eq!(offset, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(Lexer::new("'unterminated").tokenize().is_err());
        assert!(Lexer::new("!x").tokenize().is_err());
    }
}
