//! Parser and planner error paths: every malformed input produces a
//! *typed* [`ChronicleError`] — never a panic, never a stringly blob —
//! and parse errors carry a byte offset inside the source text.
//!
//! Engine-level rejection of the same statements (unknown view in a
//! `SELECT` against a live database, arity violations through
//! `ChronicleDb::execute`) is covered in `tests/failure_injection.rs`;
//! this suite pins the contract of the language layer itself.

use chronicle_sql::{parse, plan_view, resolve_literal_row, Literal, Statement};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, ChronicleError, Schema, SeqNo};

// ---- parser: malformed DDL -------------------------------------------------

/// Parse must fail with `Parse { offset }`, the offset landing inside
/// (or at the end of) the source.
fn assert_parse_err(sql: &str) -> ChronicleError {
    let err = parse(sql).unwrap_err();
    match &err {
        ChronicleError::Parse { offset, .. } => {
            assert!(
                *offset <= sql.len(),
                "offset {offset} outside source (len {}) for {sql:?}",
                sql.len()
            );
        }
        other => panic!("expected Parse error for {sql:?}, got {other:?}"),
    }
    err
}

#[test]
fn malformed_ddl_is_a_typed_parse_error() {
    // Missing object name.
    assert_parse_err("CREATE CHRONICLE");
    assert_parse_err("CREATE GROUP");
    assert_parse_err("DROP VIEW");
    // Unterminated / empty column lists.
    assert_parse_err("CREATE CHRONICLE c (sn SEQ,");
    assert_parse_err("CREATE CHRONICLE c ()");
    assert_parse_err("CREATE RELATION r (");
    // Unknown column type.
    assert_parse_err("CREATE CHRONICLE c (sn SEQ, x BLOB)");
    // SELECT with nothing selected, or no FROM.
    assert_parse_err("CREATE VIEW v AS SELECT FROM c");
    assert_parse_err("CREATE VIEW v AS SELECT x, SUM(y) AS s");
    // Dangling WHERE.
    assert_parse_err("CREATE VIEW v AS SELECT x, COUNT(*) AS n FROM c WHERE");
}

#[test]
fn trailing_garbage_rejected() {
    assert_parse_err("DROP VIEW v nonsense");
    assert_parse_err("CREATE GROUP g; CREATE GROUP h");
    assert_parse_err("APPEND INTO c VALUES (1, 2.0) AND MORE");
}

#[test]
fn mixed_and_or_carries_the_paper_hint() {
    // Def. 4.1's predicate language has conjunctions or disjunctions, not
    // arbitrary nesting; the rejection says so instead of a bare "syntax
    // error".
    let err = assert_parse_err(
        "CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM c \
         WHERE k = 1 AND v > 2 OR k = 3 GROUP BY k",
    );
    assert!(err.to_string().contains("Def. 4.1"), "{err}");
}

#[test]
fn malformed_append_and_dml_are_parse_errors() {
    assert_parse_err("APPEND INTO c VALUES"); // no tuple at all
    assert_parse_err("APPEND INTO c VALUES (1,)"); // dangling comma
    assert_parse_err("APPEND INTO c AT VALUES (1)"); // AT without a chronon
    assert_parse_err("INSERT INTO r"); // no VALUES
    assert_parse_err("UPDATE r SET WHERE k = 1"); // no assignments
    assert_parse_err("DELETE FROM r"); // no key filter
    assert_parse_err("DELETE FROM r WHERE"); // dangling WHERE
}

// ---- literal-row resolution: APPEND arity and types ------------------------

fn chronicle_schema() -> Schema {
    Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("k", AttrType::Int),
            Attribute::new("v", AttrType::Float),
        ],
        "sn",
    )
    .unwrap()
}

fn rows_of(sql: &str) -> Vec<Vec<Literal>> {
    match parse(sql).unwrap() {
        Statement::Append(a) => a.rows,
        other => panic!("expected APPEND, got {other:?}"),
    }
}

#[test]
fn append_arity_mismatch_is_typed() {
    let schema = chronicle_schema();
    // One value for a (k, v) payload: neither full arity nor SN-omitted.
    let rows = rows_of("APPEND INTO c VALUES (1)");
    let err = resolve_literal_row(&schema, &rows[0], Some(SeqNo(1))).unwrap_err();
    assert!(
        matches!(
            err,
            ChronicleError::ArityMismatch {
                expected: 3,
                found: 1
            }
        ),
        "{err:?}"
    );
    // Four values overflow the 3-attribute schema.
    let rows = rows_of("APPEND INTO c VALUES (1, 2, 3.0, 4.0)");
    let err = resolve_literal_row(&schema, &rows[0], Some(SeqNo(1))).unwrap_err();
    assert!(
        matches!(err, ChronicleError::ArityMismatch { .. }),
        "{err:?}"
    );
}

#[test]
fn append_type_mismatches_are_typed() {
    let schema = chronicle_schema();
    // A string where the INT attribute lives.
    let rows = rows_of("APPEND INTO c VALUES ('nope', 2.0)");
    let err = resolve_literal_row(&schema, &rows[0], Some(SeqNo(1))).unwrap_err();
    assert!(
        matches!(err, ChronicleError::TypeMismatch { .. }),
        "{err:?}"
    );
    // Full-arity row spelling the SN as a non-integer.
    let rows = rows_of("APPEND INTO c VALUES (1.5, 1, 2.0)");
    let err = resolve_literal_row(&schema, &rows[0], Some(SeqNo(1))).unwrap_err();
    assert!(
        matches!(err, ChronicleError::TypeMismatch { .. }),
        "{err:?}"
    );
}

// ---- planner: unresolved names and bad aggregates --------------------------

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    cat.create_chronicle("calls", g, chronicle_schema(), Retention::None)
        .unwrap();
    let rs = Schema::relation_with_key(
        vec![
            Attribute::new("acct", AttrType::Int),
            Attribute::new("state", AttrType::Str),
        ],
        &["acct"],
    )
    .unwrap();
    cat.create_relation("customers", rs).unwrap();
    cat
}

fn plan(cat: &Catalog, sql: &str) -> Result<(), ChronicleError> {
    match parse(sql)? {
        Statement::CreateView { query, .. } => plan_view(cat, &query).map(|_| ()),
        other => panic!("expected CREATE VIEW, got {other:?}"),
    }
}

#[test]
fn unknown_chronicle_in_from_is_not_found() {
    let cat = catalog();
    let err = plan(
        &cat,
        "CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM ghost GROUP BY k",
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ChronicleError::NotFound {
                kind: "chronicle",
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn unknown_relation_in_join_is_not_found() {
    let cat = catalog();
    let err = plan(
        &cat,
        "CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM calls \
         JOIN ghost ON k = acct GROUP BY k",
    )
    .unwrap_err();
    assert!(matches!(err, ChronicleError::NotFound { .. }), "{err:?}");
}

#[test]
fn unknown_attributes_are_typed() {
    let cat = catalog();
    for sql in [
        // In the SELECT list.
        "CREATE VIEW v AS SELECT ghost, COUNT(*) AS n FROM calls GROUP BY ghost",
        // In the aggregate argument.
        "CREATE VIEW v AS SELECT k, SUM(ghost) AS s FROM calls GROUP BY k",
        // In the WHERE clause.
        "CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM calls WHERE ghost = 1 GROUP BY k",
    ] {
        let err = plan(&cat, sql).unwrap_err();
        assert!(
            matches!(err, ChronicleError::UnknownAttribute { .. }),
            "{sql}: {err:?}"
        );
    }
}

#[test]
fn aggregate_over_wrong_type_is_typed() {
    let cat = catalog();
    // SUM over the join partner's string attribute.
    let err = plan(
        &cat,
        "CREATE VIEW v AS SELECT k, SUM(state) AS s FROM calls \
         JOIN customers ON k = acct GROUP BY k",
    )
    .unwrap_err();
    assert!(
        matches!(err, ChronicleError::BadAggregate { .. }),
        "{err:?}"
    );
}
