//! Read-only replication follower.
//!
//! A [`FollowerDb`] is the receiving end of WAL log shipping: the same
//! per-shard layout as [`ShardedDb`](crate::ShardedDb) (one `SHARDS`
//! manifest, one directory per shard), recovered through the identical
//! checkpoint-plus-WAL-tail path — but with the write-side durability
//! layer *detached*. Mutations arrive only as raw leader WAL bytes fed
//! through [`chronicle_durability::WalIngest`], which persists them into
//! the follower's own WAL directory (so a follower crash recovers through
//! the normal path) and surfaces decoded records that are applied through
//! the same maintenance machinery the leader ran.
//!
//! Consequences of that design:
//!
//! * the follower's durable state is byte-compatible with a leader's — a
//!   follower directory can be opened as a [`ShardedDb`] to *promote* it;
//! * replay order per shard is exactly the leader's WAL order, so every
//!   view converges to a prefix of the leader's history (the invariant the
//!   replication simulation asserts against its acked-prefix oracle);
//! * the follower never logs, never checkpoints, and never truncates in
//!   this version — retention is the leader's problem (it pins a retain
//!   floor while followers are attached).
//!
//! The shipping protocol itself (framing, resume, heartbeats) lives in
//! `crates/net`; this type is transport-agnostic and is driven the same
//! way by the TCP server, the deterministic simulation, and the bench
//! harness.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use chronicle_durability::{
    DurabilityOptions, RecoveryPolicy, ShardManifest, WalIngest, WalRecord,
};
use chronicle_simkit::{RealFs, Vfs};
use chronicle_types::{ChronicleError, Result, Tuple, Value};

use crate::db::ChronicleDb;
use crate::mutate;
use crate::shard::{ShardRoutes, ShardedDb};
use crate::stats::DbStats;

/// A read-only sharded replica fed by leader WAL bytes.
#[derive(Debug)]
pub struct FollowerDb {
    shards: Vec<ChronicleDb>,
    ingests: Vec<WalIngest>,
    routes: ShardRoutes,
    /// Leader's last durable lsn per shard, from heartbeats (0 = unseen).
    leader_durable: Vec<u64>,
    /// How this follower was opened — kept so [`FollowerDb::promote`] can
    /// reopen the same directory as a live [`ShardedDb`].
    vfs: Arc<dyn Vfs>,
    root: PathBuf,
    opts: DurabilityOptions,
}

impl FollowerDb {
    /// Open (or create) a follower database at `path` with `shards`
    /// shards. Existing state recovers exactly like
    /// [`ShardedDb::open_with`]; ingest then resumes after the highest
    /// recovered lsn per shard.
    pub fn open_with(
        path: impl AsRef<Path>,
        shards: usize,
        opts: DurabilityOptions,
    ) -> Result<FollowerDb> {
        Self::open_with_vfs(RealFs::arc(), path, shards, opts)
    }

    /// [`FollowerDb::open_with`] against an explicit filesystem (the
    /// deterministic replication simulation runs followers over
    /// [`SimFs`](chronicle_simkit::SimFs)).
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        shards: usize,
        opts: DurabilityOptions,
    ) -> Result<FollowerDb> {
        if shards == 0 {
            return Err(ChronicleError::Internal(
                "a follower database needs at least one shard".into(),
            ));
        }
        let root = path.as_ref();
        vfs.create_dir_all(root)
            .map_err(|e| ChronicleError::Durability {
                detail: format!("creating database directory {}: {e}", root.display()),
            })?;
        // Same manifest discipline as the leader side: corrupt manifests
        // are quarantined under Salvage, a *valid* manifest that disagrees
        // with the requested shard count is a loud operator error.
        let loaded = match ShardManifest::load_with_vfs(vfs.as_ref(), root) {
            Err(ChronicleError::Corruption { .. }) if opts.recovery == RecoveryPolicy::Salvage => {
                ShardManifest::quarantine_with_vfs(vfs.as_ref(), root, opts.fsync)?;
                None
            }
            other => other?,
        };
        match loaded {
            Some(m) if m.shards as usize != shards => {
                return Err(ChronicleError::Durability {
                    detail: format!(
                        "shard count mismatch: {} is partitioned into {} shards, requested {}",
                        root.display(),
                        m.shards,
                        shards
                    ),
                });
            }
            Some(_) => {}
            None => ShardManifest {
                shards: shards as u32,
            }
            .write_with_vfs(vfs.as_ref(), root, opts.fsync)?,
        }
        let mut dbs = Vec::with_capacity(shards);
        let mut ingests = Vec::with_capacity(shards);
        for i in 0..shards {
            let dir = ShardManifest::shard_dir(root, i);
            let mut db = ChronicleDb::open_with_vfs(Arc::clone(&vfs), &dir, opts).map_err(|e| {
                ChronicleError::Durability {
                    detail: format!("recovering follower shard {i}: {e}"),
                }
            })?;
            // Detach the write-side WAL: from here on the only mutations
            // are shipped records, persisted by the ingest instead.
            let applied = db.detach_durability();
            ingests.push(WalIngest::open(
                Arc::clone(&vfs),
                dir.join("wal"),
                opts.fsync,
                applied,
            )?);
            dbs.push(db);
        }
        let routes = ShardedDb::rebuild_routes(&dbs);
        Ok(FollowerDb {
            shards: dbs,
            ingests,
            routes,
            leader_durable: vec![0; shards],
            vfs,
            root: root.to_path_buf(),
            opts,
        })
    }

    // ---- leadership term (failover fencing, DESIGN.md §17) ----------------

    /// The highest leadership term this follower has replayed (0 until a
    /// `Term` record has shipped).
    pub fn term(&self) -> u64 {
        self.shards.iter().map(|s| s.term()).max().unwrap_or(0)
    }

    /// Fence an incoming leader stream: a leader announcing a term *below*
    /// what this follower has already replayed is a zombie — typically the
    /// deposed leader's shipper still draining after this follower was
    /// promoted elsewhere in a chain, or reconnecting after a partition
    /// healed. Accepting its bytes would fork the history, so the stream
    /// is refused with a typed [`ChronicleError::Fenced`].
    pub fn check_leader_term(&self, leader_term: u64) -> Result<()> {
        let current = self.term();
        if leader_term < current && !mutate("skip_fencing") {
            return Err(ChronicleError::Fenced {
                observed: leader_term,
                current,
            });
        }
        Ok(())
    }

    /// Highest sequence number replayed for `session` on any shard — what
    /// a semi-synchronous leader consults to learn whether a stamped
    /// statement has reached this follower.
    pub fn session_last_seq(&self, session: u64) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.session_last_seq(session))
            .max()
    }

    /// Promote this follower into a live leader: drop the ingest plumbing,
    /// reopen the same directory as a [`ShardedDb`] (the follower's
    /// durable state is byte-compatible with a leader's, so this is the
    /// normal recovery path over already-settled files), and durably adopt
    /// `term + 1` — the fencing point. Every shard logs and flushes the
    /// new `Term` record before this returns, so a deposed leader's
    /// traffic (always carrying the old term) is rejected from the first
    /// request the promoted node serves.
    pub fn promote(self) -> Result<ShardedDb> {
        let FollowerDb {
            shards,
            ingests,
            vfs,
            root,
            opts,
            ..
        } = self;
        let old_term = shards.iter().map(|s| s.term()).max().unwrap_or(0);
        let n = shards.len();
        // Release every file handle before the reopen: the ingests own the
        // follower-side WAL writers for the very segments recovery is
        // about to read.
        drop(ingests);
        drop(shards);
        let mut db = ShardedDb::open_with_vfs(vfs, &root, n, opts)?;
        db.begin_term(old_term + 1)?;
        Ok(db)
    }

    // ---- ingest (driven by the shipping protocol) -------------------------

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard applied lsn — the resume point a (re)connecting follower
    /// sends its leader.
    pub fn applied_lsns(&self) -> Vec<u64> {
        self.ingests.iter().map(|i| i.applied()).collect()
    }

    /// One shard's applied lsn.
    pub fn applied_lsn(&self, shard: usize) -> u64 {
        self.ingests[shard].applied()
    }

    /// The leader announced a segment stream for `shard` (see
    /// [`WalIngest::begin_segment`]).
    pub fn begin_segment(&mut self, shard: usize, first_lsn: u64) -> Result<()> {
        self.ingests[shard].begin_segment(first_lsn)
    }

    /// Ingest raw segment bytes for `shard` at `offset`: persist them,
    /// decode complete frames, and apply every new record through the
    /// normal maintenance path. Returns how many records were applied.
    pub fn ingest(&mut self, shard: usize, offset: u64, bytes: &[u8]) -> Result<usize> {
        let records = self.ingests[shard].ingest(offset, bytes)?;
        let n = records.len();
        let mut ddl = false;
        for (lsn, rec) in records {
            // Group moves (import/evict) relocate objects between shards
            // just like DDL creates them — both invalidate the routes.
            ddl |= matches!(
                rec,
                WalRecord::Ddl(_) | WalRecord::GroupImport { .. } | WalRecord::GroupEvict(_)
            );
            self.shards[shard]
                .apply_wal_record(rec)
                .map_err(|e| ChronicleError::Corruption {
                    detail: format!("shipped record lsn {lsn} does not apply: {e}"),
                })?;
        }
        if ddl {
            // DDL changes the name→shard maps; rebuild them the same way
            // recovery does. Rare enough that eager rebuild beats tracking
            // incremental effects across replicated shards.
            self.routes = ShardedDb::rebuild_routes(&self.shards);
        }
        Ok(n)
    }

    /// The leader sealed the segment (see [`WalIngest::seal_segment`]).
    pub fn seal_segment(&mut self, shard: usize, first_lsn: u64) -> Result<()> {
        self.ingests[shard].seal_segment(first_lsn)
    }

    /// Record a leader heartbeat: its last durable lsn for `shard`.
    pub fn note_leader_durable(&mut self, shard: usize, lsn: u64) {
        let d = &mut self.leader_durable[shard];
        *d = (*d).max(lsn);
    }

    /// Worst-case replication lag in records across shards — leader
    /// durable minus follower applied, using the freshest heartbeat.
    /// `None` until a heartbeat has been seen.
    pub fn replication_lag(&self) -> Option<u64> {
        if self.leader_durable.iter().all(|&d| d == 0) {
            return None;
        }
        Some(
            self.leader_durable
                .iter()
                .zip(&self.ingests)
                .map(|(&d, i)| d.saturating_sub(i.applied()))
                .max()
                .unwrap_or(0),
        )
    }

    // ---- read-only serving ------------------------------------------------

    /// All rows of a persistent view (ordered by group key).
    pub fn query_view(&self, name: &str) -> Result<Vec<Tuple>> {
        let target = self.routes.view_shard(name)?;
        self.shards[target].query_view(name)
    }

    /// Point lookup in a persistent view.
    pub fn query_view_key(&self, name: &str, key: &[Value]) -> Result<Option<Tuple>> {
        let target = self.routes.view_shard(name)?;
        self.shards[target].query_view_key(name, key)
    }

    /// `SELECT`-shaped read: rows of a view, relation, or chronicle
    /// window, with equality filters — the follower side of
    /// `ExecOutcome::Rows`.
    pub fn select(
        &self,
        target: &str,
        filters: &[(String, chronicle_sql::Literal)],
    ) -> Result<Vec<Tuple>> {
        let shard = self.routes.select_shard(target);
        self.shards[shard].select_rows(target, filters)
    }

    /// Read access to one shard (experiments, digests).
    pub fn shard(&self, i: usize) -> &ChronicleDb {
        &self.shards[i]
    }

    /// Snapshot every persistent view across shards, sorted by name —
    /// directly comparable with [`ShardedDb::snapshot_views`] on the
    /// leader at the same applied lsns.
    pub fn snapshot_views(&self) -> Vec<(String, Vec<u8>)> {
        let mut all: Vec<(String, Vec<u8>)> = self
            .shards
            .iter()
            .flat_map(|s| s.snapshot_views())
            .collect();
        all.sort();
        all
    }

    /// Aggregated statistics plus the follower-side replication gauges.
    pub fn stats(&self) -> DbStats {
        let mut total = DbStats::default();
        for s in &self.shards {
            total.absorb(s.stats());
        }
        total.net_shipped_bytes = self.ingests.iter().map(|i| i.bytes_received()).sum();
        total.follower_applied_lsn = self.ingests.iter().map(|i| i.applied()).max();
        total.replication_lag = self.replication_lag();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::ExecOutcome;
    use chronicle_simkit::SimFs;

    fn opts() -> DurabilityOptions {
        DurabilityOptions {
            segment_bytes: 512,
            fsync: true,
            ..DurabilityOptions::default()
        }
    }

    /// Ship everything the leader has flushed into the follower, in
    /// `chunk`-byte pieces, resuming from the follower's applied lsns.
    fn ship_all(leader: &ShardedDb, f: &mut FollowerDb, chunk: usize) {
        for shard in 0..leader.shard_count() {
            let db = leader.shard(shard);
            let mut resume = f.applied_lsn(shard) + 1;
            loop {
                let Some(seg) = db.wal_segment_containing(resume).unwrap() else {
                    break; // caught up past the durable end
                };
                f.begin_segment(shard, seg.first_lsn).unwrap();
                let mut offset = 0;
                loop {
                    let read = db.wal_read_segment(seg.first_lsn, offset, chunk).unwrap();
                    f.ingest(shard, offset, &read.bytes).unwrap();
                    offset += read.bytes.len() as u64;
                    if offset >= read.total_len {
                        break;
                    }
                }
                if !read_sealed(db, seg.first_lsn) {
                    break; // active segment: fully caught up
                }
                f.seal_segment(shard, seg.first_lsn).unwrap();
                resume = db
                    .wal_segment_containing(seg.first_lsn)
                    .unwrap()
                    .unwrap()
                    .last_lsn
                    + 1;
            }
            f.note_leader_durable(shard, db.wal_last_durable_lsn().unwrap());
        }
    }

    fn read_sealed(db: &ChronicleDb, first_lsn: u64) -> bool {
        db.wal_segment_containing(first_lsn)
            .unwrap()
            .map(|s| s.sealed)
            .unwrap_or(false)
    }

    fn seeded_leader(fs: &Arc<dyn Vfs>, shards: usize) -> ShardedDb {
        let mut db = ShardedDb::open_with_vfs(Arc::clone(fs), "/leader", shards, opts()).unwrap();
        db.execute("CREATE GROUP telecom").unwrap();
        db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP telecom")
            .unwrap();
        db.execute(
            "CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller",
        )
        .unwrap();
        for i in 0..40 {
            db.execute(&format!(
                "APPEND INTO calls VALUES ({}, {:.1})",
                i % 5,
                (i % 7) as f64
            ))
            .unwrap();
        }
        db.wal_flush().unwrap();
        db
    }

    #[test]
    fn follower_converges_to_leader_views() {
        for shards in [1usize, 3] {
            let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(77));
            let leader = seeded_leader(&fs, shards);
            let mut f =
                FollowerDb::open_with_vfs(Arc::clone(&fs), "/follower", shards, opts()).unwrap();
            ship_all(&leader, &mut f, 97);
            assert_eq!(
                f.snapshot_views(),
                leader.snapshot_views(),
                "{shards} shards"
            );
            assert_eq!(
                f.query_view("totals").unwrap(),
                leader.query_view("totals").unwrap()
            );
            assert_eq!(f.replication_lag(), Some(0));
            let stats = f.stats();
            assert!(stats.net_shipped_bytes > 0);
            assert_eq!(stats.replication_lag, Some(0));
        }
    }

    #[test]
    fn follower_restart_resumes_from_applied() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(78));
        let mut leader = seeded_leader(&fs, 2);
        let mut f = FollowerDb::open_with_vfs(Arc::clone(&fs), "/f", 2, opts()).unwrap();
        ship_all(&leader, &mut f, 64);
        let before = f.applied_lsns();
        assert!(before.iter().any(|&l| l > 0));
        drop(f);

        // More leader writes while the follower is down.
        for i in 0..10 {
            leader
                .execute(&format!("APPEND INTO calls VALUES ({}, 1.0)", 100 + i))
                .unwrap();
        }
        leader.wal_flush().unwrap();

        // Reopen: local recovery replays the ingested WAL, then shipping
        // resumes from the applied watermark.
        let mut f = FollowerDb::open_with_vfs(Arc::clone(&fs), "/f", 2, opts()).unwrap();
        assert_eq!(f.applied_lsns(), before, "recovery rebuilt the watermark");
        ship_all(&leader, &mut f, 64);
        assert_eq!(f.snapshot_views(), leader.snapshot_views());
    }

    #[test]
    fn follower_select_and_ddl_route_rebuild() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(79));
        let mut leader = seeded_leader(&fs, 3);
        let mut f = FollowerDb::open_with_vfs(Arc::clone(&fs), "/f", 3, opts()).unwrap();
        ship_all(&leader, &mut f, 128);

        // DDL shipped mid-stream must become routable on the follower.
        leader.execute("CREATE GROUP banking").unwrap();
        leader
            .execute("CREATE CHRONICLE txns (sn SEQ, acct INT, amount FLOAT) IN GROUP banking")
            .unwrap();
        leader
            .execute(
                "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM txns GROUP BY acct",
            )
            .unwrap();
        leader.execute("APPEND INTO txns VALUES (7, 12.5)").unwrap();
        leader.wal_flush().unwrap();
        ship_all(&leader, &mut f, 128);

        assert_eq!(
            f.query_view("balances").unwrap(),
            leader.query_view("balances").unwrap()
        );
        let rows = f.select("balances", &[]).unwrap();
        assert_eq!(rows, leader.query_view("balances").unwrap());
        // Equality-filtered select against a view row.
        let filtered = f
            .select(
                "totals",
                &[("caller".to_string(), chronicle_sql::Literal::Int(1))],
            )
            .unwrap();
        assert_eq!(filtered.len(), 1);
    }

    #[test]
    fn follower_applies_shipped_group_moves() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(81));
        let mut leader = seeded_leader(&fs, 3);
        let mut f = FollowerDb::open_with_vfs(Arc::clone(&fs), "/f", 3, opts()).unwrap();
        ship_all(&leader, &mut f, 128);

        // Leader moves the group; the import/evict records ship like any
        // other WAL traffic and must rebuild the follower's routes.
        let home = leader.routes().group_shard("telecom").unwrap();
        let target = (home + 1) % 3;
        leader.move_group("telecom", target).unwrap();
        leader.execute("APPEND INTO calls VALUES (9, 3.0)").unwrap();
        leader.wal_flush().unwrap();
        ship_all(&leader, &mut f, 128);

        assert_eq!(f.snapshot_views(), leader.snapshot_views());
        assert_eq!(
            f.query_view("totals").unwrap(),
            leader.query_view("totals").unwrap()
        );
        // The follower's shard layout mirrors the leader's new placement:
        // exactly the target shard holds the group.
        let owners: Vec<usize> = (0..3)
            .filter(|&i| f.shards[i].has_group("telecom"))
            .collect();
        assert_eq!(owners, vec![target]);
    }

    #[test]
    fn promotion_preserves_state_and_fences_the_old_term() {
        for shards in [1usize, 3] {
            let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(82));
            let leader = seeded_leader(&fs, shards);
            let mut f =
                FollowerDb::open_with_vfs(Arc::clone(&fs), "/follower", shards, opts()).unwrap();
            ship_all(&leader, &mut f, 97);
            let expected = leader.snapshot_views();
            drop(leader); // the old leader dies mid-reign

            assert_eq!(f.term(), 0);
            let mut promoted = f.promote().unwrap();
            // Promotion preserved every view byte-for-byte and durably
            // adopted term 1 on every shard.
            assert_eq!(promoted.snapshot_views(), expected, "{shards} shards");
            assert_eq!(promoted.term(), 1);
            // The promoted node is a live leader: writes flow again.
            promoted
                .execute("APPEND INTO calls VALUES (1, 2.0)")
                .unwrap();
            promoted.wal_flush().unwrap();

            // A follower of the *new* leader learns the term from the
            // shipped record and fences anything older.
            let mut f2 = FollowerDb::open_with_vfs(Arc::clone(&fs), "/f2", shards, opts()).unwrap();
            ship_all(&promoted, &mut f2, 64);
            assert_eq!(f2.term(), 1);
            f2.check_leader_term(1).unwrap();
            f2.check_leader_term(2).unwrap();
            let err = f2.check_leader_term(0).unwrap_err();
            assert!(
                matches!(
                    err,
                    ChronicleError::Fenced {
                        observed: 0,
                        current: 1
                    }
                ),
                "{err}"
            );
            // A second promotion (chained failover) keeps climbing.
            let promoted2 = f2.promote().unwrap();
            assert_eq!(promoted2.term(), 2);
            assert_eq!(promoted2.snapshot_views(), promoted.snapshot_views());
        }
    }

    #[test]
    fn stamped_retries_dedupe_across_shipping_and_promotion() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(83));
        let mut leader = seeded_leader(&fs, 2);
        let session = 0xC11E57;

        // Statement 1 applies, then is retried (lost ack): the cached
        // outcome answers and nothing re-applies.
        let first = leader
            .execute_stamped("APPEND INTO calls VALUES (1, 9.0)", session, 1)
            .unwrap();
        let retried = leader
            .execute_stamped("APPEND INTO calls VALUES (1, 9.0)", session, 1)
            .unwrap();
        let (ExecOutcome::Appended(a), ExecOutcome::Appended(b)) = (&first, &retried) else {
            panic!("appends expected");
        };
        assert_eq!(a.seq, b.seq, "retry answered from cache, not re-applied");
        let snap_after = leader.snapshot_views();
        leader.wal_flush().unwrap();

        // The dedupe decision ships with the WAL: a follower rebuilds the
        // same table and the same state.
        let mut f = FollowerDb::open_with_vfs(Arc::clone(&fs), "/f", 2, opts()).unwrap();
        ship_all(&leader, &mut f, 53);
        assert_eq!(f.snapshot_views(), snap_after);
        drop(leader);

        // After failover, the *same* retry against the promoted leader is
        // still answered from cache — exactly-once across promotion.
        let mut promoted = f.promote().unwrap();
        let after = promoted
            .execute_stamped("APPEND INTO calls VALUES (1, 9.0)", session, 1)
            .unwrap();
        let ExecOutcome::Appended(c) = &after else {
            panic!("append expected");
        };
        assert_eq!(c.seq, a.seq);
        assert_eq!(promoted.snapshot_views(), snap_after);
        // The next seq is fresh work and applies normally.
        promoted
            .execute_stamped("APPEND INTO calls VALUES (1, 1.0)", session, 2)
            .unwrap();
        assert_ne!(promoted.snapshot_views(), snap_after);
    }

    #[test]
    fn shard_count_mismatch_is_loud() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(80));
        drop(FollowerDb::open_with_vfs(Arc::clone(&fs), "/f", 2, opts()).unwrap());
        let err = FollowerDb::open_with_vfs(Arc::clone(&fs), "/f", 3, opts()).unwrap_err();
        assert!(err.to_string().contains("shard count mismatch"), "{err}");
    }
}
