//! Idempotent-session bookkeeping: the dedupe table behind exactly-once
//! statement retries (DESIGN.md §17).
//!
//! Every write statement a retryable client issues is stamped with a
//! `(session, seq)` pair; `seq` is strictly increasing per session and a
//! client keeps at most one statement in flight. The shard that applies
//! the statement records the pair together with a compact
//! [`CachedOutcome`] — enough to answer a retry without re-executing.
//! The table is rebuilt identically by every replayer of the WAL (crash
//! recovery, a follower ingesting shipped bytes, a promoted follower),
//! because the stamp travels *inside* the `Stamped` WAL record: whoever
//! holds the history holds the dedupe state, which is what makes retries
//! safe across failover, not just across reconnect.
//!
//! The table is bounded: past [`MAX_SESSIONS`] live sessions the
//! least-recently-touched session is evicted (deterministically — touch
//! order is WAL apply order, identical on every replayer). An evicted
//! session that later retries is treated as fresh, so the exactly-once
//! guarantee holds for any client population up to the bound; the bound
//! itself exists so a churn of short-lived sessions cannot grow
//! checkpoints without limit.

use std::collections::HashMap;

use chronicle_types::codec::{Reader, Writer};
use chronicle_types::{ChronicleError, Chronon, Result, SeqNo};
use chronicle_views::MaintenanceReport;

use crate::db::{AppendOutcome, ExecOutcome};

/// Upper bound on live sessions tracked per shard. Eviction past the
/// bound is least-recently-touched, in deterministic WAL order.
pub const MAX_SESSIONS: usize = 1024;

/// The compact, replayer-derivable summary of a statement's outcome —
/// what a retried statement is answered with instead of re-executing.
/// Deliberately *not* [`ExecOutcome`]: it must be reconstructible from
/// the WAL records alone (a follower never saw the live outcome), so it
/// carries no maintenance report and no query rows (statements that log
/// nothing are never stamped; their retries re-execute harmlessly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedOutcome {
    /// A catalog object was created (kind, name).
    Created(String, String),
    /// A batch was appended at this sequence number and chronon.
    Appended {
        /// The sequence number the batch received.
        seq: SeqNo,
        /// The chronon the batch was stamped with.
        at: Chronon,
    },
    /// Relation rows were inserted / updated / deleted (count).
    RelationChanged(u64),
    /// A view was dropped.
    Dropped(String),
}

const TAG_CREATED: u8 = 0;
const TAG_APPENDED: u8 = 1;
const TAG_REL_CHANGED: u8 = 2;
const TAG_DROPPED: u8 = 3;

impl CachedOutcome {
    /// Distill a live [`ExecOutcome`] into its cacheable form. `None` for
    /// `Rows`: reads log nothing, are never stamped, and re-execute on
    /// retry.
    pub fn of(out: &ExecOutcome) -> Option<CachedOutcome> {
        match out {
            ExecOutcome::Created(kind, name) => {
                Some(CachedOutcome::Created((*kind).to_string(), name.clone()))
            }
            ExecOutcome::Appended(a) => Some(CachedOutcome::Appended {
                seq: a.seq,
                at: a.at,
            }),
            ExecOutcome::RelationChanged(n) => Some(CachedOutcome::RelationChanged(*n as u64)),
            ExecOutcome::Rows(_) => None,
            ExecOutcome::Dropped(name) => Some(CachedOutcome::Dropped(name.clone())),
        }
    }

    /// Rehydrate into the [`ExecOutcome`] a retried caller receives. The
    /// maintenance report is empty — the work happened on the original
    /// application — and the `kind` string maps back onto the catalog's
    /// static kind set.
    pub fn to_exec(&self) -> ExecOutcome {
        match self {
            CachedOutcome::Created(kind, name) => {
                let kind: &'static str = match kind.as_str() {
                    "group" => "group",
                    "chronicle" => "chronicle",
                    "relation" => "relation",
                    "view" => "view",
                    "periodic view" => "periodic view",
                    _ => "object",
                };
                ExecOutcome::Created(kind, name.clone())
            }
            CachedOutcome::Appended { seq, at } => ExecOutcome::Appended(AppendOutcome {
                seq: *seq,
                at: *at,
                report: MaintenanceReport::default(),
            }),
            CachedOutcome::RelationChanged(n) => ExecOutcome::RelationChanged(*n as usize),
            CachedOutcome::Dropped(name) => ExecOutcome::Dropped(name.clone()),
        }
    }

    fn encode_into(&self, w: &mut Writer) {
        match self {
            CachedOutcome::Created(kind, name) => {
                w.u8(TAG_CREATED);
                w.str(kind);
                w.str(name);
            }
            CachedOutcome::Appended { seq, at } => {
                w.u8(TAG_APPENDED);
                w.seq_no(*seq);
                w.chronon(*at);
            }
            CachedOutcome::RelationChanged(n) => {
                w.u8(TAG_REL_CHANGED);
                w.u64(*n);
            }
            CachedOutcome::Dropped(name) => {
                w.u8(TAG_DROPPED);
                w.str(name);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<CachedOutcome> {
        Ok(match r.u8()? {
            TAG_CREATED => CachedOutcome::Created(r.str()?, r.str()?),
            TAG_APPENDED => CachedOutcome::Appended {
                seq: r.seq_no()?,
                at: r.chronon()?,
            },
            TAG_REL_CHANGED => CachedOutcome::RelationChanged(r.u64()?),
            TAG_DROPPED => CachedOutcome::Dropped(r.str()?),
            t => {
                return Err(ChronicleError::Corruption {
                    detail: format!("unknown cached-outcome tag {t}"),
                })
            }
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SessionEntry {
    last_seq: u64,
    touched: u64,
    outcome: CachedOutcome,
}

/// Per-shard dedupe table: session id → last applied seq + cached
/// outcome. Bounded by [`MAX_SESSIONS`]; persisted opaquely in every
/// checkpoint and rebuilt record-by-record by WAL replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionTable {
    entries: HashMap<u64, SessionEntry>,
    /// Logical touch clock (WAL apply order); drives LRU eviction.
    clock: u64,
}

impl SessionTable {
    /// Classify an incoming `(session, seq)` stamp.
    ///
    /// * `Ok(None)` — fresh work: apply and [`SessionTable::note`] it.
    /// * `Ok(Some(outcome))` — a retry of the last applied statement:
    ///   answer from cache, apply nothing.
    /// * `Err(..)` — the stamp is *behind* the last applied seq. Clients
    ///   keep one statement in flight, so only the newest outcome is
    ///   cached; an older stamp is a protocol violation, refused loudly
    ///   rather than risking a blind re-apply.
    pub fn check(&self, session: u64, seq: u64) -> Result<Option<CachedOutcome>> {
        match self.entries.get(&session) {
            None => Ok(None),
            Some(e) if seq > e.last_seq => Ok(None),
            Some(e) if seq == e.last_seq => Ok(Some(e.outcome.clone())),
            Some(e) => Err(ChronicleError::Internal(format!(
                "session {session} retried seq {seq} behind last applied seq {} \
                 (only the newest statement per session is retryable)",
                e.last_seq
            ))),
        }
    }

    /// Record that `seq` was applied for `session` with `outcome`,
    /// evicting the least-recently-touched session past the bound.
    pub fn note(&mut self, session: u64, seq: u64, outcome: CachedOutcome) {
        self.clock += 1;
        let touched = self.clock;
        self.entries.insert(
            session,
            SessionEntry {
                last_seq: seq,
                touched,
                outcome,
            },
        );
        if self.entries.len() > MAX_SESSIONS {
            // Deterministic LRU: touch order is apply order, identical on
            // every replayer; ties cannot happen (the clock is unique).
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(s, _)| s)
            {
                self.entries.remove(&oldest);
            }
        }
    }

    /// Number of live sessions tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no session has been seen.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The last applied seq for `session`, if tracked.
    pub fn last_seq(&self, session: u64) -> Option<u64> {
        self.entries.get(&session).map(|e| e.last_seq)
    }

    /// Serialize for checkpoint embedding — sorted by session id, so two
    /// replayers with equal tables produce identical bytes.
    pub fn encode(&self) -> Vec<u8> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        let mut ids: Vec<u64> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        let mut w = Writer::new();
        w.u32(ids.len() as u32);
        for id in ids {
            let e = &self.entries[&id];
            w.u64(id);
            w.u64(e.last_seq);
            w.u64(e.touched);
            e.outcome.encode_into(&mut w);
        }
        w.into_bytes()
    }

    /// Inverse of [`SessionTable::encode`]. Empty bytes decode to an
    /// empty table (what pre-session checkpoints carry).
    pub fn decode(bytes: &[u8]) -> Result<SessionTable> {
        if bytes.is_empty() {
            return Ok(SessionTable::default());
        }
        let mut r = Reader::new(bytes);
        let n = r.u32()? as usize;
        // Each entry is at least 3 u64s + 1 tag byte; reject counts the
        // payload cannot possibly hold before allocating.
        if n.saturating_mul(25) > bytes.len() {
            return Err(ChronicleError::Corruption {
                detail: format!("session table claims {n} entries in {} bytes", bytes.len()),
            });
        }
        let mut table = SessionTable::default();
        for _ in 0..n {
            let id = r.u64()?;
            let last_seq = r.u64()?;
            let touched = r.u64()?;
            let outcome = CachedOutcome::decode_from(&mut r)?;
            table.clock = table.clock.max(touched);
            table.entries.insert(
                id,
                SessionEntry {
                    last_seq,
                    touched,
                    outcome,
                },
            );
        }
        if !r.at_end() {
            return Err(ChronicleError::Corruption {
                detail: "trailing bytes after session table".into(),
            });
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(n: u64) -> CachedOutcome {
        CachedOutcome::RelationChanged(n)
    }

    #[test]
    fn fresh_retry_and_stale_stamps() {
        let mut t = SessionTable::default();
        assert_eq!(t.check(7, 1).unwrap(), None);
        t.note(7, 1, outcome(1));
        // Retry of the applied statement answers from cache.
        assert_eq!(t.check(7, 1).unwrap(), Some(outcome(1)));
        // The next statement is fresh.
        assert_eq!(t.check(7, 2).unwrap(), None);
        t.note(7, 2, outcome(2));
        // A stamp behind the newest applied seq is a loud protocol error.
        assert!(t.check(7, 1).is_err());
        // Other sessions are independent.
        assert_eq!(t.check(8, 1).unwrap(), None);
    }

    #[test]
    fn codec_roundtrip_is_identity_and_sorted() {
        let mut t = SessionTable::default();
        t.note(9, 3, CachedOutcome::Created("view".into(), "v".into()));
        t.note(
            2,
            11,
            CachedOutcome::Appended {
                seq: SeqNo(5),
                at: Chronon(40),
            },
        );
        t.note(5, 1, CachedOutcome::Dropped("old".into()));
        let bytes = t.encode();
        let back = SessionTable::decode(&bytes).unwrap();
        assert_eq!(back, t);
        // Equal tables built in different orders encode identically.
        let mut u = SessionTable::default();
        u.note(9, 3, CachedOutcome::Created("view".into(), "v".into()));
        u.note(
            2,
            11,
            CachedOutcome::Appended {
                seq: SeqNo(5),
                at: Chronon(40),
            },
        );
        u.note(5, 1, CachedOutcome::Dropped("old".into()));
        assert_eq!(u.encode(), bytes);
        // Empty table encodes to nothing (checkpoint compatibility).
        assert!(SessionTable::default().encode().is_empty());
        assert!(SessionTable::decode(&[]).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        assert!(SessionTable::decode(&w.into_bytes()).is_err());
        let mut t = SessionTable::default();
        t.note(1, 1, outcome(1));
        let mut bytes = t.encode();
        bytes.push(0);
        assert!(SessionTable::decode(&bytes).is_err());
    }

    #[test]
    fn lru_eviction_is_bounded_and_deterministic() {
        let mut t = SessionTable::default();
        for s in 0..(MAX_SESSIONS as u64 + 3) {
            t.note(s, 1, outcome(s));
        }
        assert_eq!(t.len(), MAX_SESSIONS);
        // The first three sessions noted (least recently touched) went.
        assert_eq!(t.last_seq(0), None);
        assert_eq!(t.last_seq(1), None);
        assert_eq!(t.last_seq(2), None);
        assert_eq!(t.last_seq(3), Some(1));
        // An evicted session that retries is treated as fresh.
        assert_eq!(t.check(0, 1).unwrap(), None);
    }

    #[test]
    fn cached_outcome_rehydrates() {
        let out = ExecOutcome::Created("chronicle", "calls".into());
        let cached = CachedOutcome::of(&out).unwrap();
        match cached.to_exec() {
            ExecOutcome::Created(kind, name) => {
                assert_eq!(kind, "chronicle");
                assert_eq!(name, "calls");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(CachedOutcome::of(&ExecOutcome::Rows(Vec::new())).is_none());
    }
}
