//! A concurrent append pipeline.
//!
//! §1 of the paper motivates the model with *transaction rate*: appends
//! arrive from many concurrent sources (switches, ATMs, ticker feeds), but
//! sequence-number monotonicity makes the maintenance step per chronicle
//! group inherently serial. The natural deployment is therefore a
//! many-producer / one-maintainer pipeline: producers submit batches over a
//! channel; a dedicated thread owns the [`ChronicleDb`], serializes the
//! appends, and runs maintenance. This module implements exactly that with
//! `std::sync::mpsc` bounded channels and is what experiment E11 drives.
//!
//! When the database is durable, the worker runs in *group-commit* mode:
//! it drains a burst of queued appends, applies them all with WAL records
//! buffered, issues one shared flush, and only then acknowledges the
//! producers. An acknowledged append has therefore always reached the log,
//! and concurrent producers share the cost of a single flush (and a single
//! fsync when enabled).

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use chronicle_durability::{SegmentInfo, SegmentRead};
use chronicle_sql::parse;
use chronicle_types::{Chronon, Result, Value};

use crate::db::{AppendOutcome, ChronicleDb, ExecOutcome};
use crate::shard::{RouteTarget, ShardRoutes, ShardedDb};
use crate::stats::DbStats;

/// How a submission behaves when the worker's bounded channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Wait for a slot (the embedded-producer default: backpressure by
    /// blocking).
    Block,
    /// Refuse immediately with [`ChronicleError::Overloaded`] carrying
    /// this retry hint — the wire server's policy, where blocking the
    /// session thread on one slow shard would stall every connection
    /// multiplexed behind it.
    ///
    /// [`ChronicleError::Overloaded`]: chronicle_types::ChronicleError::Overloaded
    Refuse {
        /// Suggested client-side delay before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

/// A request to append `rows` (SN-less) to `chronicle` at `at`.
#[derive(Debug)]
pub struct AppendRequest {
    /// Target chronicle name.
    pub chronicle: String,
    /// Chronon stamp.
    pub at: Chronon,
    /// Rows without the sequencing attribute.
    pub rows: Vec<Vec<Value>>,
    /// Where to send the outcome; `None` for fire-and-forget.
    pub reply: Option<SyncSender<Result<AppendOutcome>>>,
}

/// A WAL-shipping sub-request against one worker's database — the
/// leader-side replication surface, exposed over the pipeline so a
/// network server can ship segments while the workers keep appending.
#[derive(Debug, Clone)]
pub enum WalRequest {
    /// The highest lsn guaranteed durable.
    LastDurableLsn,
    /// The live segment containing an lsn.
    SegmentContaining(u64),
    /// Raw segment bytes (only flushed bytes of the active segment).
    ReadSegment {
        /// First lsn of the segment (its identity).
        first_lsn: u64,
        /// Byte offset to read from.
        offset: u64,
        /// At most this many bytes.
        max: usize,
    },
    /// Pin WAL truncation below `lsn` (followers still need the history).
    SetRetainFloor(u64),
}

/// Answer to a [`WalRequest`], variant-matched to the request kind.
#[derive(Debug, Clone)]
pub enum WalResponse {
    /// Answer to [`WalRequest::LastDurableLsn`].
    Lsn(u64),
    /// Answer to [`WalRequest::SegmentContaining`].
    Segment(Option<SegmentInfo>),
    /// Answer to [`WalRequest::ReadSegment`].
    Bytes(SegmentRead),
    /// Answer to [`WalRequest::SetRetainFloor`].
    Done,
}

/// A request processed by the maintenance thread.
#[derive(Debug)]
enum Request {
    Append(AppendRequest),
    /// Point query against a view, answered in-order with the appends —
    /// the reader sees the state as of every append submitted before it.
    Query {
        view: String,
        key: Vec<Value>,
        reply: SyncSender<Result<Option<chronicle_types::Tuple>>>,
    },
    /// A full SQL statement executed on this worker's database. Like an
    /// append it may log WAL records, so it is acknowledged only after
    /// the burst's shared flush. With `stamp: Some((session, seq))` the
    /// statement runs through the idempotent-session path
    /// ([`ChronicleDb::execute_stamped`]): a retry of the last applied
    /// statement is answered from the dedupe cache instead of re-applying.
    Exec {
        sql: String,
        stamp: Option<(u64, u64)>,
        reply: SyncSender<Result<ExecOutcome>>,
    },
    /// Current leadership term of this worker's database, answered
    /// immediately (the fencing comparison point for wire requests).
    Term {
        reply: SyncSender<u64>,
    },
    /// Stats snapshot of this worker's database, answered immediately.
    Stats {
        reply: SyncSender<DbStats>,
    },
    /// WAL shipping sub-request, answered immediately: reads expose only
    /// flushed bytes, so a mid-burst answer can never leak an
    /// unacknowledged record.
    Wal {
        req: WalRequest,
        reply: SyncSender<Result<WalResponse>>,
    },
    /// Stop the worker after draining everything submitted before this
    /// message. Requests queued after it are answered with an error when
    /// the channel closes.
    Shutdown,
}

/// An acknowledgement owed after the burst's shared flush.
enum Pending {
    Append(
        Result<AppendOutcome>,
        Option<SyncSender<Result<AppendOutcome>>>,
    ),
    Exec(Result<ExecOutcome>, SyncSender<Result<ExecOutcome>>),
}

impl Pending {
    /// Rewrite a success into a durability error (the shared flush failed,
    /// so nothing in this burst actually reached the log).
    fn fail_if_ok(&mut self, e: &chronicle_types::ChronicleError) {
        let detail = format!("group-commit flush failed: {e}");
        match self {
            Pending::Append(o, _) if o.is_ok() => {
                *o = Err(chronicle_types::ChronicleError::Durability { detail });
            }
            Pending::Exec(o, _) if o.is_ok() => {
                *o = Err(chronicle_types::ChronicleError::Durability { detail });
            }
            _ => {}
        }
    }

    fn ack(self) {
        match self {
            // A dropped receiver just means the producer stopped caring;
            // not a pipeline error.
            Pending::Append(outcome, Some(reply)) => {
                let _ = reply.send(outcome);
            }
            Pending::Append(_, None) => {}
            Pending::Exec(outcome, reply) => {
                let _ = reply.send(outcome);
            }
        }
    }
}

/// Handle to a running pipeline. Cloneable; each clone is an independent
/// producer.
#[derive(Clone)]
pub struct PipelineHandle {
    tx: SyncSender<Request>,
}

impl PipelineHandle {
    /// Submit an append and wait for its outcome.
    pub fn append(
        &self,
        chronicle: &str,
        at: Chronon,
        rows: Vec<Vec<Value>>,
    ) -> Result<AppendOutcome> {
        let (rtx, rrx) = sync_channel(1);
        self.tx
            .send(Request::Append(AppendRequest {
                chronicle: chronicle.to_string(),
                at,
                rows,
                reply: Some(rtx),
            }))
            .map_err(|_| {
                chronicle_types::ChronicleError::Internal("pipeline has shut down".into())
            })?;
        rrx.recv().map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline dropped the reply".into())
        })?
    }

    /// Point query against a view, serialized with the appends: the answer
    /// reflects every append submitted on this handle before the query.
    pub fn query(&self, view: &str, key: Vec<Value>) -> Result<Option<chronicle_types::Tuple>> {
        let (rtx, rrx) = sync_channel(1);
        self.tx
            .send(Request::Query {
                view: view.to_string(),
                key,
                reply: rtx,
            })
            .map_err(|_| {
                chronicle_types::ChronicleError::Internal("pipeline has shut down".into())
            })?;
        rrx.recv().map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline dropped the reply".into())
        })?
    }

    /// Submit an append without waiting (maximum throughput mode).
    pub fn append_nowait(&self, chronicle: &str, at: Chronon, rows: Vec<Vec<Value>>) -> Result<()> {
        self.tx
            .send(Request::Append(AppendRequest {
                chronicle: chronicle.to_string(),
                at,
                rows,
                reply: None,
            }))
            .map_err(|_| chronicle_types::ChronicleError::Internal("pipeline has shut down".into()))
    }

    /// Execute one SQL statement on the worker's database, serialized with
    /// the appends and acknowledged after the burst's shared flush.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        self.execute_request(sql, None, Admission::Block)
    }

    /// [`PipelineHandle::execute`] with an idempotent-session stamp and an
    /// explicit admission policy. Under [`Admission::Refuse`] a full
    /// channel yields a typed [`ChronicleError::Overloaded`] immediately
    /// instead of blocking the caller behind the backlog — the server's
    /// bounded-admission path.
    pub fn execute_stamped(
        &self,
        sql: &str,
        session: u64,
        seq: u64,
        admit: Admission,
    ) -> Result<ExecOutcome> {
        self.execute_request(sql, Some((session, seq)), admit)
    }

    fn execute_request(
        &self,
        sql: &str,
        stamp: Option<(u64, u64)>,
        admit: Admission,
    ) -> Result<ExecOutcome> {
        let (rtx, rrx) = sync_channel(1);
        let req = Request::Exec {
            sql: sql.to_string(),
            stamp,
            reply: rtx,
        };
        let shut_down =
            || chronicle_types::ChronicleError::Internal("pipeline has shut down".into());
        match admit {
            Admission::Block => self.tx.send(req).map_err(|_| shut_down())?,
            Admission::Refuse { retry_after_ms } => match self.tx.try_send(req) {
                Ok(()) => {}
                Err(std::sync::mpsc::TrySendError::Full(_)) => {
                    return Err(chronicle_types::ChronicleError::Overloaded { retry_after_ms });
                }
                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => return Err(shut_down()),
            },
        }
        rrx.recv().map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline dropped the reply".into())
        })?
    }

    /// Current leadership term of the worker's database.
    pub fn term(&self) -> Result<u64> {
        let (rtx, rrx) = sync_channel(1);
        self.tx.send(Request::Term { reply: rtx }).map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline has shut down".into())
        })?;
        rrx.recv().map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline dropped the reply".into())
        })
    }

    /// A snapshot of the worker database's statistics.
    pub fn stats(&self) -> Result<DbStats> {
        let (rtx, rrx) = sync_channel(1);
        self.tx.send(Request::Stats { reply: rtx }).map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline has shut down".into())
        })?;
        rrx.recv().map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline dropped the reply".into())
        })
    }

    /// Issue one WAL-shipping sub-request against the worker's database.
    pub fn wal(&self, req: WalRequest) -> Result<WalResponse> {
        let (rtx, rrx) = sync_channel(1);
        self.tx
            .send(Request::Wal { req, reply: rtx })
            .map_err(|_| {
                chronicle_types::ChronicleError::Internal("pipeline has shut down".into())
            })?;
        rrx.recv().map_err(|_| {
            chronicle_types::ChronicleError::Internal("pipeline dropped the reply".into())
        })?
    }
}

/// The running pipeline: owns the maintenance thread.
pub struct Pipeline {
    handle: PipelineHandle,
    worker: Option<JoinHandle<ChronicleDb>>,
    /// Dropping all producer handles shuts the worker down; keep the
    /// original sender here so shutdown is explicit.
    _keepalive: Mutex<Option<SyncSender<Request>>>,
}

impl Pipeline {
    /// Start a pipeline over `db` with the given channel capacity
    /// (backpressure bound). The group-commit window defaults to the
    /// capacity; see [`Pipeline::start_with_window`] to set it separately.
    pub fn start(db: ChronicleDb, capacity: usize) -> Pipeline {
        Pipeline::start_with_window(db, capacity, capacity)
    }

    /// Start a pipeline with an explicit group-commit `window`: at most
    /// that many appends share one WAL flush, so a saturated queue cannot
    /// defer acknowledgement (or, with `fsync` on, durability) beyond the
    /// window, while a deeper channel keeps producers unblocked across a
    /// flush stall.
    pub fn start_with_window(mut db: ChronicleDb, capacity: usize, window: usize) -> Pipeline {
        let (tx, rx): (SyncSender<Request>, Receiver<Request>) = sync_channel(capacity);
        let worker = std::thread::spawn(move || {
            let burst = window.max(1);
            // Buffer WAL records across a burst; durability happens at the
            // shared flush below, before any producer is acknowledged.
            db.set_wal_buffered(true);
            'serve: while let Ok(first) = rx.recv() {
                // Acknowledgements owed after the flush: each request's own
                // outcome plus where to send it.
                let mut pending: Vec<Pending> = Vec::new();
                let mut shutdown = false;
                let mut next = Some(first);
                while let Some(req) = next.take() {
                    match req {
                        Request::Append(req) => {
                            let outcome = db.append(&req.chronicle, req.at, &req.rows);
                            pending.push(Pending::Append(outcome, req.reply));
                            if pending.len() < burst {
                                next = rx.try_recv().ok();
                            }
                        }
                        Request::Exec { sql, stamp, reply } => {
                            let outcome = match stamp {
                                Some((session, seq)) => db.execute_stamped(&sql, session, seq),
                                None => db.execute(&sql),
                            };
                            pending.push(Pending::Exec(outcome, reply));
                            if pending.len() < burst {
                                next = rx.try_recv().ok();
                            }
                        }
                        Request::Term { reply } => {
                            let _ = reply.send(db.term());
                            next = rx.try_recv().ok();
                        }
                        Request::Query { view, key, reply } => {
                            // Queries stay serialized with the appends; they
                            // read applied (not necessarily yet durable)
                            // state, matching the single-threaded API.
                            let _ = reply.send(db.query_view_key(&view, &key));
                            next = rx.try_recv().ok();
                        }
                        Request::Stats { reply } => {
                            let _ = reply.send(db.stats().clone());
                            next = rx.try_recv().ok();
                        }
                        Request::Wal { req, reply } => {
                            let resp = match req {
                                WalRequest::LastDurableLsn => {
                                    db.wal_last_durable_lsn().map(WalResponse::Lsn)
                                }
                                WalRequest::SegmentContaining(lsn) => {
                                    db.wal_segment_containing(lsn).map(WalResponse::Segment)
                                }
                                WalRequest::ReadSegment {
                                    first_lsn,
                                    offset,
                                    max,
                                } => db
                                    .wal_read_segment(first_lsn, offset, max)
                                    .map(WalResponse::Bytes),
                                WalRequest::SetRetainFloor(lsn) => {
                                    db.set_wal_retain_floor(lsn).map(|_| WalResponse::Done)
                                }
                            };
                            let _ = reply.send(resp);
                            next = rx.try_recv().ok();
                        }
                        Request::Shutdown => shutdown = true,
                    }
                }
                // One flush covers the whole burst (no-op for an in-memory
                // database). If it fails, every request that thought it
                // succeeded is NOT durable — report that, not success.
                if let Err(e) = db.wal_flush() {
                    for slot in pending.iter_mut() {
                        slot.fail_if_ok(&e);
                    }
                }
                for p in pending {
                    p.ack();
                }
                if shutdown {
                    break 'serve;
                }
            }
            let _ = db.wal_flush();
            db.set_wal_buffered(false);
            db
        });
        Pipeline {
            handle: PipelineHandle { tx: tx.clone() },
            worker: Some(worker),
            _keepalive: Mutex::new(Some(tx)),
        }
    }

    /// A producer handle.
    pub fn handle(&self) -> PipelineHandle {
        self.handle.clone()
    }

    /// Shut down: drain every request submitted before this call, stop the
    /// worker, and return the database. Outstanding producer handles stay
    /// valid objects but all their sends fail from this point on.
    pub fn shutdown(mut self) -> ChronicleDb {
        // A Shutdown marker drains in FIFO order behind all earlier work;
        // the worker exits when it sees it, dropping the receiver, which
        // fails any later sends instead of blocking them.
        let _ = self.handle.tx.send(Request::Shutdown);
        *self._keepalive.lock().expect("keepalive lock") = None;
        let (dead_tx, _) = sync_channel(0);
        self.handle = PipelineHandle { tx: dead_tx };
        self.worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("maintenance thread panicked")
    }
}

/// Handle to a running [`ShardedPipeline`]: a routing front-end over one
/// [`PipelineHandle`] per shard. Cloneable; each clone is an independent
/// producer. Appends hash-route to the shard owning the target chronicle's
/// group, so two producers appending to different groups never contend on
/// the same channel or maintainer.
#[derive(Clone)]
pub struct ShardedPipelineHandle {
    handles: Vec<PipelineHandle>,
    /// Shared, mutable routing table: SQL DDL submitted through
    /// [`ShardedPipelineHandle::execute`] updates it under the write
    /// lock, while appends and queries take cheap read locks.
    routes: Arc<RwLock<ShardRoutes>>,
}

impl ShardedPipelineHandle {
    /// The shard an append to `chronicle` would go to.
    pub fn shard_of(&self, chronicle: &str) -> Result<usize> {
        self.routes
            .read()
            .expect("routes lock")
            .chronicle_shard(chronicle)
    }

    /// Number of shards behind this handle.
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }

    /// Submit an append to the owning shard and wait for its outcome
    /// (acknowledged only after that shard's group-commit flush).
    pub fn append(
        &self,
        chronicle: &str,
        at: Chronon,
        rows: Vec<Vec<Value>>,
    ) -> Result<AppendOutcome> {
        let s = self.shard_of(chronicle)?;
        self.handles[s].append(chronicle, at, rows)
    }

    /// Submit an append to the owning shard without waiting.
    pub fn append_nowait(&self, chronicle: &str, at: Chronon, rows: Vec<Vec<Value>>) -> Result<()> {
        let s = self.shard_of(chronicle)?;
        self.handles[s].append_nowait(chronicle, at, rows)
    }

    /// Point query against a view, serialized with the owning shard's
    /// appends: the answer reflects every append to that shard submitted
    /// on this handle before the query.
    pub fn query(&self, view: &str, key: Vec<Value>) -> Result<Option<chronicle_types::Tuple>> {
        let s = self.routes.read().expect("routes lock").view_shard(view)?;
        self.handles[s].query(view, key)
    }

    /// Parse and execute one SQL statement through the shard workers —
    /// the full [`ShardedDb::execute`] surface over a *running* pipeline,
    /// routed by the same [`ShardRoutes::plan`] authority.
    ///
    /// Single-shard statements (appends, selects) take only a read lock
    /// and ride the owning shard's group-commit burst. DDL and relation
    /// broadcasts take the write lock: it serializes route updates and —
    /// critically for replica consistency — gives every shard the same
    /// broadcast order, since two unserialized broadcasts could apply in
    /// different orders on different shards and silently diverge the
    /// relation replicas.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        self.execute_routed(sql, None, Admission::Block)
    }

    /// [`ShardedPipelineHandle::execute`] with an idempotent-session stamp
    /// and an admission policy. Routing is a pure function of the SQL and
    /// the catalog, so a byte-identical retry reaches the same shard(s)
    /// and dedupes there (see [`ShardedDb::execute_stamped`]). The
    /// admission policy applies to the single-shard fast path; broadcasts
    /// (DDL, relation DML — rare and already serialized by the write
    /// lock) always block, so a half-admitted broadcast cannot happen.
    pub fn execute_stamped(
        &self,
        sql: &str,
        session: u64,
        seq: u64,
        admit: Admission,
    ) -> Result<ExecOutcome> {
        self.execute_routed(sql, Some((session, seq)), admit)
    }

    fn execute_routed(
        &self,
        sql: &str,
        stamp: Option<(u64, u64)>,
        admit: Admission,
    ) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        let single = {
            let routes = self.routes.read().expect("routes lock");
            match routes.plan(&stmt)? {
                (RouteTarget::One(i), None) => Some(i),
                _ => None,
            }
        };
        let run = |h: &PipelineHandle, admit: Admission| match stamp {
            Some((session, seq)) => h.execute_stamped(sql, session, seq, admit),
            None => h.execute_request(sql, None, admit),
        };
        if let Some(i) = single {
            return run(&self.handles[i], admit);
        }
        let mut routes = self.routes.write().expect("routes lock");
        // Re-plan under the exclusive lock: another DDL may have slipped
        // in between the read probe and here.
        let (target, effect) = routes.plan(&stmt)?;
        let out = match target {
            RouteTarget::One(i) => run(&self.handles[i], admit)?,
            RouteTarget::All => {
                let mut last = None;
                for h in &self.handles {
                    last = Some(run(h, Admission::Block)?);
                }
                last.expect("at least one shard")
            }
        };
        if let Some(e) = effect {
            routes.apply(e);
        }
        Ok(out)
    }

    /// Current leadership term: the max over every shard worker.
    pub fn term(&self) -> Result<u64> {
        let mut t = 0;
        for h in &self.handles {
            t = t.max(h.term()?);
        }
        Ok(t)
    }

    /// Statistics aggregated across every shard worker (see
    /// [`ShardedDb::stats`] for the merge semantics).
    pub fn stats(&self) -> Result<DbStats> {
        let mut total = DbStats::default();
        for h in &self.handles {
            total.absorb(&h.stats()?);
        }
        Ok(total)
    }

    /// Issue one WAL-shipping sub-request against shard `shard`.
    pub fn wal(&self, shard: usize, req: WalRequest) -> Result<WalResponse> {
        self.handles[shard].wal(req)
    }
}

/// A [`Pipeline`] per shard: each shard's maintenance loop, group commit,
/// and WAL stream run on their own worker thread, so one shard's fsync
/// stall overlaps with another's maintenance. Producers route through
/// [`ShardedPipelineHandle`]. DDL is not available here — define the
/// catalog on the [`ShardedDb`] before starting the pipeline.
pub struct ShardedPipeline {
    workers: Vec<Pipeline>,
    routes: Arc<RwLock<ShardRoutes>>,
    manifest_salvaged: bool,
}

impl ShardedPipeline {
    /// Start one worker per shard, each with its own bounded channel of
    /// `capacity` (the per-shard backpressure bound and group-commit burst
    /// ceiling).
    pub fn start(db: ShardedDb, capacity: usize) -> ShardedPipeline {
        ShardedPipeline::start_with_window(db, capacity, capacity)
    }

    /// Like [`ShardedPipeline::start`], but with the per-shard group-commit
    /// window set separately from the channel capacity (see
    /// [`Pipeline::start_with_window`]).
    pub fn start_with_window(db: ShardedDb, capacity: usize, window: usize) -> ShardedPipeline {
        let (shards, routes, manifest_salvaged) = db.into_parts();
        ShardedPipeline {
            workers: shards
                .into_iter()
                .map(|s| Pipeline::start_with_window(s, capacity, window))
                .collect(),
            routes: Arc::new(RwLock::new(routes)),
            manifest_salvaged,
        }
    }

    /// A producer handle (routing front-end over all shards).
    pub fn handle(&self) -> ShardedPipelineHandle {
        ShardedPipelineHandle {
            handles: self.workers.iter().map(Pipeline::handle).collect(),
            routes: Arc::clone(&self.routes),
        }
    }

    /// Shut down every shard worker (each drains its queue first) and
    /// reassemble the database.
    pub fn shutdown(self) -> ShardedDb {
        // Post every worker its shutdown marker up front so all shards
        // drain concurrently; the per-pipeline shutdown below then sends a
        // redundant marker (harmlessly ignored once the worker is gone)
        // and joins.
        for w in &self.workers {
            let _ = w.handle.tx.send(Request::Shutdown);
        }
        let routes = self.routes.read().expect("routes lock").clone();
        let shards = self.workers.into_iter().map(Pipeline::shutdown).collect();
        ShardedDb::from_parts(shards, routes, self.manifest_salvaged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::SeqNo;

    fn db() -> ChronicleDb {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE txns (sn SEQ, acct INT, amount FLOAT)")
            .unwrap();
        db.execute(
            "CREATE VIEW balances AS SELECT acct, SUM(amount) AS balance FROM txns GROUP BY acct",
        )
        .unwrap();
        db
    }

    #[test]
    fn single_producer_round_trip() {
        let p = Pipeline::start(db(), 16);
        let h = p.handle();
        let out = h
            .append(
                "txns",
                Chronon(1),
                vec![vec![Value::Int(7), Value::Float(5.0)]],
            )
            .unwrap();
        assert_eq!(out.seq, SeqNo(1));
        let db = p.shutdown();
        assert_eq!(
            db.query_view_key("balances", &[Value::Int(7)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(5.0)
        );
    }

    #[test]
    fn concurrent_producers_serialize_correctly() {
        let p = Pipeline::start(db(), 64);
        let mut joins = Vec::new();
        for t in 0..4i64 {
            let h = p.handle();
            joins.push(std::thread::spawn(move || {
                for i in 0..50i64 {
                    h.append(
                        "txns",
                        // Chronons may repeat across threads; monotonicity
                        // within the group is what matters, and equal
                        // chronons are legal.
                        Chronon(0),
                        vec![vec![Value::Int(t), Value::Float(i as f64)]],
                    )
                    .unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let db = p.shutdown();
        // Each producer's account got sum 0+1+…+49 = 1225.
        for t in 0..4i64 {
            assert_eq!(
                db.query_view_key("balances", &[Value::Int(t)])
                    .unwrap()
                    .unwrap()
                    .get(1),
                &Value::Float(1225.0)
            );
        }
        assert_eq!(db.stats().appends, 200);
    }

    #[test]
    fn nowait_appends_drain_on_shutdown() {
        let p = Pipeline::start(db(), 256);
        let h = p.handle();
        for i in 0..100i64 {
            h.append_nowait(
                "txns",
                Chronon(0),
                vec![vec![Value::Int(1), Value::Float(i as f64)]],
            )
            .unwrap();
        }
        let db = p.shutdown();
        assert_eq!(db.stats().appends, 100);
    }

    fn sharded_db(shards: usize) -> ShardedDb {
        let mut db = ShardedDb::new(shards).unwrap();
        for g in 0..4 {
            db.execute(&format!("CREATE GROUP g{g}")).unwrap();
            db.execute(&format!(
                "CREATE CHRONICLE c{g} (sn SEQ, acct INT, amount FLOAT) IN GROUP g{g}"
            ))
            .unwrap();
            db.execute(&format!(
                "CREATE VIEW v{g} AS SELECT acct, SUM(amount) AS balance FROM c{g} GROUP BY acct"
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn sharded_pipeline_routes_appends_and_queries() {
        let p = ShardedPipeline::start(sharded_db(3), 16);
        let h = p.handle();
        for g in 0..4 {
            let out = h
                .append(
                    &format!("c{g}"),
                    Chronon(1),
                    vec![vec![Value::Int(7), Value::Float(g as f64)]],
                )
                .unwrap();
            // Every group runs its own SN sequence.
            assert_eq!(out.seq, SeqNo(1));
        }
        assert_eq!(
            h.query("v2", vec![Value::Int(7)]).unwrap().unwrap().get(1),
            &Value::Float(2.0)
        );
        let db = p.shutdown();
        assert_eq!(db.stats().appends, 4);
    }

    #[test]
    fn sharded_concurrent_producers_per_group() {
        let p = ShardedPipeline::start(sharded_db(4), 32);
        let mut joins = Vec::new();
        for g in 0..4i64 {
            let h = p.handle();
            joins.push(std::thread::spawn(move || {
                let chron = format!("c{g}");
                for i in 0..50i64 {
                    h.append(
                        &chron,
                        Chronon(i),
                        vec![vec![Value::Int(g), Value::Float(i as f64)]],
                    )
                    .unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let db = p.shutdown();
        for g in 0..4i64 {
            assert_eq!(
                db.query_view_key(&format!("v{g}"), &[Value::Int(g)])
                    .unwrap()
                    .unwrap()
                    .get(1),
                &Value::Float(1225.0)
            );
        }
        assert_eq!(db.stats().appends, 200);
    }

    #[test]
    fn sharded_unknown_chronicle_is_routing_error() {
        let p = ShardedPipeline::start(sharded_db(2), 8);
        let h = p.handle();
        assert!(h.append("ghost", Chronon(0), vec![]).is_err());
        assert!(h.append_nowait("ghost", Chronon(0), vec![]).is_err());
        assert!(h.query("ghost_view", vec![]).is_err());
        let db = p.shutdown();
        assert_eq!(db.stats().appends, 0);
    }

    #[test]
    fn refused_admission_is_typed_overloaded() {
        // A handle over a full channel that nothing drains: Block would
        // wait forever, Refuse must return the typed error immediately.
        let (tx, rx) = sync_channel(1);
        let h = PipelineHandle { tx };
        h.tx.send(Request::Shutdown).unwrap(); // fill the only slot
        let err = h
            .execute_stamped(
                "APPEND INTO txns VALUES (1, 1.0)",
                7,
                1,
                Admission::Refuse { retry_after_ms: 25 },
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                chronicle_types::ChronicleError::Overloaded { retry_after_ms: 25 }
            ),
            "{err}"
        );
        drop(rx);
        // With the receiver gone, Refuse reports shutdown, not overload.
        let err = h
            .execute_stamped(
                "APPEND INTO txns VALUES (1, 1.0)",
                7,
                2,
                Admission::Refuse { retry_after_ms: 25 },
            )
            .unwrap_err();
        assert!(
            matches!(err, chronicle_types::ChronicleError::Internal(_)),
            "{err}"
        );
    }

    #[test]
    fn stamped_execs_dedupe_through_the_pipeline() {
        let p = ShardedPipeline::start(sharded_db(2), 16);
        let h = p.handle();
        let out = h
            .execute_stamped("APPEND INTO c1 VALUES (7, 5.0)", 42, 1, Admission::Block)
            .unwrap();
        let ExecOutcome::Appended(a) = out else {
            panic!("append expected");
        };
        // A retry with the same stamp answers from cache...
        let retry = h
            .execute_stamped("APPEND INTO c1 VALUES (7, 5.0)", 42, 1, Admission::Block)
            .unwrap();
        let ExecOutcome::Appended(b) = retry else {
            panic!("append expected");
        };
        assert_eq!(a.seq, b.seq);
        // ...and the next seq applies fresh work.
        h.execute_stamped("APPEND INTO c1 VALUES (7, 3.0)", 42, 2, Admission::Block)
            .unwrap();
        assert_eq!(h.term().unwrap(), 0);
        let db = p.shutdown();
        assert_eq!(db.stats().appends, 2, "the retry must not re-apply");
        assert_eq!(db.stats().session_replays, 1);
        assert_eq!(
            db.query_view_key("v1", &[Value::Int(7)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(8.0)
        );
    }

    #[test]
    fn bad_append_reports_error_not_poison() {
        let p = Pipeline::start(db(), 16);
        let h = p.handle();
        let err = h.append("ghost", Chronon(0), vec![vec![Value::Int(1)]]);
        assert!(err.is_err());
        // Pipeline still alive.
        h.append(
            "txns",
            Chronon(1),
            vec![vec![Value::Int(1), Value::Float(1.0)]],
        )
        .unwrap();
        let db = p.shutdown();
        assert_eq!(db.stats().appends, 1);
    }
}
