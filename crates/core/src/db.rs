//! The `ChronicleDb` facade.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use chronicle_algebra::{RelQuery, ScaExpr, ZSet};
use chronicle_durability::{
    checkpoint, scrub_database, CheckpointImage, ChronicleImage, DurabilityOptions, GroupImage,
    LsnRange, RelationImage, SalvageReport, ScrubReport, SegmentInfo, SegmentRead, Wal, WalRecord,
};
use chronicle_simkit::{RealFs, Vfs};
use chronicle_sql::{
    parse, plan_any_view, plan_view, resolve_literal_row, CalendarSpec, PlannedView, RetentionSpec,
    Statement,
};
use chronicle_store::{Catalog, RelationChange, Retention};
use chronicle_types::{
    ChronicleError, ChronicleId, Chronon, GroupId, RelationId, Result, Schema, SeqNo, Tuple, Value,
    ViewId,
};
use chronicle_views::{
    AppendEvent, BatchMode, Calendar, Maintainer, MaintenanceReport, PeriodicViewSet, RouteMode,
};

use crate::stats::DbStats;

/// The result of one append: the admitted sequence number plus the full
/// maintenance report.
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// The sequence number the batch received.
    pub seq: SeqNo,
    /// The chronon the batch was stamped with.
    pub at: Chronon,
    /// What maintenance did.
    pub report: MaintenanceReport,
}

/// The result of executing one SQL statement.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// A catalog object was created (kind, name).
    Created(&'static str, String),
    /// A batch was appended.
    Appended(AppendOutcome),
    /// Relation rows were inserted / updated / deleted (count).
    RelationChanged(usize),
    /// Query rows.
    Rows(Vec<Tuple>),
    /// A view was dropped.
    Dropped(String),
}

use crate::mutate;
use crate::session::{CachedOutcome, SessionTable};

/// Live durability plumbing for a database opened at a path.
#[derive(Debug)]
struct DurabilityState {
    vfs: Arc<dyn Vfs>,
    wal: Wal,
    dir: PathBuf,
    opts: DurabilityOptions,
    records_since_checkpoint: u64,
}

/// The chronicle database system: Definition 2.1's *(C, R, L, V)*.
#[derive(Debug, Default)]
pub struct ChronicleDb {
    catalog: Catalog,
    maintainer: Maintainer,
    default_group: Option<GroupId>,
    /// Periodic family name → index in the maintainer.
    periodic_names: HashMap<String, usize>,
    /// Auto-advancing chronon used when an append carries no `AT` clause.
    tick: i64,
    stats: DbStats,
    /// Present iff the database was opened at a path; `None` = in-memory.
    durability: Option<DurabilityState>,
    /// Every DDL statement executed so far, in order (checkpoint replay).
    ddl_log: Vec<String>,
    /// When true, WAL records accumulate in the buffer until an explicit
    /// [`ChronicleDb::wal_flush`] — the group-commit mode the pipeline
    /// uses. When false (default), every logged record is flushed before
    /// the operation returns.
    wal_buffered: bool,
    /// Per-group placement epoch (DESIGN.md §16): bumped when the group is
    /// exported to another shard, adopted on import, persisted in every
    /// checkpoint. Groups absent from the map are at epoch 0 (never
    /// moved). When post-crash reconciliation finds a group on more than
    /// one shard, the copy with the highest epoch wins.
    group_epochs: HashMap<String, u64>,
    /// Leadership term (DESIGN.md §17): 0 until a `Term` record is seen,
    /// then the max over all terms logged or replayed. Promotion logs
    /// `term + 1`; fencing compares request terms against this.
    term: u64,
    /// Idempotent-session dedupe table, rebuilt identically by every WAL
    /// replayer and persisted in checkpoints (DESIGN.md §17).
    sessions: SessionTable,
    /// When a stamped statement is executing, the records it logs are
    /// diverted here and written as one `Stamped` WAL record afterwards —
    /// the stamp and the statement's every effect share one commit unit.
    stamp_buf: Option<Vec<WalRecord>>,
}

impl ChronicleDb {
    /// An empty in-memory database (no durability).
    pub fn new() -> Self {
        Self::default()
    }

    // ---- durability -------------------------------------------------------

    /// Open a durable database at `path` (created if absent) with default
    /// [`DurabilityOptions`], recovering any existing state: the newest
    /// valid checkpoint is loaded and the WAL tail is replayed through the
    /// normal maintenance path.
    pub fn open(path: impl AsRef<Path>) -> Result<ChronicleDb> {
        Self::open_with(path, DurabilityOptions::default())
    }

    /// [`ChronicleDb::open`] with explicit durability options.
    pub fn open_with(path: impl AsRef<Path>, opts: DurabilityOptions) -> Result<ChronicleDb> {
        Self::open_with_vfs(RealFs::arc(), path, opts)
    }

    /// [`ChronicleDb::open_with`] over an explicit filesystem — the entry
    /// point the deterministic simulation harness uses to run the whole
    /// recovery path against an in-memory fault-injecting filesystem.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        opts: DurabilityOptions,
    ) -> Result<ChronicleDb> {
        let dir = path.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)
            .map_err(|e| ChronicleError::Durability {
                detail: format!("creating database directory {}: {e}", dir.display()),
            })?;
        let (image, skipped, ckpt_quarantined, ckpt_dropped_lsn) =
            checkpoint::load_latest_salvaging_with_vfs(
                vfs.as_ref(),
                &dir,
                opts.recovery,
                opts.fsync,
            )?;
        let checkpoint_lsn = image.as_ref().map(|i| i.lsn);
        let floor = checkpoint_lsn.unwrap_or(0);
        let (wal, tail) = Wal::open_with_vfs(Arc::clone(&vfs), dir.join("wal"), opts, floor)?;
        // Under Salvage the WAL open produced a report; fold the
        // checkpoint-level decisions into it.
        let mut salvage = wal.salvage_report().cloned();
        if let Some(report) = salvage.as_mut() {
            report.checkpoints_skipped = skipped as u64;
            report.checkpoints_quarantined = ckpt_quarantined;
            // A dropped checkpoint at lsn X proves records 1..=X were once
            // durable (checkpoints are only written behind the WAL). If
            // replay could not reach back up to X — the records below the
            // dropped image were already pruned — the difference is real
            // loss and must be confessed, not absorbed by the fallback.
            if ckpt_dropped_lsn > report.replayed_through {
                let first = report.replayed_through + 1;
                report.lost = Some(match report.lost {
                    Some(r) => LsnRange {
                        first: r.first.min(first),
                        last: r.last.max(ckpt_dropped_lsn),
                    },
                    None => LsnRange {
                        first,
                        last: ckpt_dropped_lsn,
                    },
                });
            }
        }
        let mut db = ChronicleDb::new();
        if let Some(img) = image {
            db.restore_from_image(img)?;
        }
        let replayed = tail.len() as u64;
        for (lsn, rec) in tail {
            db.apply_wal_record(rec)
                .map_err(|e| ChronicleError::Corruption {
                    detail: format!("WAL record lsn {lsn} does not replay: {e}"),
                })?;
        }
        db.stats.recovery_checkpoint_lsn = checkpoint_lsn;
        db.stats.recovery_replayed_records = replayed;
        db.stats.recovery_skipped_checkpoints = skipped as u64;
        db.stats.salvage = if mutate("drop_salvage_report") {
            salvage.map(|_| SalvageReport::default())
        } else {
            salvage
        };
        // Attach the WAL only now: recovery itself must never re-log.
        db.durability = Some(DurabilityState {
            vfs,
            wal,
            dir,
            opts,
            records_since_checkpoint: replayed,
        });
        Ok(db)
    }

    /// Verify every checkpoint image and WAL segment of this database
    /// without disturbing live state: re-read the files through the
    /// [`Vfs`], re-check CRCs, headers, and LSN chain continuity, and
    /// report findings instead of acting on them. Requires a durable
    /// database (like [`ChronicleDb::checkpoint`]).
    pub fn scrub(&self) -> Result<ScrubReport> {
        match self.durability.as_ref() {
            Some(st) => scrub_database(st.vfs.as_ref(), &st.dir),
            None => Err(ChronicleError::Durability {
                detail: "scrub() requires a database opened with ChronicleDb::open".into(),
            }),
        }
    }

    /// True iff this database persists to disk.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Write a checkpoint: flush the WAL, persist every view's snapshot
    /// plus the catalog DDL and watermarks, then truncate WAL segments the
    /// checkpoint covers. Returns the covered LSN. Durable state after
    /// this call is `O(|V| + tail)`, independent of chronicle length.
    pub fn checkpoint(&mut self) -> Result<u64> {
        if self.durability.is_none() {
            return Err(ChronicleError::Durability {
                detail: "checkpoint() requires a database opened with ChronicleDb::open".into(),
            });
        }
        let lsn = {
            let st = self.durability.as_mut().expect("checked above");
            st.wal.flush()?;
            st.wal.last_lsn()
        };
        let image = self.build_checkpoint_image(lsn);
        let st = self.durability.as_mut().expect("checked above");
        checkpoint::write_with_vfs(
            st.vfs.as_ref(),
            &st.dir,
            &image,
            st.opts.keep_checkpoints,
            st.opts.fsync,
        )?;
        st.wal.rotate()?;
        st.wal.truncate_through(lsn)?;
        st.records_since_checkpoint = 0;
        self.stats.wal_flushes = st.wal.stats().flushes;
        self.stats.checkpoints += 1;
        Ok(lsn)
    }

    /// Flush buffered WAL records (no-op when nothing is buffered or the
    /// database is in-memory). Returns how many records became durable.
    pub fn wal_flush(&mut self) -> Result<u64> {
        match self.durability.as_mut() {
            Some(st) => {
                let n = st.wal.flush()?;
                self.stats.wal_flushes = st.wal.stats().flushes;
                Ok(n)
            }
            None => Ok(0),
        }
    }

    /// Switch between flush-per-operation (false, default) and buffered
    /// group-commit mode (true), where durability happens at the next
    /// [`ChronicleDb::wal_flush`]. The pipeline buffers a burst of appends
    /// and acknowledges them after one shared flush.
    pub fn set_wal_buffered(&mut self, buffered: bool) {
        self.wal_buffered = buffered;
    }

    // ---- WAL shipping (leader-side replication surface) -------------------
    //
    // Thin pass-throughs over the live [`Wal`] so log shipping never pokes
    // at directory listings. All of them require a durable database.

    fn durability_ref(&self) -> Result<&DurabilityState> {
        self.durability.as_ref().ok_or(ChronicleError::Durability {
            detail: "WAL shipping requires a database opened with ChronicleDb::open".into(),
        })
    }

    /// Every live WAL segment, oldest first (see [`Wal::segments`]).
    pub fn wal_segments(&self) -> Result<Vec<SegmentInfo>> {
        Ok(self.durability_ref()?.wal.segments())
    }

    /// The live segment containing `lsn` (see [`Wal::segment_containing`]).
    pub fn wal_segment_containing(&self, lsn: u64) -> Result<Option<SegmentInfo>> {
        Ok(self.durability_ref()?.wal.segment_containing(lsn))
    }

    /// Read raw segment bytes for shipping (see [`Wal::read_segment`]).
    /// Only flushed bytes of the active segment are visible, so a
    /// follower can never apply a record the leader could lose in a
    /// crash.
    pub fn wal_read_segment(&self, first_lsn: u64, offset: u64, max: usize) -> Result<SegmentRead> {
        self.durability_ref()?
            .wal
            .read_segment(first_lsn, offset, max)
    }

    /// The highest WAL lsn guaranteed on the durable medium.
    pub fn wal_last_durable_lsn(&self) -> Result<u64> {
        Ok(self.durability_ref()?.wal.last_durable_lsn())
    }

    /// Pin WAL truncation so segments at or above `lsn` survive
    /// checkpoints — the leader sets this while followers still need the
    /// history (see [`Wal::set_retain_floor`]).
    pub fn set_wal_retain_floor(&mut self, lsn: u64) -> Result<()> {
        match self.durability.as_mut() {
            Some(st) => {
                st.wal.set_retain_floor(lsn);
                Ok(())
            }
            None => Err(ChronicleError::Durability {
                detail: "WAL shipping requires a database opened with ChronicleDb::open".into(),
            }),
        }
    }

    /// Detach the durability layer, turning this into a read-only replica
    /// state holder: further mutations are applied through
    /// [`ChronicleDb::apply_wal_record`] without re-logging (the follower
    /// ingests the leader's WAL bytes verbatim instead). Returns the
    /// highest lsn recovery replayed — the follower's applied watermark.
    pub(crate) fn detach_durability(&mut self) -> u64 {
        self.durability.take().map_or(0, |st| st.wal.last_lsn())
    }

    fn log_record(&mut self, rec: WalRecord) -> Result<()> {
        // A stamped statement in flight: buffer its records instead of
        // logging them one by one — they commit together inside a single
        // `Stamped` record (see [`ChronicleDb::execute_stamped`]).
        if let Some(buf) = self.stamp_buf.as_mut() {
            buf.push(rec);
            return Ok(());
        }
        let autoflush = !self.wal_buffered;
        if let Some(st) = self.durability.as_mut() {
            st.wal.append(&rec)?;
            st.records_since_checkpoint += 1;
            if autoflush {
                st.wal.flush()?;
            }
            let ws = st.wal.stats();
            self.stats.wal_records = ws.records;
            self.stats.wal_bytes = ws.bytes;
            self.stats.wal_flushes = ws.flushes;
            let due = st
                .opts
                .auto_checkpoint_records
                .is_some_and(|n| st.records_since_checkpoint >= n);
            if due {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Record a DDL statement in the replay log and the WAL.
    fn log_ddl(&mut self, sql: String) -> Result<()> {
        self.ddl_log.push(sql.clone());
        self.log_record(WalRecord::Ddl(sql))
    }

    fn build_checkpoint_image(&self, lsn: u64) -> CheckpointImage {
        let groups = self
            .catalog
            .groups()
            .iter()
            .map(|g| GroupImage {
                name: g.name().to_string(),
                high_water: g.high_water(),
                last_at: g.now(),
                epoch: self.group_epochs.get(g.name()).copied().unwrap_or(0),
            })
            .collect();
        let chronicles = self
            .catalog
            .chronicles()
            .iter()
            .map(|c| ChronicleImage {
                name: c.name().to_string(),
                total_appended: c.total_appended(),
                last_seq: c.last_seq(),
                first_stored_seq: c.first_stored_seq(),
                window: c.scan_window().cloned().collect(),
            })
            .collect();
        let relations = self
            .catalog
            .relations()
            .map(|(name, r)| RelationImage {
                name: name.to_string(),
                floor: r.floor(),
                base: r.base_rows(),
                log: r
                    .log()
                    .iter()
                    .map(|(at, ch)| match ch {
                        RelationChange::Insert(t) => (*at, true, t.clone()),
                        RelationChange::Delete(t) => (*at, false, t.clone()),
                    })
                    .collect(),
            })
            .collect();
        let mut periodic: Vec<(String, Vec<u8>)> = self
            .periodic_names
            .iter()
            .map(|(name, &idx)| (name.clone(), self.maintainer.periodic(idx).snapshot()))
            .collect();
        periodic.sort();
        CheckpointImage {
            lsn,
            tick: self.tick,
            ddl: self.ddl_log.clone(),
            groups,
            chronicles,
            relations,
            views: self.maintainer.snapshot_views(),
            periodic,
            term: self.term,
            sessions: self.sessions.encode(),
        }
    }

    /// Rebuild catalog + views from a checkpoint image: replay the DDL
    /// (windows are empty, so nothing bootstraps), then overwrite the
    /// rebuilt objects' state with the persisted images.
    fn restore_from_image(&mut self, img: CheckpointImage) -> Result<()> {
        self.tick = img.tick;
        // Term and session table are full-restore state only: group-slice
        // images (which go through `apply_image_objects` directly) carry
        // defaults and must not clobber a live shard's values.
        self.term = self.term.max(img.term);
        if !img.sessions.is_empty() {
            self.sessions = SessionTable::decode(&img.sessions)?;
        }
        self.apply_image_objects(img)
    }

    /// Replay an image's DDL and overwrite the (re)built objects' state
    /// with the persisted per-object images. Composes with existing state
    /// — a group *slice* image (see [`ChronicleDb::export_group`]) applies
    /// on top of a live shard during a placement move, while full restore
    /// ([`ChronicleDb::restore_from_image`]) starts from an empty
    /// database. The chronon tick only ever advances.
    fn apply_image_objects(&mut self, img: CheckpointImage) -> Result<()> {
        let corrupt = |detail: String| ChronicleError::Corruption { detail };
        for sql in &img.ddl {
            self.execute(sql)
                .map_err(|e| corrupt(format!("replaying checkpoint DDL `{sql}`: {e}")))?;
        }
        self.tick = self.tick.max(img.tick);
        for g in img.groups {
            if g.epoch > 0 {
                self.group_epochs.insert(g.name.clone(), g.epoch);
            }
            let gid = match self.catalog.group_id(&g.name) {
                Ok(id) => id,
                // A lazily derived group (created without its own DDL
                // statement, e.g. `default`): recreate it from its image.
                Err(_) => {
                    let id = self
                        .catalog
                        .create_group(&g.name)
                        .map_err(|e| corrupt(format!("recreating group `{}`: {e}", g.name)))?;
                    self.default_group.get_or_insert(id);
                    id
                }
            };
            self.catalog
                .group_mut(gid)
                .restore_watermark(g.high_water, g.last_at);
        }
        for c in img.chronicles {
            let cid = self
                .catalog
                .chronicle_id(&c.name)
                .map_err(|e| corrupt(format!("checkpoint/DDL mismatch: {e}")))?;
            self.catalog.chronicle_mut(cid).restore_state(
                c.total_appended,
                c.last_seq,
                c.first_stored_seq,
                c.window,
            )?;
        }
        for r in img.relations {
            let rid = self
                .catalog
                .relation_id(&r.name)
                .map_err(|e| corrupt(format!("checkpoint/DDL mismatch: {e}")))?;
            let log = r
                .log
                .into_iter()
                .map(|(at, is_insert, t)| {
                    let ch = if is_insert {
                        RelationChange::Insert(t)
                    } else {
                        RelationChange::Delete(t)
                    };
                    (at, ch)
                })
                .collect();
            self.catalog
                .relation_mut(rid)
                .restore_state(r.base, r.floor, log)?;
        }
        for (name, bytes) in &img.views {
            self.maintainer
                .restore_view(name, bytes)
                .map_err(|e| corrupt(format!("restoring view `{name}`: {e}")))?;
        }
        for (name, bytes) in &img.periodic {
            let idx = *self.periodic_names.get(name).ok_or_else(|| {
                corrupt(format!("checkpoint names unknown periodic view `{name}`"))
            })?;
            self.maintainer
                .periodic_mut(idx)
                .restore_state(bytes)
                .map_err(|e| corrupt(format!("restoring periodic view `{name}`: {e}")))?;
        }
        Ok(())
    }

    /// Re-apply one WAL-tail record through the normal mutation paths.
    /// `self.durability` is still `None` here (recovery attaches it last,
    /// and followers never attach it), so replay never re-logs.
    pub(crate) fn apply_wal_record(&mut self, rec: WalRecord) -> Result<()> {
        match rec {
            WalRecord::Ddl(sql) => {
                self.execute(&sql)?;
            }
            WalRecord::Append {
                chronicle,
                seq,
                at,
                tuples,
            } => {
                let cid = self.catalog.chronicle_id(&chronicle)?;
                self.append_tuples(cid, seq, at, tuples)?;
            }
            WalRecord::RelInsert {
                relation,
                at,
                tuple,
            } => {
                let rid = self.catalog.relation_id(&relation)?;
                self.relation_insert_at(rid, tuple, at)?;
            }
            WalRecord::RelDelete {
                relation,
                at,
                tuple,
            } => {
                let rid = self.catalog.relation_id(&relation)?;
                self.relation_delete_at(rid, &tuple, at)?;
            }
            WalRecord::RelUpdate {
                relation,
                at,
                key,
                new,
            } => {
                let rid = self.catalog.relation_id(&relation)?;
                self.relation_update_at(rid, &key, new, at)?;
            }
            WalRecord::GroupImport { group: _, image } => {
                let img = CheckpointImage::decode(&image)?;
                self.apply_image_objects(img)?;
            }
            WalRecord::GroupEvict(group) => {
                self.evict_group_state(&group)?;
            }
            WalRecord::Stamped {
                session,
                seq,
                inner,
            } => {
                // Replay is deterministic, so the dedupe decision made on
                // the live path holds here too: a stamped record in the
                // WAL was fresh when logged, and replaying in WAL order
                // re-derives the same table state on every replayer.
                let outcome = self.apply_stamped_inner(inner)?;
                self.sessions.note(session, seq, outcome);
            }
            WalRecord::Term(t) => {
                self.term = self.term.max(t);
            }
        }
        Ok(())
    }

    /// Apply a `Stamped` record's inner records in order and derive the
    /// [`CachedOutcome`] the originating statement produced — every
    /// replayer reconstructs the same outcome from the records alone.
    fn apply_stamped_inner(&mut self, inner: Vec<WalRecord>) -> Result<CachedOutcome> {
        let mut rel_changed = 0u64;
        let mut last: Option<CachedOutcome> = None;
        for rec in inner {
            match &rec {
                WalRecord::Ddl(sql) => {
                    // Capture the DDL outcome (Created/Dropped) instead of
                    // routing through `apply_wal_record`, which discards it.
                    let out = self.execute(sql)?;
                    last = CachedOutcome::of(&out);
                    continue;
                }
                WalRecord::Append { seq, at, .. } => {
                    last = Some(CachedOutcome::Appended { seq: *seq, at: *at });
                }
                WalRecord::RelInsert { .. }
                | WalRecord::RelDelete { .. }
                | WalRecord::RelUpdate { .. } => {
                    rel_changed += 1;
                    last = Some(CachedOutcome::RelationChanged(rel_changed));
                }
                _ => {}
            }
            self.apply_wal_record(rec)?;
        }
        Ok(last.unwrap_or(CachedOutcome::RelationChanged(0)))
    }

    // ---- group placement (heavy-light sharding, DESIGN.md §16) ------------
    //
    // Theorem 4.1 makes a chronicle group — its chronicles plus every view
    // over them — an independent maintenance unit, so a group can relocate
    // between shards without changing any view's semantics. The move
    // protocol is two WAL records: the *target* logs `GroupImport` (with
    // the full group slice as payload) and flushes, then the *source* logs
    // `GroupEvict` and flushes. A crash between the two flushes leaves the
    // group on both shards; recovery reconciles by placement epoch (the
    // imported copy carries `epoch + 1` and wins, rolling the move
    // forward).

    /// The group's placement epoch (0 = never moved).
    pub(crate) fn group_epoch(&self, group: &str) -> u64 {
        self.group_epochs.get(group).copied().unwrap_or(0)
    }

    /// True iff the catalog holds a group named `group`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn has_group(&self, group: &str) -> bool {
        self.catalog.group_id(group).is_ok()
    }

    /// Classify every logged DDL statement as belonging to `group`'s slice
    /// or to the complement. Chronicles belong by their `IN GROUP` clause;
    /// views and periodic views follow the chronicle they read (relations
    /// replicate to every shard, so relation-backed views and joined
    /// relations stay on the complement side / remain visible everywhere);
    /// a `DROP VIEW` follows the side that created the view.
    fn split_ddl(&self, group: &str) -> Result<DdlSplit> {
        let mut split = DdlSplit::default();
        let mut view_side: HashMap<String, bool> = HashMap::new();
        for sql in &self.ddl_log {
            let on_slice = match parse(sql)? {
                Statement::CreateGroup { name } => name == group,
                Statement::CreateChronicle { name, group: g, .. } => {
                    let slice = g.as_deref() == Some(group);
                    if slice {
                        split.chronicles.insert(name);
                    }
                    slice
                }
                Statement::CreateView { name, query } => {
                    let slice = split.chronicles.contains(&query.from);
                    view_side.insert(name.clone(), slice);
                    if slice {
                        split.views.insert(name);
                    }
                    slice
                }
                Statement::CreatePeriodicView { name, query, .. } => {
                    let slice = split.chronicles.contains(&query.from);
                    if slice {
                        split.periodic.insert(name);
                    }
                    slice
                }
                Statement::DropView { name } => {
                    let slice = view_side.get(&name).copied().unwrap_or(false);
                    if slice {
                        split.views.remove(&name);
                    }
                    slice
                }
                _ => false,
            };
            if on_slice {
                split.slice.push(sql.clone());
            } else {
                split.rest.push(sql.clone());
            }
        }
        Ok(split)
    }

    /// Export `group` as an encoded checkpoint-image slice — its DDL,
    /// watermark, chronicle windows, and view/periodic snapshots, with the
    /// placement epoch already bumped — ready for
    /// [`ChronicleDb::import_group`] on another shard. The source itself
    /// is not modified (eviction is a separate, later step).
    pub(crate) fn export_group(&self, group: &str) -> Result<Vec<u8>> {
        self.catalog.group_id(group)?;
        let split = self.split_ddl(group)?;
        let full = self.build_checkpoint_image(0);
        let epoch = self.group_epoch(group) + 1;
        let img = CheckpointImage {
            lsn: 0,
            tick: full.tick,
            ddl: split.slice,
            groups: full
                .groups
                .into_iter()
                .filter(|g| g.name == group)
                .map(|mut g| {
                    g.epoch = epoch;
                    g
                })
                .collect(),
            chronicles: full
                .chronicles
                .into_iter()
                .filter(|c| split.chronicles.contains(&c.name))
                .collect(),
            relations: Vec::new(),
            views: full
                .views
                .into_iter()
                .filter(|(n, _)| split.views.contains(n))
                .collect(),
            periodic: full
                .periodic
                .into_iter()
                .filter(|(n, _)| split.periodic.contains(n))
                .collect(),
            // Group slices carry neither term nor sessions: both are
            // whole-shard state, not group state.
            term: 0,
            sessions: Vec::new(),
        };
        Ok(img.encode())
    }

    /// Apply an exported group slice to this shard, then log the arrival
    /// as one `GroupImport` WAL record and flush it to the durable medium.
    /// Returns the imported group's name. The slice's DDL replays without
    /// per-statement logging — the single WAL record is the unit of
    /// atomicity, and [`ChronicleDb::apply_wal_record`] re-applies it on
    /// recovery.
    pub(crate) fn import_group(&mut self, image: &[u8]) -> Result<String> {
        let img = CheckpointImage::decode(image)?;
        let group =
            img.groups
                .first()
                .map(|g| g.name.clone())
                .ok_or(ChronicleError::Corruption {
                    detail: "group slice image carries no group".into(),
                })?;
        if self.catalog.group_id(&group).is_ok() {
            return Err(ChronicleError::AlreadyExists {
                kind: "group",
                name: group,
            });
        }
        // Detach durability while the slice replays: its DDL must not be
        // re-logged statement by statement.
        let dur = self.durability.take();
        let applied = self.apply_image_objects(img);
        self.durability = dur;
        applied?;
        self.log_record(WalRecord::GroupImport {
            group: group.clone(),
            image: image.to_vec(),
        })?;
        self.wal_flush()?;
        Ok(group)
    }

    /// Remove `group` (chronicles, views, periodic views, watermark) from
    /// this shard, log the departure as a `GroupEvict` WAL record, and
    /// flush. Call only after the target's import is durable.
    pub(crate) fn evict_group(&mut self, group: &str) -> Result<()> {
        self.evict_group_state(group)?;
        self.log_record(WalRecord::GroupEvict(group.to_string()))?;
        self.wal_flush()?;
        Ok(())
    }

    /// The state change of an eviction, shared by the live path and WAL
    /// replay. The catalog is id-positional (no removal API), so eviction
    /// rebuilds the database from the complement image — everything except
    /// the departing group — and swaps the rebuilt state in, preserving
    /// the durability handle, accumulated statistics, and WAL buffering
    /// mode.
    fn evict_group_state(&mut self, group: &str) -> Result<()> {
        self.catalog.group_id(group)?;
        let split = self.split_ddl(group)?;
        let full = self.build_checkpoint_image(0);
        let rest = CheckpointImage {
            lsn: 0,
            tick: full.tick,
            ddl: split.rest,
            groups: full
                .groups
                .into_iter()
                .filter(|g| g.name != group)
                .collect(),
            chronicles: full
                .chronicles
                .into_iter()
                .filter(|c| !split.chronicles.contains(&c.name))
                .collect(),
            relations: full.relations,
            views: full
                .views
                .into_iter()
                .filter(|(n, _)| !split.views.contains(n))
                .collect(),
            periodic: full
                .periodic
                .into_iter()
                .filter(|(n, _)| !split.periodic.contains(n))
                .collect(),
            // The rebuild below swaps only catalog-shaped state back in;
            // the shard's term and session table survive the eviction
            // untouched, so the complement image carries defaults.
            term: 0,
            sessions: Vec::new(),
        };
        let mut fresh = ChronicleDb::new();
        fresh
            .maintainer
            .set_batch_mode(self.maintainer.batch_mode());
        fresh.restore_from_image(rest).map_err(|e| {
            ChronicleError::Internal(format!(
                "rebuilding shard state after evicting group `{group}`: {e}"
            ))
        })?;
        self.catalog = fresh.catalog;
        self.maintainer = fresh.maintainer;
        self.default_group = fresh.default_group;
        self.periodic_names = fresh.periodic_names;
        self.tick = self.tick.max(fresh.tick);
        self.ddl_log = fresh.ddl_log;
        self.group_epochs = fresh.group_epochs;
        self.stats.group_rates.forget(group);
        Ok(())
    }

    // ---- catalog management ----------------------------------------------

    /// Create a chronicle group.
    pub fn create_group(&mut self, name: &str) -> Result<GroupId> {
        let id = self.catalog.create_group(name)?;
        self.default_group.get_or_insert(id);
        self.log_ddl(format!("CREATE GROUP {name}"))?;
        Ok(id)
    }

    /// The lazily created `default` group is *derived* state, never
    /// logged on its own: the statement that needed it (`CREATE
    /// CHRONICLE` without `IN GROUP`) re-runs this path during WAL
    /// replay and checkpoint-DDL replay, recreating the group at the
    /// same point. Logging it separately would split one statement
    /// across two WAL commits, and a crash between them would recover a
    /// half-applied statement that no legal history explains.
    fn default_group(&mut self) -> Result<GroupId> {
        match self.default_group {
            Some(g) => Ok(g),
            None => {
                let id = self.catalog.create_group("default")?;
                self.default_group = Some(id);
                Ok(id)
            }
        }
    }

    /// Chronon stamp for relation versioning: the default group's
    /// high-water, or `SeqNo(0)` before any group exists. Relation DML
    /// deliberately does not materialize a group as a side effect — a
    /// relation statement must stay a single WAL record.
    ///
    /// Clamped to the relation's newest logged stamp: evicting a group
    /// (heavy-light placement moving it to another shard) can leave the
    /// anchor group's high-water *below* stamps it already issued, and a
    /// regressed stamp would wedge the relation with spurious
    /// `RetroactiveUpdate` rejections. Equal stamps are legal, so the
    /// clamp keeps DML proactive without weakening the monotone check.
    fn relation_stamp(&self, rid: RelationId) -> SeqNo {
        self.default_group
            .map(|g| self.catalog.group(g).high_water())
            .unwrap_or(SeqNo(0))
            .max(self.catalog.relation(rid).last_stamp())
    }

    /// Create a chronicle (in the default group unless `group` is given).
    pub fn create_chronicle(
        &mut self,
        name: &str,
        schema: Schema,
        group: Option<&str>,
        retention: Retention,
    ) -> Result<ChronicleId> {
        let gid = match group {
            Some(g) => self.catalog.group_id(g)?,
            None => {
                // Validate before the lazy group creation: a rejected
                // statement must not leave the group behind (it would be
                // invisible to the log yet persisted by checkpoints).
                if self.catalog.chronicle_id(name).is_ok() {
                    return Err(ChronicleError::AlreadyExists {
                        kind: "chronicle",
                        name: name.into(),
                    });
                }
                self.default_group()?
            }
        };
        let sql = ddl_for_chronicle(name, &schema, group, retention);
        let id = self
            .catalog
            .create_chronicle(name, gid, schema, retention)?;
        self.log_ddl(sql)?;
        Ok(id)
    }

    /// Create a relation.
    pub fn create_relation(&mut self, name: &str, schema: Schema) -> Result<RelationId> {
        let sql = ddl_for_relation(name, &schema);
        let id = self.catalog.create_relation(name, schema)?;
        self.log_ddl(sql)?;
        Ok(id)
    }

    /// Create a persistent view from a pre-built SCA expression. If the
    /// base chronicles are fully retained and non-empty, the view is
    /// bootstrapped from history (§2.1: "materialized when it is initially
    /// defined").
    ///
    /// On a *durable* database this fails: an `ScaExpr` has no SQL text to
    /// log for replay, so view DDL must go through
    /// [`ChronicleDb::execute`].
    pub fn create_view(&mut self, name: &str, expr: ScaExpr) -> Result<ViewId> {
        self.create_view_inner(name, expr, None)
    }

    fn create_view_inner(
        &mut self,
        name: &str,
        expr: ScaExpr,
        source: Option<&str>,
    ) -> Result<ViewId> {
        if self.durability.is_some() && source.is_none() {
            return Err(ChronicleError::Durability {
                detail: format!(
                    "create_view(`{name}`) on a durable database: define views with SQL \
                     (`execute`) so the definition can be logged for recovery"
                ),
            });
        }
        let has_history = expr.ca().base_chronicles().iter().any(|&c| {
            let ch = self.catalog.chronicle(c);
            ch.total_appended() > 0
        });
        let id = self.maintainer.register(name, expr)?;
        if has_history {
            // Bootstrapping needs full retention; surface the error (and
            // roll back the registration) if history is gone.
            if let Err(e) = self.maintainer.bootstrap_view(id, &self.catalog) {
                self.maintainer.drop_view(name)?;
                return Err(e);
            }
        }
        if let Some(sql) = source {
            self.log_ddl(sql.to_string())?;
        }
        Ok(id)
    }

    /// Create a relation-backed view from a pre-built [`RelQuery`],
    /// bootstrapped from the relation's current rows (always possible —
    /// relations are fully stored) and thereafter maintained under
    /// inserts, updates and deletes via signed Z-set deltas.
    ///
    /// Like [`ChronicleDb::create_view`], the programmatic form is
    /// rejected on a durable database — use SQL so the definition is
    /// logged for recovery.
    pub fn create_relation_view(&mut self, name: &str, query: RelQuery) -> Result<ViewId> {
        self.create_relation_view_inner(name, query, None)
    }

    fn create_relation_view_inner(
        &mut self,
        name: &str,
        query: RelQuery,
        source: Option<&str>,
    ) -> Result<ViewId> {
        if self.durability.is_some() && source.is_none() {
            return Err(ChronicleError::Durability {
                detail: format!(
                    "create_relation_view(`{name}`) on a durable database: define views with \
                     SQL (`execute`) so the definition can be logged for recovery"
                ),
            });
        }
        let id = self.maintainer.register_relation_view(name, query)?;
        if let Err(e) = self.maintainer.bootstrap_relation_view(id, &self.catalog) {
            self.maintainer.drop_view(name)?;
            return Err(e);
        }
        if let Some(sql) = source {
            self.log_ddl(sql.to_string())?;
        }
        Ok(id)
    }

    /// Create a periodic view family. Like [`ChronicleDb::create_view`],
    /// this programmatic form is rejected on a durable database — use SQL.
    pub fn create_periodic_view(
        &mut self,
        name: &str,
        expr: ScaExpr,
        calendar: Calendar,
        expire_after: Option<i64>,
    ) -> Result<usize> {
        self.create_periodic_view_inner(name, expr, calendar, expire_after, None)
    }

    fn create_periodic_view_inner(
        &mut self,
        name: &str,
        expr: ScaExpr,
        calendar: Calendar,
        expire_after: Option<i64>,
        source: Option<&str>,
    ) -> Result<usize> {
        if self.durability.is_some() && source.is_none() {
            return Err(ChronicleError::Durability {
                detail: format!(
                    "create_periodic_view(`{name}`) on a durable database: define views with \
                     SQL (`execute`) so the definition can be logged for recovery"
                ),
            });
        }
        if self.periodic_names.contains_key(name) {
            return Err(ChronicleError::AlreadyExists {
                kind: "periodic view",
                name: name.into(),
            });
        }
        let set = PeriodicViewSet::new(name, expr, calendar, expire_after);
        let idx = self.maintainer.register_periodic(set);
        self.periodic_names.insert(name.into(), idx);
        if let Some(sql) = source {
            self.log_ddl(sql.to_string())?;
        }
        Ok(idx)
    }

    /// Toggle §5.2 routing on or off (experiment E9).
    pub fn set_route_mode(&mut self, mode: RouteMode) {
        self.maintainer.set_route_mode(mode);
    }

    /// Toggle vectorized vs forced-scalar view maintenance. Both modes
    /// produce byte-identical state; the differential oracle pins them
    /// against each other.
    pub fn set_batch_mode(&mut self, mode: BatchMode) {
        self.maintainer.set_batch_mode(mode);
    }

    // ---- appends -----------------------------------------------------------

    /// Append rows (without sequencing attribute — it is assigned here) to
    /// a chronicle at chronon `at`, maintaining all views.
    pub fn append(
        &mut self,
        chronicle: &str,
        at: Chronon,
        rows: &[Vec<Value>],
    ) -> Result<AppendOutcome> {
        let cid = self.catalog.chronicle_id(chronicle)?;
        let seq = self.catalog.next_seq(cid);
        let sp = self.catalog.chronicle(cid).seq_pos();
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| {
                let mut v = Vec::with_capacity(r.len() + 1);
                let mut it = r.iter();
                for i in 0..=r.len() {
                    if i == sp {
                        v.push(Value::Seq(seq));
                    } else if let Some(x) = it.next() {
                        v.push(x.clone());
                    }
                }
                Tuple::new(v)
            })
            .collect();
        self.append_tuples(cid, seq, at, tuples)
    }

    /// Append fully formed tuples (sequencing attribute already set to the
    /// group's next sequence number).
    pub fn append_tuples(
        &mut self,
        chronicle: ChronicleId,
        seq: SeqNo,
        at: Chronon,
        tuples: Vec<Tuple>,
    ) -> Result<AppendOutcome> {
        self.catalog.append_at(chronicle, seq, at, &tuples)?;
        self.tick = self.tick.max(at.0);
        let event = AppendEvent {
            chronicle,
            seq,
            chronon: at,
            tuples,
        };
        let report = self.maintainer.on_append(&self.catalog, &event)?;
        let group = self
            .catalog
            .group(self.catalog.chronicle(chronicle).group())
            .name();
        self.stats.record_append(group, event.tuples.len(), &report);
        if self.durability.is_some() {
            let rec = WalRecord::Append {
                chronicle: self.catalog.chronicle_name(chronicle).to_string(),
                seq,
                at,
                tuples: event.tuples,
            };
            self.log_record(rec)?;
        }
        Ok(AppendOutcome { seq, at, report })
    }

    // ---- relation updates (proactive by construction) ----------------------
    //
    // Every relation mutation — public DML and WAL-tail replay alike — goes
    // through the `*_at` inner methods below: mutate the catalog, build the
    // signed Z-set delta (insert `+1`, delete `−1`, update `−old +new`),
    // and drive it through every relation-backed view. Replay runs with
    // `self.durability == None`, so it re-drives maintenance with the
    // recorded chronon without re-logging.

    /// Insert a tuple into a relation.
    pub fn insert_relation(&mut self, name: &str, tuple: Tuple) -> Result<()> {
        let rid = self.catalog.relation_id(name)?;
        let at = self.relation_stamp(rid);
        let logged = self.durability.is_some().then(|| WalRecord::RelInsert {
            relation: name.to_string(),
            at,
            tuple: tuple.clone(),
        });
        self.relation_insert_at(rid, tuple, at)?;
        if let Some(rec) = logged {
            self.log_record(rec)?;
        }
        Ok(())
    }

    /// Update a relation tuple by primary key.
    pub fn update_relation(&mut self, name: &str, key: &[Value], new: Tuple) -> Result<()> {
        let rid = self.catalog.relation_id(name)?;
        let at = self.relation_stamp(rid);
        let logged = self.durability.is_some().then(|| WalRecord::RelUpdate {
            relation: name.to_string(),
            at,
            key: key.to_vec(),
            new: new.clone(),
        });
        self.relation_update_at(rid, key, new, at)?;
        if let Some(rec) = logged {
            self.log_record(rec)?;
        }
        Ok(())
    }

    /// Delete a relation tuple.
    pub fn delete_relation(&mut self, name: &str, tuple: &Tuple) -> Result<bool> {
        let rid = self.catalog.relation_id(name)?;
        let at = self.relation_stamp(rid);
        let logged = self.durability.is_some().then(|| WalRecord::RelDelete {
            relation: name.to_string(),
            at,
            tuple: tuple.clone(),
        });
        let removed = self.relation_delete_at(rid, tuple, at)?;
        if removed {
            if let Some(rec) = logged {
                self.log_record(rec)?;
            }
        }
        Ok(removed)
    }

    fn relation_insert_at(&mut self, rid: RelationId, tuple: Tuple, at: SeqNo) -> Result<()> {
        self.catalog.relation_mut(rid).insert(tuple.clone(), at)?;
        self.propagate_relation_delta(rid, ZSet::singleton(tuple, 1))
    }

    fn relation_delete_at(&mut self, rid: RelationId, tuple: &Tuple, at: SeqNo) -> Result<bool> {
        let removed = self.catalog.relation_mut(rid).delete(tuple, at)?;
        if removed {
            self.propagate_relation_delta(rid, ZSet::singleton(tuple.clone(), -1))?;
        }
        Ok(removed)
    }

    fn relation_update_at(
        &mut self,
        rid: RelationId,
        key: &[Value],
        new: Tuple,
        at: SeqNo,
    ) -> Result<()> {
        // Fetch the old image first: the view delta needs the retraction
        // side, and `update_by_key` errors when the key is absent anyway.
        let old = self
            .catalog
            .relation(rid)
            .current()
            .get_by_key(key)
            .cloned();
        self.catalog
            .relation_mut(rid)
            .update_by_key(key, new.clone(), at)?;
        let old = old.expect("update_by_key succeeded, so the key existed");
        let mut delta = ZSet::new();
        delta.insert(old, -1);
        delta.insert(new, 1);
        self.propagate_relation_delta(rid, delta)
    }

    /// Drive one signed relation delta through maintenance and fold the
    /// report into the statistics. An in-place update that leaves the
    /// tuple unchanged consolidates to the empty Z-set and is a no-op.
    fn propagate_relation_delta(&mut self, rid: RelationId, delta: ZSet) -> Result<()> {
        if self.maintainer.relation_view_count() == 0 || delta.is_empty() {
            return Ok(());
        }
        let report = self.maintainer.on_relation_change(rid, &delta)?;
        self.stats.record_relation_change(&report);
        Ok(())
    }

    // ---- queries ------------------------------------------------------------

    /// All rows of a persistent view (ordered by group key). Works for
    /// chronicle-backed and relation-backed views alike.
    pub fn query_view(&self, name: &str) -> Result<Vec<Tuple>> {
        self.maintainer.rows_of(name)
    }

    /// Point lookup in a persistent view — the sub-second summary query.
    pub fn query_view_key(&self, name: &str, key: &[Value]) -> Result<Option<Tuple>> {
        self.maintainer.query(name, key)
    }

    /// Detailed query over a chronicle's retained window (§2.2): scan the
    /// stored suffix with a predicate. This is the *only* sanctioned way to
    /// read chronicle contents; it never sees evicted history.
    pub fn query_window(
        &self,
        chronicle: &str,
        pred: &chronicle_algebra::Predicate,
    ) -> Result<Vec<Tuple>> {
        let cid = self.catalog.chronicle_id(chronicle)?;
        let c = self.catalog.chronicle(cid);
        pred.validate(c.schema())?;
        let mut out = Vec::new();
        for t in c.scan_window() {
            if pred.eval(t)? {
                out.push(t.clone());
            }
        }
        Ok(out)
    }

    /// A periodic family, by name.
    pub fn periodic_view(&self, name: &str) -> Result<&PeriodicViewSet> {
        let idx = self
            .periodic_names
            .get(name)
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "periodic view",
                name: name.into(),
            })?;
        Ok(self.maintainer.periodic(*idx))
    }

    /// Names of every periodic view family, in no particular order (shard
    /// route rebuilding after recovery).
    pub fn periodic_view_names(&self) -> impl Iterator<Item = &str> {
        self.periodic_names.keys().map(String::as_str)
    }

    /// The underlying catalog (read access for oracles and experiments).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (index management in experiments).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The maintenance engine (read access).
    pub fn maintainer(&self) -> &Maintainer {
        &self.maintainer
    }

    /// Snapshot every persistent view's state (restart image; see
    /// [`chronicle_views::PersistentView::snapshot`]).
    pub fn snapshot_views(&self) -> Vec<(String, Vec<u8>)> {
        self.maintainer.snapshot_views()
    }

    /// Restore a view's state from a snapshot taken on an identically
    /// defined view.
    pub fn restore_view(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.maintainer.restore_view(name, bytes)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// Planner hook: fold the per-group append-rate table one half-life.
    /// [`crate::ShardedDb::rebalance`] calls this on every shard after
    /// each pass — the planner, not the recorder, owns the decay clock so
    /// per-shard tables stay comparable (see
    /// [`crate::stats::GroupRates::decay`]).
    pub(crate) fn decay_group_rates(&mut self) {
        self.stats.group_rates.decay();
    }

    // ---- SQL ------------------------------------------------------------------

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        self.execute_stmt_inner(stmt, Some(sql))
    }

    /// Execute one SQL statement stamped with an idempotent-session
    /// `(session, seq)` pair (DESIGN.md §17).
    ///
    /// If the stamp matches the last statement this shard applied for the
    /// session, nothing re-executes: the cached outcome answers the retry.
    /// Otherwise the statement runs with its WAL records diverted into a
    /// buffer and committed as one `Stamped` record — the stamp and every
    /// effect of the statement are a single atomic WAL unit, so every
    /// replayer (crash recovery, followers, a promoted follower) rebuilds
    /// the same dedupe decision. Statements that log nothing (reads,
    /// no-op DML) are never stamped; their retries re-execute, which is
    /// harmless by the same emptiness.
    pub fn execute_stamped(&mut self, sql: &str, session: u64, seq: u64) -> Result<ExecOutcome> {
        if !mutate("skip_session_dedupe") {
            if let Some(cached) = self.sessions.check(session, seq)? {
                self.stats.session_replays += 1;
                return Ok(cached.to_exec());
            }
        }
        debug_assert!(self.stamp_buf.is_none(), "stamped statements do not nest");
        self.stamp_buf = Some(Vec::new());
        let result = self.execute(sql);
        let buf = self.stamp_buf.take().unwrap_or_default();
        match result {
            Ok(outcome) => {
                if !buf.is_empty() {
                    self.log_record(WalRecord::Stamped {
                        session,
                        seq,
                        inner: buf,
                    })?;
                    if let Some(cached) = CachedOutcome::of(&outcome) {
                        self.sessions.note(session, seq, cached);
                    }
                } else if self.durability.is_none() {
                    // An in-memory database logs nothing, so "did it log a
                    // record" cannot gate the dedupe note; cache every
                    // cacheable outcome directly (reads stay uncached).
                    if let Some(cached) = CachedOutcome::of(&outcome) {
                        self.sessions.note(session, seq, cached);
                    }
                }
                Ok(outcome)
            }
            Err(e) => {
                // A failed statement is not acked and must not dedupe a
                // future retry — but any records it logged before failing
                // (e.g. the leading rows of a multi-row insert) were
                // applied to in-memory state and go to the WAL exactly as
                // the unstamped path would have written them.
                for rec in buf {
                    self.log_record(rec)?;
                }
                Err(e)
            }
        }
    }

    /// Current leadership term (0 = no term record seen yet).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Adopt leadership term `t` (monotone) and log it as a flushed WAL
    /// record — the durable fencing point a promotion writes before
    /// accepting any traffic.
    pub(crate) fn note_term(&mut self, t: u64) -> Result<()> {
        self.term = self.term.max(t);
        self.log_record(WalRecord::Term(t))?;
        self.wal_flush()?;
        Ok(())
    }

    /// Last applied seq for an idempotent session on this shard, if any
    /// (repl `.session` inspector).
    pub fn session_last_seq(&self, session: u64) -> Option<u64> {
        self.sessions.last_seq(session)
    }

    /// Execute a pre-parsed statement. On a durable database, view DDL is
    /// rejected here (no SQL text to log) — go through
    /// [`ChronicleDb::execute`] instead.
    pub fn execute_stmt(&mut self, stmt: Statement) -> Result<ExecOutcome> {
        self.execute_stmt_inner(stmt, None)
    }

    fn execute_stmt_inner(&mut self, stmt: Statement, source: Option<&str>) -> Result<ExecOutcome> {
        match stmt {
            Statement::CreateGroup { name } => {
                self.create_group(&name)?;
                Ok(ExecOutcome::Created("group", name))
            }
            Statement::CreateChronicle {
                name,
                columns,
                group,
                retention,
            } => {
                let attrs: Vec<chronicle_types::Attribute> = columns
                    .iter()
                    .map(|c| chronicle_types::Attribute::new(&c.name, c.ty))
                    .collect();
                let seq_name = columns
                    .iter()
                    .find(|c| c.ty == chronicle_types::AttrType::Seq)
                    .map(|c| c.name.clone())
                    .ok_or_else(|| {
                        ChronicleError::InvalidSchema(
                            "chronicle needs exactly one SEQ column".into(),
                        )
                    })?;
                let schema = Schema::chronicle(attrs, &seq_name)?;
                let retention = match retention {
                    RetentionSpec::None => Retention::None,
                    RetentionSpec::Last(n) => Retention::LastTuples(n),
                    RetentionSpec::All => Retention::All,
                };
                self.create_chronicle(&name, schema, group.as_deref(), retention)?;
                Ok(ExecOutcome::Created("chronicle", name))
            }
            Statement::CreateRelation { name, columns, key } => {
                let attrs: Vec<chronicle_types::Attribute> = columns
                    .iter()
                    .map(|c| chronicle_types::Attribute::new(&c.name, c.ty))
                    .collect();
                let schema = if key.is_empty() {
                    Schema::relation(attrs)?
                } else {
                    let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
                    Schema::relation_with_key(attrs, &key_refs)?
                };
                self.create_relation(&name, schema)?;
                Ok(ExecOutcome::Created("relation", name))
            }
            Statement::CreateView { name, query } => {
                match plan_any_view(&self.catalog, &query)? {
                    PlannedView::Chronicle(expr) => {
                        self.create_view_inner(&name, expr, source)?;
                    }
                    PlannedView::Relation(q) => {
                        self.create_relation_view_inner(&name, q, source)?;
                    }
                }
                Ok(ExecOutcome::Created("view", name))
            }
            Statement::CreatePeriodicView {
                name,
                query,
                calendar,
            } => {
                let expr = plan_view(&self.catalog, &query)?;
                let cal = calendar_from_spec(&calendar)?;
                self.create_periodic_view_inner(&name, expr, cal, calendar.expire_after, source)?;
                Ok(ExecOutcome::Created("periodic view", name))
            }
            Statement::Append(a) => {
                let cid = self.catalog.chronicle_id(&a.chronicle)?;
                let seq = self.catalog.next_seq(cid);
                let schema = self.catalog.chronicle(cid).schema().clone();
                let tuples: Vec<Tuple> = a
                    .rows
                    .iter()
                    .map(|row| resolve_literal_row(&schema, row, Some(seq)))
                    .collect::<Result<_>>()?;
                // Full-arity rows may spell a (sparse) explicit sequence
                // number; the batch then uses it. The catalog re-validates
                // monotonicity and that all rows agree.
                let sp = schema.seq_attr().expect("chronicle schema");
                let batch_seq = tuples
                    .first()
                    .map(|t| t.seq_at(sp))
                    .transpose()?
                    .unwrap_or(seq);
                let at = a.at.map(Chronon).unwrap_or(Chronon(self.tick + 1));
                let outcome = self.append_tuples(cid, batch_seq, at, tuples)?;
                Ok(ExecOutcome::Appended(outcome))
            }
            Statement::InsertRelation { relation, rows } => {
                let rid = self.catalog.relation_id(&relation)?;
                let schema = self.catalog.relation(rid).current().schema().clone();
                let mut n = 0;
                for row in &rows {
                    let t = resolve_literal_row(&schema, row, None)?;
                    self.insert_relation(&relation, t)?;
                    n += 1;
                }
                Ok(ExecOutcome::RelationChanged(n))
            }
            Statement::UpdateRelation {
                relation,
                sets,
                filter,
            } => {
                let rid = self.catalog.relation_id(&relation)?;
                let schema = self.catalog.relation(rid).current().schema().clone();
                let fcol = schema.position(&filter.0)?;
                let fval = filter.1.to_value();
                if schema.key() != Some(&[fcol][..]) {
                    return Err(ChronicleError::InvalidSchema(format!(
                        "UPDATE requires WHERE on the primary key of `{relation}`"
                    )));
                }
                let old = self
                    .catalog
                    .relation(rid)
                    .current()
                    .get_by_key(std::slice::from_ref(&fval))
                    .cloned()
                    .ok_or_else(|| ChronicleError::NotFound {
                        kind: "relation tuple",
                        name: format!("{relation} key {fval}"),
                    })?;
                let mut values = old.values().to_vec();
                for (col, lit) in &sets {
                    let p = schema.position(col)?;
                    values[p] = lit.to_value();
                }
                self.update_relation(&relation, &[fval], Tuple::new(values))?;
                Ok(ExecOutcome::RelationChanged(1))
            }
            Statement::DeleteRelation { relation, filter } => {
                let rid = self.catalog.relation_id(&relation)?;
                let schema = self.catalog.relation(rid).current().schema().clone();
                let fcol = schema.position(&filter.0)?;
                let fval = filter.1.to_value();
                if schema.key() != Some(&[fcol][..]) {
                    return Err(ChronicleError::InvalidSchema(format!(
                        "DELETE requires WHERE on the primary key of `{relation}`"
                    )));
                }
                let Some(old) = self
                    .catalog
                    .relation(rid)
                    .current()
                    .get_by_key(&[fval])
                    .cloned()
                else {
                    return Ok(ExecOutcome::RelationChanged(0));
                };
                self.delete_relation(&relation, &old)?;
                Ok(ExecOutcome::RelationChanged(1))
            }
            Statement::Select { target, filters } => {
                let rows = self.select_rows(&target, &filters)?;
                Ok(ExecOutcome::Rows(rows))
            }
            Statement::DropView { name } => {
                self.maintainer.drop_view(&name)?;
                self.log_ddl(format!("DROP VIEW {name}"))?;
                Ok(ExecOutcome::Dropped(name))
            }
        }
    }

    pub(crate) fn select_rows(
        &self,
        target: &str,
        filters: &[(String, chronicle_sql::Literal)],
    ) -> Result<Vec<Tuple>> {
        // Views first, then relations, then chronicle windows (§2.2:
        // "detailed queries over some latest window on the chronicle").
        let (rows, schema) = if let Ok(v) = self.maintainer.view_by_name(target) {
            (v.rows(), v.schema().clone())
        } else if let Ok(v) = self.maintainer.rel_view_by_name(target) {
            (v.rows(), v.schema().clone())
        } else if let Ok(rid) = self.catalog.relation_id(target) {
            let rel = self.catalog.relation(rid).current();
            (rel.to_vec(), rel.schema().clone())
        } else {
            let cid = self.catalog.chronicle_id(target)?;
            let c = self.catalog.chronicle(cid);
            (c.scan_window().cloned().collect(), c.schema().clone())
        };
        let mut cols = Vec::with_capacity(filters.len());
        for (name, lit) in filters {
            cols.push((schema.position(name)?, lit.to_value()));
        }
        Ok(rows
            .into_iter()
            .filter(|t| cols.iter().all(|(c, v)| t.get(*c) == v))
            .collect())
    }
}

/// The two sides of a group move: DDL statements (original order) plus
/// the slice-side object names, produced by [`ChronicleDb::split_ddl`].
#[derive(Debug, Default)]
struct DdlSplit {
    /// DDL belonging to the departing group.
    slice: Vec<String>,
    /// DDL belonging to everything staying behind.
    rest: Vec<String>,
    /// Chronicle names in the slice.
    chronicles: HashSet<String>,
    /// Live view names in the slice.
    views: HashSet<String>,
    /// Periodic view family names in the slice.
    periodic: HashSet<String>,
}

fn calendar_from_spec(spec: &CalendarSpec) -> Result<Calendar> {
    Calendar::periodic(Chronon(spec.anchor), spec.width, spec.step, None)
}

/// Normalized `CREATE CHRONICLE` text for the DDL replay log. The
/// programmatic API has no SQL source, so one is synthesized; the SQL
/// parser round-trips it.
fn ddl_for_chronicle(
    name: &str,
    schema: &Schema,
    group: Option<&str>,
    retention: Retention,
) -> String {
    let cols: Vec<String> = schema
        .attrs()
        .iter()
        .map(|a| format!("{} {}", a.name, a.ty))
        .collect();
    let mut sql = format!("CREATE CHRONICLE {name} ({})", cols.join(", "));
    if let Some(g) = group {
        sql.push_str(&format!(" IN GROUP {g}"));
    }
    match retention {
        Retention::None => {}
        Retention::All => sql.push_str(" RETAIN ALL"),
        Retention::LastTuples(n) => sql.push_str(&format!(" RETAIN LAST {n}")),
    }
    sql
}

/// Normalized `CREATE RELATION` text for the DDL replay log.
fn ddl_for_relation(name: &str, schema: &Schema) -> String {
    let mut cols: Vec<String> = schema
        .attrs()
        .iter()
        .map(|a| format!("{} {}", a.name, a.ty))
        .collect();
    if let Some(key) = schema.key() {
        let key_names: Vec<&str> = key.iter().map(|&p| &*schema.attr(p).name).collect();
        cols.push(format!("PRIMARY KEY ({})", key_names.join(", ")));
    }
    format!("CREATE RELATION {name} ({})", cols.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn db_with_schema() -> ChronicleDb {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)")
            .unwrap();
        db.execute(
            "CREATE RELATION customers (acct INT, name STRING, state STRING, PRIMARY KEY (acct))",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_sql_flow() {
        let mut db = db_with_schema();
        db.execute(
            "CREATE VIEW totals AS SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller",
        )
        .unwrap();
        db.execute("APPEND INTO calls VALUES (555, 12.5)").unwrap();
        db.execute("APPEND INTO calls VALUES (555, 2.5), (777, 1.0)")
            .unwrap();
        let rows = db.query_view("totals").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            db.query_view_key("totals", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(15.0)
        );
        match db
            .execute("SELECT * FROM totals WHERE caller = 777")
            .unwrap()
        {
            ExecOutcome::Rows(rows) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].get(1), &Value::Float(1.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_view_with_relation_dml() {
        let mut db = db_with_schema();
        db.execute("INSERT INTO customers VALUES (555, 'alice', 'NJ')")
            .unwrap();
        db.execute(
            "CREATE VIEW nj AS SELECT caller, COUNT(*) AS n FROM calls \
             JOIN customers ON caller = acct WHERE state = 'NJ' GROUP BY caller",
        )
        .unwrap();
        db.execute("APPEND INTO calls VALUES (555, 1.0)").unwrap();
        // alice moves to NY (proactive): later calls don't count.
        db.execute("UPDATE customers SET state = 'NY' WHERE acct = 555")
            .unwrap();
        db.execute("APPEND INTO calls VALUES (555, 1.0)").unwrap();
        assert_eq!(
            db.query_view_key("nj", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Int(1)
        );
    }

    #[test]
    fn relation_view_tracks_inserts_updates_deletes() {
        let mut db = db_with_schema();
        db.execute("INSERT INTO customers VALUES (1, 'alice', 'NJ')")
            .unwrap();
        db.execute("INSERT INTO customers VALUES (2, 'bob', 'NJ')")
            .unwrap();
        // Bootstraps from the two existing rows.
        db.execute(
            "CREATE VIEW per_state AS SELECT state, COUNT(*) AS n FROM customers GROUP BY state",
        )
        .unwrap();
        assert_eq!(
            db.query_view("per_state").unwrap(),
            vec![tuple!["NJ", 2i64]]
        );
        // Insert propagates as +1.
        db.execute("INSERT INTO customers VALUES (3, 'carol', 'NY')")
            .unwrap();
        // Update propagates as −old +new, moving bob across groups.
        db.execute("UPDATE customers SET state = 'NY' WHERE acct = 2")
            .unwrap();
        assert_eq!(
            db.query_view("per_state").unwrap(),
            vec![tuple!["NJ", 1i64], tuple!["NY", 2i64]]
        );
        // Delete propagates as −1 and drains the NJ group entirely.
        db.execute("DELETE FROM customers WHERE acct = 1").unwrap();
        assert_eq!(
            db.query_view("per_state").unwrap(),
            vec![tuple!["NY", 2i64]]
        );
        // Only mutations made while a relation view existed drive
        // maintenance: carol's insert, bob's update, alice's delete.
        assert_eq!(db.stats().relation_changes, 3);
        assert!(db.stats().work.tuples_in > 0);
        // SELECT resolves relation views like any other view.
        match db
            .execute("SELECT * FROM per_state WHERE state = 'NY'")
            .unwrap()
        {
            ExecOutcome::Rows(rows) => assert_eq!(rows, vec![tuple!["NY", 2i64]]),
            other => panic!("unexpected {other:?}"),
        }
        // DROP VIEW works on relation views too; DML afterwards is fine.
        db.execute("DROP VIEW per_state").unwrap();
        db.execute("INSERT INTO customers VALUES (9, 'zoe', 'CA')")
            .unwrap();
        assert!(db.query_view("per_state").is_err());
    }

    #[test]
    fn relation_projection_view_keeps_set_semantics() {
        let mut db = db_with_schema();
        db.execute("CREATE VIEW states AS SELECT state FROM customers")
            .unwrap();
        db.execute("INSERT INTO customers VALUES (1, 'alice', 'NJ')")
            .unwrap();
        db.execute("INSERT INTO customers VALUES (2, 'bob', 'NJ')")
            .unwrap();
        assert_eq!(db.query_view("states").unwrap(), vec![tuple!["NJ"]]);
        // Removing one NJ row keeps the distinct row; removing both clears.
        db.execute("DELETE FROM customers WHERE acct = 1").unwrap();
        assert_eq!(db.query_view("states").unwrap(), vec![tuple!["NJ"]]);
        db.execute("DELETE FROM customers WHERE acct = 2").unwrap();
        assert!(db.query_view("states").unwrap().is_empty());
    }

    #[test]
    fn periodic_view_via_sql() {
        let mut db = db_with_schema();
        db.execute(
            "CREATE PERIODIC VIEW monthly AS SELECT caller, SUM(minutes) AS mins \
             FROM calls GROUP BY caller OVER CALENDAR EVERY 30",
        )
        .unwrap();
        db.execute("APPEND INTO calls AT 5 VALUES (555, 2.0)")
            .unwrap();
        db.execute("APPEND INTO calls AT 35 VALUES (555, 7.0)")
            .unwrap();
        let set = db.periodic_view("monthly").unwrap();
        assert_eq!(
            set.query(0, &[Value::Int(555)]).unwrap().get(1),
            &Value::Float(2.0)
        );
        assert_eq!(
            set.query(1, &[Value::Int(555)]).unwrap().get(1),
            &Value::Float(7.0)
        );
    }

    #[test]
    fn view_bootstraps_from_retained_history() {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) RETAIN ALL")
            .unwrap();
        db.execute("APPEND INTO calls VALUES (555, 3.0)").unwrap();
        db.execute(
            "CREATE VIEW totals AS SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller",
        )
        .unwrap();
        assert_eq!(
            db.query_view_key("totals", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(3.0)
        );
    }

    #[test]
    fn view_on_unretained_history_fails_cleanly() {
        let mut db = db_with_schema(); // RETAIN NONE default
        db.execute("APPEND INTO calls VALUES (555, 3.0)").unwrap();
        let err = db
            .execute(
                "CREATE VIEW totals AS SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller",
            )
            .unwrap_err();
        assert!(matches!(err, ChronicleError::ChronicleNotStored { .. }));
        // The failed registration left nothing behind; re-creating after the
        // history concern is moot works.
        let mut db2 = db_with_schema();
        db2.execute(
            "CREATE VIEW totals AS SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller",
        )
        .unwrap();
        db2.execute("APPEND INTO calls VALUES (555, 3.0)").unwrap();
        assert_eq!(db2.query_view("totals").unwrap().len(), 1);
    }

    #[test]
    fn relation_dml_guards() {
        let mut db = db_with_schema();
        db.execute("INSERT INTO customers VALUES (1, 'a', 'NJ')")
            .unwrap();
        // UPDATE/DELETE must filter on the key.
        assert!(db
            .execute("UPDATE customers SET name = 'b' WHERE state = 'NJ'")
            .is_err());
        assert!(db
            .execute("DELETE FROM customers WHERE name = 'a'")
            .is_err());
        // Missing key row.
        assert!(db
            .execute("UPDATE customers SET name = 'b' WHERE acct = 99")
            .is_err());
        match db.execute("DELETE FROM customers WHERE acct = 99").unwrap() {
            ExecOutcome::RelationChanged(0) => {}
            other => panic!("unexpected {other:?}"),
        }
        match db.execute("DELETE FROM customers WHERE acct = 1").unwrap() {
            ExecOutcome::RelationChanged(1) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_from_relation() {
        let mut db = db_with_schema();
        db.execute("INSERT INTO customers VALUES (1, 'a', 'NJ'), (2, 'b', 'NY')")
            .unwrap();
        match db
            .execute("SELECT * FROM customers WHERE state = 'NJ'")
            .unwrap()
        {
            ExecOutcome::Rows(rows) => assert_eq!(rows.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_view_via_sql() {
        let mut db = db_with_schema();
        db.execute("CREATE VIEW v AS SELECT caller FROM calls")
            .unwrap();
        db.execute("DROP VIEW v").unwrap();
        assert!(db.query_view("v").is_err());
    }

    #[test]
    fn auto_chronon_advances() {
        let mut db = db_with_schema();
        let o1 = match db.execute("APPEND INTO calls VALUES (1, 1.0)").unwrap() {
            ExecOutcome::Appended(o) => o,
            other => panic!("unexpected {other:?}"),
        };
        let o2 = match db.execute("APPEND INTO calls VALUES (1, 1.0)").unwrap() {
            ExecOutcome::Appended(o) => o,
            other => panic!("unexpected {other:?}"),
        };
        assert!(o2.at > o1.at);
        assert!(o2.seq > o1.seq);
    }

    #[test]
    fn programmatic_append_splices_sn() {
        let mut db = db_with_schema();
        db.execute(
            "CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller",
        )
        .unwrap();
        let out = db
            .append(
                "calls",
                Chronon(1),
                &[vec![Value::Int(9), Value::Float(4.0)]],
            )
            .unwrap();
        assert_eq!(out.seq, SeqNo(1));
        assert_eq!(
            db.query_view_key("totals", &[Value::Int(9)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(4.0)
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut db = db_with_schema();
        db.execute("CREATE VIEW v AS SELECT caller FROM calls")
            .unwrap();
        db.execute("APPEND INTO calls VALUES (1, 1.0)").unwrap();
        db.execute("APPEND INTO calls VALUES (2, 1.0)").unwrap();
        let s = db.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.tuples_appended, 2);
        assert!(s.maintenance_nanos > 0);
    }

    #[test]
    fn explicit_sn_append_monotonicity() {
        let mut db = db_with_schema();
        db.execute("APPEND INTO calls VALUES (1, 555, 1.0)")
            .unwrap(); // sn=1 explicit
                       // Stale explicit SN rejected.
        assert!(db
            .execute("APPEND INTO calls VALUES (1, 555, 1.0)")
            .is_err());
        // Sparse jump ahead is legal (§2.1: numbers need not be dense).
        db.execute("APPEND INTO calls VALUES (5, 555, 1.0)")
            .unwrap();
        // And the implicit path continues after the jump.
        let out = match db.execute("APPEND INTO calls VALUES (555, 1.0)").unwrap() {
            ExecOutcome::Appended(o) => o,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(out.seq, SeqNo(6));
    }

    #[test]
    fn window_queries_scan_retained_suffix() {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT) RETAIN LAST 3")
            .unwrap();
        for i in 0..10i64 {
            db.execute(&format!("APPEND INTO c AT {i} VALUES ({}, {}.0)", i % 2, i))
                .unwrap();
        }
        // SQL path: SELECT over the chronicle = window scan.
        match db.execute("SELECT * FROM c WHERE k = 1").unwrap() {
            ExecOutcome::Rows(rows) => {
                // Window holds v = 7, 8, 9; k=1 matches v=7 and v=9.
                assert_eq!(rows.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // API path with a real predicate.
        let schema = db
            .catalog()
            .chronicle(db.catalog().chronicle_id("c").unwrap())
            .schema()
            .clone();
        let p = chronicle_algebra::Predicate::attr_cmp_const(
            &schema,
            "v",
            chronicle_algebra::CmpOp::Ge,
            Value::Float(8.0),
        )
        .unwrap();
        assert_eq!(db.query_window("c", &p).unwrap().len(), 2);
        // Validation errors surface.
        let bad = chronicle_algebra::Predicate::attr_cmp_const(
            &schema,
            "v",
            chronicle_algebra::CmpOp::Ge,
            Value::Float(0.0),
        )
        .unwrap();
        let _ = bad; // predicate on a different schema:
        let other = Schema::relation(vec![chronicle_types::Attribute::new(
            "z",
            chronicle_types::AttrType::Int,
        )])
        .unwrap();
        let wrong = chronicle_algebra::Predicate::attr_cmp_const(
            &other,
            "z",
            chronicle_algebra::CmpOp::Eq,
            Value::Int(1),
        )
        .unwrap();
        // position 0 exists in c's schema too (sn), so type mismatch:
        assert!(db.query_window("c", &wrong).is_err());
    }

    #[test]
    fn tuple_macro_interop() {
        let mut db = db_with_schema();
        db.insert_relation("customers", tuple![3i64, "c", "TX"])
            .unwrap();
        assert_eq!(
            db.catalog()
                .relation(db.catalog().relation_id("customers").unwrap())
                .current()
                .len(),
            1
        );
    }
}
