//! Sharded maintenance: hash-partitioning the catalog by chronicle group.
//!
//! Theorem 4.1 restricts joins (and union/difference) to chronicles within
//! one chronicle group, and SN monotonicity is enforced per group — so a
//! chronicle group, its chronicles, and every view over them form a unit
//! whose maintenance is independent of every other group's. [`ShardedDb`]
//! exploits that: it owns `N` complete [`ChronicleDb`] instances
//! ("shards"), assigns each group to the shard `fnv1a(name) % N`, and
//! routes every statement to the shard that owns its objects. Each shard
//! keeps the existing serial maintenance loop, WAL stream, and checkpoint
//! cadence; nothing inside a shard knows it is one of many.
//!
//! Placement rules:
//!
//! * a **group** lives on `fnv1a(group name) % N`; chronicles live with
//!   their group (a chronicle created without a group lives wherever the
//!   implicit `default` group hashes);
//! * a **view** lives with the chronicle its `FROM` names — deltas then
//!   never cross a shard boundary; a view over no chronicle at all (a
//!   pure-relation view) pins to shard 0;
//! * **relations** are replicated to every shard and DML broadcasts to
//!   all replicas, because CA allows a chronicle in any group to join a
//!   relation. Each replica stamps the update against its own group
//!   watermarks, which is exactly the paper's per-group proactive
//!   semantics. Replicas stay identical because every shard applies the
//!   same DML in the same order;
//! * **DDL** is serialized through the facade (`&mut self` — exclusive
//!   access is the catalog lock) and is *not* available through the
//!   concurrent pipeline.
//!
//! Durable layout: `path/SHARDS` (the
//! [`chronicle_durability::ShardManifest`]) plus one full database
//! directory per shard, `path/shard-000/`, `path/shard-001/`, ….
//! [`ShardedDb::open`] refuses a shard count that disagrees with the
//! manifest (the hash assignment is only stable for a fixed `N`) and
//! recovers all shards in parallel, one thread each.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use chronicle_durability::{
    DurabilityOptions, RecoveryPolicy, SalvageReport, ScrubReport, ShardManifest,
};
use chronicle_simkit::{RealFs, Vfs};
use chronicle_sql::{parse, Statement};
use chronicle_types::{ChronicleError, Chronon, Result, Tuple, Value};

use crate::db::{AppendOutcome, ChronicleDb, ExecOutcome};
use crate::stats::{DbStats, GroupRates};

/// 64-bit FNV-1a. In-tree so the group→shard assignment is deterministic
/// across runs and builds (`std`'s `DefaultHasher` is explicitly allowed
/// to change between releases, which would scatter a reopened database's
/// groups across the wrong shards).
fn fnv1a(name: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The shard that owns chronicle group `name` in an `n`-shard database.
pub fn shard_of_group(name: &str, n: usize) -> usize {
    (fnv1a(name) % n as u64) as usize
}

/// Name of the group a chronicle without an explicit `IN GROUP` joins.
const DEFAULT_GROUP: &str = "default";

/// Where one statement executes: a single owning shard, or every shard
/// (relation DDL/DML replicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RouteTarget {
    /// Execute on this shard only.
    One(usize),
    /// Broadcast to every shard, in shard order.
    All,
}

/// The routing-table update a successful DDL statement commits. Planned
/// before execution, applied only after the owning shard accepted the
/// statement — so a rejected statement never pollutes the routes.
#[derive(Debug, Clone)]
pub(crate) enum RouteEffect {
    AddGroup(String, usize),
    AddChronicle {
        name: String,
        shard: usize,
        /// The statement had no `IN GROUP`: record where the implicit
        /// `default` group landed.
        implicit_default: bool,
    },
    AddRelation(String),
    AddView(String, usize),
    AddPeriodic(String, usize),
    DropView(String),
}

/// Name → owning-shard maps for every kind of catalog object. Cheap to
/// clone; the pipeline front-end shares one snapshot across producers.
#[derive(Debug, Clone)]
pub struct ShardRoutes {
    shards: usize,
    groups: HashMap<String, usize>,
    chronicles: HashMap<String, usize>,
    views: HashMap<String, usize>,
    periodic: HashMap<String, usize>,
    /// Relations exist on every shard; the set only answers existence.
    relations: HashSet<String>,
}

impl ShardRoutes {
    fn new(shards: usize) -> Self {
        ShardRoutes {
            shards,
            groups: HashMap::new(),
            chronicles: HashMap::new(),
            views: HashMap::new(),
            periodic: HashMap::new(),
            relations: HashSet::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning chronicle `name`.
    pub fn chronicle_shard(&self, name: &str) -> Result<usize> {
        self.chronicles
            .get(name)
            .copied()
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "chronicle",
                name: name.into(),
            })
    }

    /// The shard owning chronicle group `name`. For a moved group this is
    /// its current placement, not its hash assignment.
    pub fn group_shard(&self, name: &str) -> Result<usize> {
        self.groups
            .get(name)
            .copied()
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "chronicle group",
                name: name.into(),
            })
    }

    /// The shard owning persistent view `name`.
    pub fn view_shard(&self, name: &str) -> Result<usize> {
        self.views
            .get(name)
            .copied()
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "view",
                name: name.into(),
            })
    }

    /// Plan one statement against the current routes: where it executes,
    /// and (for DDL) the route update to commit once it succeeds. This is
    /// the single routing authority shared by [`ShardedDb::execute`] and
    /// the concurrent pipeline's SQL front end — duplicate-name checks
    /// and placement rules live here, nowhere else.
    pub(crate) fn plan(&self, stmt: &Statement) -> Result<(RouteTarget, Option<RouteEffect>)> {
        match stmt {
            Statement::CreateGroup { name } => {
                if self.groups.contains_key(name) {
                    return Err(ChronicleError::AlreadyExists {
                        kind: "chronicle group",
                        name: name.clone(),
                    });
                }
                let target = shard_of_group(name, self.shards);
                Ok((
                    RouteTarget::One(target),
                    Some(RouteEffect::AddGroup(name.clone(), target)),
                ))
            }
            Statement::CreateChronicle { name, group, .. } => {
                if self.chronicles.contains_key(name) {
                    return Err(ChronicleError::AlreadyExists {
                        kind: "chronicle",
                        name: name.clone(),
                    });
                }
                let target = match group {
                    Some(g) => {
                        self.groups
                            .get(g)
                            .copied()
                            .ok_or_else(|| ChronicleError::NotFound {
                                kind: "chronicle group",
                                name: g.clone(),
                            })?
                    }
                    // No explicit group: the shard owning the implicit
                    // `default` group creates it on first use.
                    None => self
                        .groups
                        .get(DEFAULT_GROUP)
                        .copied()
                        .unwrap_or_else(|| shard_of_group(DEFAULT_GROUP, self.shards)),
                };
                Ok((
                    RouteTarget::One(target),
                    Some(RouteEffect::AddChronicle {
                        name: name.clone(),
                        shard: target,
                        implicit_default: group.is_none(),
                    }),
                ))
            }
            Statement::CreateRelation { name, .. } => {
                if self.relations.contains(name) {
                    return Err(ChronicleError::AlreadyExists {
                        kind: "relation",
                        name: name.clone(),
                    });
                }
                Ok((
                    RouteTarget::All,
                    Some(RouteEffect::AddRelation(name.clone())),
                ))
            }
            Statement::CreateView { name, query } => {
                self.check_new_view(name)?;
                let target = self.view_target(&query.from)?;
                Ok((
                    RouteTarget::One(target),
                    Some(RouteEffect::AddView(name.clone(), target)),
                ))
            }
            Statement::CreatePeriodicView { name, query, .. } => {
                self.check_new_view(name)?;
                let target = self.view_target(&query.from)?;
                Ok((
                    RouteTarget::One(target),
                    Some(RouteEffect::AddPeriodic(name.clone(), target)),
                ))
            }
            Statement::Append(a) => {
                Ok((RouteTarget::One(self.chronicle_shard(&a.chronicle)?), None))
            }
            Statement::InsertRelation { .. }
            | Statement::UpdateRelation { .. }
            | Statement::DeleteRelation { .. } => Ok((RouteTarget::All, None)),
            Statement::Select { target, .. } => {
                Ok((RouteTarget::One(self.select_shard(target)), None))
            }
            Statement::DropView { name } => Ok((
                RouteTarget::One(self.view_shard(name)?),
                Some(RouteEffect::DropView(name.clone())),
            )),
        }
    }

    /// Commit the route update of a DDL statement that succeeded.
    pub(crate) fn apply(&mut self, effect: RouteEffect) {
        match effect {
            RouteEffect::AddGroup(name, shard) => {
                self.groups.insert(name, shard);
            }
            RouteEffect::AddChronicle {
                name,
                shard,
                implicit_default,
            } => {
                if implicit_default {
                    self.groups.insert(DEFAULT_GROUP.into(), shard);
                }
                self.chronicles.insert(name, shard);
            }
            RouteEffect::AddRelation(name) => {
                self.relations.insert(name);
            }
            RouteEffect::AddView(name, shard) => {
                self.views.insert(name, shard);
            }
            RouteEffect::AddPeriodic(name, shard) => {
                self.periodic.insert(name, shard);
            }
            RouteEffect::DropView(name) => {
                self.views.remove(&name);
            }
        }
    }

    /// The shard that answers `SELECT * FROM target`: the view's owner,
    /// any relation replica (shard 0 answers for all — replicas are
    /// identical), the chronicle's owner for a window scan, or shard 0 so
    /// an unknown name gets its NotFound from a real shard.
    pub(crate) fn select_shard(&self, target: &str) -> usize {
        if let Some(&s) = self.views.get(target) {
            s
        } else if self.relations.contains(target) {
            0
        } else if let Some(&s) = self.chronicles.get(target) {
            s
        } else {
            0
        }
    }

    fn check_new_view(&self, name: &str) -> Result<()> {
        if self.views.contains_key(name) || self.periodic.contains_key(name) {
            return Err(ChronicleError::AlreadyExists {
                kind: "view",
                name: name.into(),
            });
        }
        Ok(())
    }

    /// Where a view defined `FROM from` lives: with its base chronicle's
    /// group, so maintenance deltas never cross shards. A view over a
    /// relation only (no chronicle anywhere in the shard map) pins to
    /// shard 0.
    fn view_target(&self, from: &str) -> Result<usize> {
        if let Some(&s) = self.chronicles.get(from) {
            return Ok(s);
        }
        if self.relations.contains(from) {
            return Ok(0);
        }
        Err(ChronicleError::NotFound {
            kind: "chronicle",
            name: from.into(),
        })
    }
}

/// One relocation in a heavy-light placement plan (see
/// [`ShardedDb::plan_rebalance`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedMove {
    /// The group to move.
    pub group: String,
    /// The shard currently holding it.
    pub from: usize,
    /// The destination shard.
    pub to: usize,
}

/// A chronicle database hash-partitioned into independent maintenance
/// shards. See the module docs for the placement rules; the API mirrors
/// the [`ChronicleDb`] surface the single-shard facade offers.
#[derive(Debug)]
pub struct ShardedDb {
    shards: Vec<ChronicleDb>,
    routes: ShardRoutes,
    /// True when a salvage open found the `SHARDS` manifest corrupt,
    /// quarantined it, and rewrote it from the requested shard count.
    manifest_salvaged: bool,
}

impl ShardedDb {
    /// An in-memory database partitioned into `shards` shards.
    pub fn new(shards: usize) -> Result<ShardedDb> {
        if shards == 0 {
            return Err(ChronicleError::Internal(
                "a sharded database needs at least one shard".into(),
            ));
        }
        Ok(ShardedDb {
            shards: (0..shards).map(|_| ChronicleDb::new()).collect(),
            routes: ShardRoutes::new(shards),
            manifest_salvaged: false,
        })
    }

    /// Open (creating if absent) a durable sharded database at `path` with
    /// default [`DurabilityOptions`]. `shards` must match the on-disk
    /// manifest when the database already exists.
    pub fn open(path: impl AsRef<Path>, shards: usize) -> Result<ShardedDb> {
        Self::open_with(path, shards, DurabilityOptions::default())
    }

    /// [`ShardedDb::open`] with explicit durability options (applied to
    /// every shard). Recovery runs all shards in parallel — each shard
    /// loads its newest checkpoint and replays its own WAL tail on its own
    /// thread — then the name→shard routes are rebuilt from the recovered
    /// catalogs.
    pub fn open_with(
        path: impl AsRef<Path>,
        shards: usize,
        opts: DurabilityOptions,
    ) -> Result<ShardedDb> {
        Self::open_with_vfs(RealFs::arc(), path, shards, opts)
    }

    /// [`ShardedDb::open_with`] against an explicit filesystem — the hook
    /// the deterministic simulation harness uses to run every shard over
    /// one shared [`SimFs`](chronicle_simkit::SimFs) world. Note the
    /// parallel per-shard recovery: a `SimFs` fault plan (crash countdown,
    /// short reads) trips in thread-scheduling order here, so simulation
    /// drivers clear fault plans before a sharded reopen and inject faults
    /// only while the database is serially executing.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        shards: usize,
        opts: DurabilityOptions,
    ) -> Result<ShardedDb> {
        if shards == 0 {
            return Err(ChronicleError::Internal(
                "a sharded database needs at least one shard".into(),
            ));
        }
        let root = path.as_ref();
        vfs.create_dir_all(root)
            .map_err(|e| ChronicleError::Durability {
                detail: format!("creating database directory {}: {e}", root.display()),
            })?;
        // A corrupt manifest is a loud error under Strict. Under Salvage it
        // is quarantined and rewritten from the requested shard count — the
        // caller's `shards` is the only remaining source of truth, and an
        // honest wrong guess surfaces immediately as per-shard recovery
        // errors rather than silent misrouting (shard directories for a
        // different count would not line up). A *valid* manifest that
        // disagrees with `shards` stays loud under every policy: that is an
        // operator error, not rot.
        let mut manifest_salvaged = false;
        let loaded = match ShardManifest::load_with_vfs(vfs.as_ref(), root) {
            Err(ChronicleError::Corruption { .. }) if opts.recovery == RecoveryPolicy::Salvage => {
                ShardManifest::quarantine_with_vfs(vfs.as_ref(), root, opts.fsync)?;
                manifest_salvaged = true;
                None
            }
            other => other?,
        };
        match loaded {
            Some(m) if m.shards as usize != shards => {
                return Err(ChronicleError::Durability {
                    detail: format!(
                        "shard count mismatch: {} is partitioned into {} shards, requested {} \
                         (the group hash assignment is only stable for a fixed shard count)",
                        root.display(),
                        m.shards,
                        shards
                    ),
                });
            }
            Some(_) => {}
            None => ShardManifest {
                shards: shards as u32,
            }
            .write_with_vfs(vfs.as_ref(), root, opts.fsync)?,
        }
        let recovered: Vec<Result<ChronicleDb>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..shards)
                .map(|i| {
                    let dir = ShardManifest::shard_dir(root, i);
                    let vfs = Arc::clone(&vfs);
                    s.spawn(move || ChronicleDb::open_with_vfs(vfs, dir, opts))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard recovery thread panicked"))
                .collect()
        });
        let mut dbs = Vec::with_capacity(shards);
        for (i, r) in recovered.into_iter().enumerate() {
            dbs.push(r.map_err(|e| ChronicleError::Durability {
                detail: format!("recovering shard {i}: {e}"),
            })?);
        }
        Self::reconcile_placement(&mut dbs)?;
        let routes = Self::rebuild_routes(&dbs);
        Ok(ShardedDb {
            shards: dbs,
            routes,
            manifest_salvaged,
        })
    }

    /// Post-recovery placement reconciliation. A crash between a group
    /// move's two WAL flushes — the target's `GroupImport`, then the
    /// source's `GroupEvict` — recovers the group onto *both* shards. The
    /// copy with the highest placement epoch is the one the move reached
    /// last (export bumps the epoch the import adopts), so it wins and the
    /// stale copies are durably evicted, rolling the interrupted move
    /// forward. The implicit `default` group is exempt: it is derived
    /// state that legitimately exists on every shard relation DML or an
    /// ungrouped chronicle materialized it on.
    fn reconcile_placement(dbs: &mut [ChronicleDb]) -> Result<()> {
        let mut holders: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, db) in dbs.iter().enumerate() {
            for g in db.catalog().groups() {
                holders.entry(g.name().to_string()).or_default().push(i);
            }
        }
        let mut contested: Vec<(String, Vec<usize>)> = holders
            .into_iter()
            .filter(|(name, shards)| name != DEFAULT_GROUP && shards.len() > 1)
            .collect();
        contested.sort();
        for (name, shards) in contested {
            let winner = shards
                .iter()
                .copied()
                .max_by_key(|&i| (dbs[i].group_epoch(&name), usize::MAX - i))
                .expect("contested group has holders");
            for i in shards {
                if i != winner {
                    dbs[i]
                        .evict_group(&name)
                        .map_err(|e| ChronicleError::Durability {
                            detail: format!(
                                "evicting stale copy of group `{name}` from shard {i} \
                                 during placement reconciliation: {e}"
                            ),
                        })?;
                }
            }
        }
        Ok(())
    }

    /// Reconstruct the name→shard maps from recovered shard catalogs.
    /// Groups route to the shard that actually holds them — after a
    /// placement move that is no longer the hash shard. The `default`
    /// group keeps its hash assignment (it may exist on several shards —
    /// relation DML broadcasts create it everywhere — but it always
    /// exists on its hash shard if it exists at all, and it never moves);
    /// everything else routes to the shard that actually holds it.
    pub(crate) fn rebuild_routes(dbs: &[ChronicleDb]) -> ShardRoutes {
        let n = dbs.len();
        let mut routes = ShardRoutes::new(n);
        for (i, db) in dbs.iter().enumerate() {
            for g in db.catalog().groups() {
                let shard = if g.name() == DEFAULT_GROUP {
                    shard_of_group(g.name(), n)
                } else {
                    i
                };
                routes.groups.insert(g.name().to_string(), shard);
            }
            for c in db.catalog().chronicles() {
                routes.chronicles.insert(c.name().to_string(), i);
            }
            for (name, _) in db.catalog().relations() {
                routes.relations.insert(name.to_string());
            }
            for v in db.maintainer().iter_views() {
                routes.views.insert(v.name().to_string(), i);
            }
            for v in db.maintainer().iter_relation_views() {
                routes.views.insert(v.name().to_string(), i);
            }
            for p in db.periodic_view_names() {
                routes.periodic.insert(p.to_string(), i);
            }
        }
        routes
    }

    // ---- introspection ----------------------------------------------------

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's database (tests, experiments, `.views`).
    pub fn shard(&self, i: usize) -> &ChronicleDb {
        &self.shards[i]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[ChronicleDb] {
        &self.shards
    }

    /// The current name→shard routing table.
    pub fn routes(&self) -> &ShardRoutes {
        &self.routes
    }

    /// The shard owning chronicle `name`.
    pub fn shard_of_chronicle(&self, name: &str) -> Result<usize> {
        self.routes.chronicle_shard(name)
    }

    /// Toggle vectorized vs forced-scalar view maintenance on every shard.
    pub fn set_batch_mode(&mut self, mode: chronicle_views::BatchMode) {
        for s in &mut self.shards {
            s.set_batch_mode(mode);
        }
    }

    /// Statistics aggregated across every shard (counters add, maxima take
    /// the max, latency percentiles draw on all shards' samples). Use
    /// [`ShardedDb::shard`]`.stats()` for one shard's own numbers.
    pub fn stats(&self) -> DbStats {
        let mut total = DbStats::default();
        for s in &self.shards {
            total.absorb(s.stats());
        }
        if self.manifest_salvaged {
            total
                .salvage
                .get_or_insert_with(SalvageReport::default)
                .manifest_rewritten = true;
        }
        total
    }

    /// Per-shard salvage reports from the most recent open, in shard order
    /// (only shards that were opened with
    /// [`RecoveryPolicy::Salvage`] carry one). The aggregated view is
    /// [`ShardedDb::stats`]`.salvage`.
    pub fn salvage_reports(&self) -> Vec<(usize, SalvageReport)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.stats().salvage.clone().map(|r| (i, r)))
            .collect()
    }

    /// True when the most recent open quarantined a corrupt `SHARDS`
    /// manifest and rewrote it from the requested shard count.
    pub fn manifest_salvaged(&self) -> bool {
        self.manifest_salvaged
    }

    /// Scrub every shard's checkpoints and WAL segments (read-only; see
    /// [`chronicle_durability::scrub_database`]) and merge the findings.
    /// The `SHARDS` manifest itself is fully validated on every open, so a
    /// database that is running has a sound manifest by construction.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let mut total = ScrubReport::default();
        for s in &self.shards {
            total.merge(&s.scrub()?);
        }
        Ok(total)
    }

    /// Snapshot every persistent view across all shards, sorted by view
    /// name — shard-count-independent, so a sharded database and a
    /// single-shard one holding the same logical state produce identical
    /// images (the equivalence the property tests assert).
    pub fn snapshot_views(&self) -> Vec<(String, Vec<u8>)> {
        let mut all: Vec<(String, Vec<u8>)> = self
            .shards
            .iter()
            .flat_map(|s| s.snapshot_views())
            .collect();
        all.sort();
        all
    }

    // ---- durability -------------------------------------------------------

    /// Checkpoint every shard; returns the covered LSN per shard.
    pub fn checkpoint(&mut self) -> Result<Vec<u64>> {
        self.shards.iter_mut().map(|s| s.checkpoint()).collect()
    }

    /// Flush buffered WAL records on every shard; returns the total
    /// records made durable.
    pub fn wal_flush(&mut self) -> Result<u64> {
        let mut n = 0;
        for s in &mut self.shards {
            n += s.wal_flush()?;
        }
        Ok(n)
    }

    // ---- statement routing ------------------------------------------------

    /// Parse and execute one SQL statement, routed to the owning shard
    /// (relation DDL/DML broadcasts to all shards). `&mut self` serializes
    /// DDL against everything else — exclusive access is the catalog lock.
    /// Routing decisions come from [`ShardRoutes::plan`], the same
    /// authority the concurrent pipeline's SQL front end uses.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        let (target, effect) = self.routes.plan(&stmt)?;
        let out = match target {
            RouteTarget::One(i) => self.shards[i].execute(sql)?,
            RouteTarget::All => self.broadcast(sql)?,
        };
        if let Some(e) = effect {
            self.routes.apply(e);
        }
        Ok(out)
    }

    /// Apply a relation DDL/DML statement to every shard's replica. All
    /// replicas see the same statements in the same order, so a failure is
    /// deterministic: it strikes shard 0 before any replica mutates, or
    /// all replicas identically.
    fn broadcast(&mut self, sql: &str) -> Result<ExecOutcome> {
        let mut last = None;
        for s in &mut self.shards {
            last = Some(s.execute(sql)?);
        }
        Ok(last.expect("at least one shard"))
    }

    /// [`ShardedDb::execute`] with an idempotent-session stamp: the owning
    /// shard(s) dedupe `(session, seq)` against their per-shard tables
    /// (see [`ChronicleDb::execute_stamped`]). Routing is a pure function
    /// of the SQL text and the catalog, so a byte-identical retry reaches
    /// the same shards and every shard independently recognizes — or
    /// freshly applies — the statement; a broadcast interrupted mid-way is
    /// *repaired* by its retry (already-applied replicas answer from
    /// cache, the rest catch up).
    pub fn execute_stamped(&mut self, sql: &str, session: u64, seq: u64) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        let (target, effect) = self.routes.plan(&stmt)?;
        let out = match target {
            RouteTarget::One(i) => self.shards[i].execute_stamped(sql, session, seq)?,
            RouteTarget::All => {
                let mut last = None;
                for s in &mut self.shards {
                    last = Some(s.execute_stamped(sql, session, seq)?);
                }
                last.expect("at least one shard")
            }
        };
        if let Some(e) = effect {
            self.routes.apply(e);
        }
        Ok(out)
    }

    // ---- leadership term (failover fencing, DESIGN.md §17) ----------------

    /// Current leadership term: the max over all shards (0 until a
    /// promotion has ever happened in this database's history).
    pub fn term(&self) -> u64 {
        self.shards.iter().map(|s| s.term()).max().unwrap_or(0)
    }

    /// Highest sequence number applied for `session` on any shard, or
    /// `None` if the session has never committed here. A stamped
    /// statement lands on exactly one shard, so the max across shards is
    /// the session's global high-water mark.
    pub fn session_last_seq(&self, session: u64) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.session_last_seq(session))
            .max()
    }

    /// Adopt leadership term `t`: every shard logs a flushed `Term` WAL
    /// record before this returns, so the new term is durable — and ships
    /// to any attached follower — ahead of any traffic served under it.
    pub fn begin_term(&mut self, t: u64) -> Result<()> {
        for s in &mut self.shards {
            s.note_term(t)?;
        }
        Ok(())
    }

    // ---- direct append / query (programmatic path) ------------------------

    /// Append rows to a chronicle at chronon `at` on its owning shard,
    /// maintaining that shard's views.
    pub fn append(
        &mut self,
        chronicle: &str,
        at: Chronon,
        rows: &[Vec<Value>],
    ) -> Result<AppendOutcome> {
        let target = self.routes.chronicle_shard(chronicle)?;
        self.shards[target].append(chronicle, at, rows)
    }

    /// All rows of a persistent view (ordered by group key).
    pub fn query_view(&self, name: &str) -> Result<Vec<Tuple>> {
        let target = self.routes.view_shard(name)?;
        self.shards[target].query_view(name)
    }

    /// Point lookup in a persistent view.
    pub fn query_view_key(&self, name: &str, key: &[Value]) -> Result<Option<Tuple>> {
        let target = self.routes.view_shard(name)?;
        self.shards[target].query_view_key(name, key)
    }

    // ---- heavy-light placement (DESIGN.md §16) ----------------------------

    /// Move chronicle group `group` — its chronicles, watermark, and every
    /// view over them — onto shard `to`, overriding the hash placement.
    /// Theorem 4.1 makes the group an independent maintenance unit, so the
    /// move is invisible to view semantics: snapshots before and after are
    /// identical, only *where* maintenance runs changes.
    ///
    /// Durability is two-phase: the target logs a `GroupImport` WAL record
    /// (with the full group slice as payload) and flushes, then the source
    /// logs `GroupEvict` and flushes. A crash between the flushes leaves
    /// the group on both shards; [`ShardedDb::open`] reconciles by
    /// placement epoch, keeping the imported copy — every interrupted move
    /// rolls forward, never half-applies.
    ///
    /// `&mut self` serializes the move against all statements, exactly
    /// like DDL: callers running the concurrent pipeline must shut it down
    /// first (the shutdown barrier is the delta drain).
    pub fn move_group(&mut self, group: &str, to: usize) -> Result<()> {
        if group == DEFAULT_GROUP {
            return Err(ChronicleError::Internal(
                "the implicit `default` group cannot be moved: it is derived state \
                 that may exist on every shard"
                    .into(),
            ));
        }
        if to >= self.shards.len() {
            return Err(ChronicleError::NotFound {
                kind: "shard",
                name: to.to_string(),
            });
        }
        let from = self.routes.group_shard(group)?;
        if from == to {
            return Ok(());
        }
        let image = self.shards[from].export_group(group)?;
        self.shards[to].import_group(&image)?;
        self.shards[from].evict_group(group)?;
        self.routes = Self::rebuild_routes(&self.shards);
        Ok(())
    }

    /// Classify the current append-rate profile into a placement plan: a
    /// group is **heavy** when its decayed append rate exceeds 1.5× the
    /// per-shard average (`2·rate·n > 3·total` in integers — no floats, so
    /// the decision is bit-reproducible). Each heavy group gets a shard to
    /// itself — its current shard when available, else the lowest-index
    /// unclaimed one — with heavies capped at `n−1` so light groups keep
    /// at least one shard. Light groups stranded on a dedicated shard are
    /// evacuated longest-processing-time-first onto the least-loaded
    /// non-dedicated shard; lights elsewhere stay put (no churn). Rates of
    /// zero-traffic groups have fully decayed, so they may share a
    /// dedicated shard — they contribute no appends.
    ///
    /// Deterministic: rates are integers, groups are ranked rate-desc then
    /// name-asc, ties in shard load break toward the lowest index. With
    /// `CHRONICLE_MUTATE=static_placement` the classifier is disabled and
    /// the plan is always empty (the verify.sh mutation check proves the
    /// E18 skew gate notices).
    pub fn plan_rebalance(&self) -> Vec<PlannedMove> {
        if crate::mutate("static_placement") {
            return Vec::new();
        }
        let n = self.shards.len();
        if n < 2 {
            return Vec::new();
        }
        let mut rates = GroupRates::default();
        for s in &self.shards {
            rates.absorb(&s.stats().group_rates);
        }
        let mut ranked: Vec<(String, u64, usize)> = rates
            .iter()
            .filter(|(g, _)| *g != DEFAULT_GROUP)
            .filter_map(|(g, r)| {
                self.routes
                    .group_shard(g)
                    .ok()
                    .map(|shard| (g.to_string(), r, shard))
            })
            .collect();
        let total: u128 = ranked.iter().map(|(_, r, _)| u128::from(*r)).sum();
        if total == 0 {
            return Vec::new();
        }
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut moves = Vec::new();
        let mut claimed: HashSet<usize> = HashSet::new();
        let mut heavy_count = 0usize;
        for (g, r, cur) in &ranked {
            if heavy_count + 1 >= n || 2 * u128::from(*r) * n as u128 <= 3 * total {
                break;
            }
            heavy_count += 1;
            let shard = if claimed.contains(cur) {
                (0..n)
                    .find(|s| !claimed.contains(s))
                    .expect("fewer heavies than shards")
            } else {
                *cur
            };
            claimed.insert(shard);
            if shard != *cur {
                moves.push(PlannedMove {
                    group: g.clone(),
                    from: *cur,
                    to: shard,
                });
            }
        }
        if claimed.is_empty() {
            return Vec::new();
        }
        // Light groups: those stranded on a now-dedicated shard evacuate;
        // the rest stay and their rates form the base load for LPT
        // assignment. `ranked` is already rate-descending — LPT order.
        let mut load = vec![0u128; n];
        let mut evacuees: Vec<(&String, u64, usize)> = Vec::new();
        for (g, r, cur) in ranked.iter().skip(heavy_count) {
            if claimed.contains(cur) {
                evacuees.push((g, *r, *cur));
            } else {
                load[*cur] += u128::from(*r);
            }
        }
        for (g, r, from) in evacuees {
            let to = (0..n)
                .filter(|s| !claimed.contains(s))
                .min_by_key(|&s| (load[s], s))
                .expect("heavies capped at n-1 leave a light shard");
            load[to] += u128::from(r);
            moves.push(PlannedMove {
                group: g.clone(),
                from,
                to,
            });
        }
        moves
    }

    /// Plan ([`ShardedDb::plan_rebalance`]) and apply
    /// ([`ShardedDb::move_group`]) a heavy-light placement pass. Returns
    /// the moves that were applied. View snapshots, checkpoint contents
    /// and per-statement work counters are identical before and after —
    /// placement only changes which shard does the work.
    pub fn rebalance(&mut self) -> Result<Vec<PlannedMove>> {
        let plan = self.plan_rebalance();
        for m in &plan {
            self.move_group(&m.group, m.to)?;
        }
        // The planner owns the rate-decay clock: folding every shard's
        // table at the same instants keeps the tables spanning the same
        // observation interval, so the next pass compares like with like
        // (see `GroupRates::decay`).
        for s in &mut self.shards {
            s.decay_group_rates();
        }
        Ok(plan)
    }

    // ---- pipeline plumbing ------------------------------------------------

    /// Split into per-shard databases plus the routing table (the sharded
    /// pipeline gives each shard its own worker thread).
    pub(crate) fn into_parts(self) -> (Vec<ChronicleDb>, ShardRoutes, bool) {
        (self.shards, self.routes, self.manifest_salvaged)
    }

    /// Reassemble after the pipeline returns the shards.
    pub(crate) fn from_parts(
        shards: Vec<ChronicleDb>,
        routes: ShardRoutes,
        manifest_salvaged: bool,
    ) -> ShardedDb {
        debug_assert_eq!(shards.len(), routes.shards);
        ShardedDb {
            shards,
            routes,
            manifest_salvaged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_group_db(shards: usize) -> ShardedDb {
        let mut db = ShardedDb::new(shards).unwrap();
        db.execute("CREATE GROUP telecom").unwrap();
        db.execute("CREATE GROUP banking").unwrap();
        db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP telecom")
            .unwrap();
        db.execute("CREATE CHRONICLE txns (sn SEQ, acct INT, amount FLOAT) IN GROUP banking")
            .unwrap();
        db.execute(
            "CREATE VIEW call_totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller",
        )
        .unwrap();
        db.execute("CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM txns GROUP BY acct")
            .unwrap();
        db
    }

    #[test]
    fn routes_follow_groups() {
        let db = two_group_db(4);
        let calls_shard = db.shard_of_chronicle("calls").unwrap();
        let txns_shard = db.shard_of_chronicle("txns").unwrap();
        assert_eq!(calls_shard, shard_of_group("telecom", 4));
        assert_eq!(txns_shard, shard_of_group("banking", 4));
        // Views live with their base chronicle.
        assert_eq!(db.routes().view_shard("call_totals").unwrap(), calls_shard);
        assert_eq!(db.routes().view_shard("balances").unwrap(), txns_shard);
        // The owning shard has the view; a different shard does not.
        assert!(db.shard(calls_shard).query_view("call_totals").is_ok());
    }

    #[test]
    fn appends_and_queries_route_transparently() {
        let mut db = two_group_db(3);
        db.execute("APPEND INTO calls VALUES (555, 12.5)").unwrap();
        db.execute("APPEND INTO txns VALUES (1, 100.0)").unwrap();
        db.execute("APPEND INTO txns VALUES (1, -30.0)").unwrap();
        assert_eq!(
            db.query_view_key("balances", &[Value::Int(1)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(70.0)
        );
        assert_eq!(
            db.query_view_key("call_totals", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(12.5)
        );
        // Aggregated stats see both shards' appends.
        assert_eq!(db.stats().appends, 3);
    }

    #[test]
    fn sequence_numbers_are_per_group() {
        let mut db = two_group_db(2);
        let a = db
            .append(
                "calls",
                Chronon(1),
                &[vec![Value::Int(1), Value::Float(1.0)]],
            )
            .unwrap();
        let b = db
            .append(
                "txns",
                Chronon(1),
                &[vec![Value::Int(1), Value::Float(1.0)]],
            )
            .unwrap();
        // Each group starts its own SN sequence regardless of shard count.
        assert_eq!(a.seq, b.seq);
    }

    #[test]
    fn duplicate_names_rejected_across_shards() {
        let mut db = two_group_db(4);
        assert!(db.execute("CREATE GROUP telecom").is_err());
        assert!(db
            .execute("CREATE CHRONICLE calls (sn SEQ, x INT) IN GROUP banking")
            .is_err());
        assert!(db
            .execute(
                "CREATE VIEW balances AS SELECT caller, COUNT(*) AS n FROM calls GROUP BY caller"
            )
            .is_err());
    }

    #[test]
    fn relations_replicate_and_join_views_work_on_any_shard() {
        let mut db = two_group_db(4);
        db.execute(
            "CREATE RELATION customers (acct INT, name STRING, state STRING, PRIMARY KEY (acct))",
        )
        .unwrap();
        db.execute("INSERT INTO customers VALUES (555, 'alice', 'NJ')")
            .unwrap();
        // A join view over a chronicle in either group finds the replica
        // on its own shard.
        db.execute(
            "CREATE VIEW nj_calls AS SELECT caller, COUNT(*) AS n FROM calls \
             JOIN customers ON caller = acct WHERE state = 'NJ' GROUP BY caller",
        )
        .unwrap();
        db.execute(
            "CREATE VIEW nj_txns AS SELECT acct, COUNT(*) AS n FROM txns \
             JOIN customers ON acct = acct WHERE state = 'NJ' GROUP BY acct",
        )
        .unwrap();
        db.execute("APPEND INTO calls VALUES (555, 2.0)").unwrap();
        db.execute("APPEND INTO txns VALUES (555, 10.0)").unwrap();
        assert_eq!(db.query_view("nj_calls").unwrap().len(), 1);
        assert_eq!(db.query_view("nj_txns").unwrap().len(), 1);
        // Relation SELECTs answer from shard 0's replica.
        match db.execute("SELECT * FROM customers").unwrap() {
            ExecOutcome::Rows(rows) => assert_eq!(rows.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_shard_matches_unsharded_semantics() {
        let mut sharded = two_group_db(1);
        let mut plain = ChronicleDb::new();
        for sql in [
            "CREATE GROUP telecom",
            "CREATE GROUP banking",
            "CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP telecom",
            "CREATE CHRONICLE txns (sn SEQ, acct INT, amount FLOAT) IN GROUP banking",
            "CREATE VIEW call_totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller",
            "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM txns GROUP BY acct",
        ] {
            plain.execute(sql).unwrap();
        }
        for sql in [
            "APPEND INTO calls VALUES (555, 12.5)",
            "APPEND INTO txns VALUES (9, 4.0)",
            "APPEND INTO calls VALUES (555, 0.5)",
        ] {
            sharded.execute(sql).unwrap();
            plain.execute(sql).unwrap();
        }
        assert_eq!(sharded.snapshot_views(), {
            let mut v = plain.snapshot_views();
            v.sort();
            v
        });
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(ShardedDb::new(0).is_err());
    }

    /// Total logical state of a sharded db, for before/after-move
    /// comparisons: sorted view snapshots plus every chronicle's window.
    fn logical_state(db: &ShardedDb) -> (Vec<(String, Vec<u8>)>, Vec<(String, Vec<Tuple>)>) {
        let mut windows: Vec<(String, Vec<Tuple>)> = db
            .shards()
            .iter()
            .flat_map(|s| {
                s.catalog()
                    .chronicles()
                    .iter()
                    .map(|c| (c.name().to_string(), c.scan_window().cloned().collect()))
            })
            .collect();
        windows.sort_by(|a, b| a.0.cmp(&b.0));
        (db.snapshot_views(), windows)
    }

    #[test]
    fn moves_relocate_state_without_changing_it() {
        let mut db = two_group_db(4);
        db.execute(
            "CREATE RELATION customers (acct INT, name STRING, state STRING, PRIMARY KEY (acct))",
        )
        .unwrap();
        db.execute("INSERT INTO customers VALUES (555, 'alice', 'NJ')")
            .unwrap();
        db.execute(
            "CREATE VIEW nj_calls AS SELECT caller, COUNT(*) AS n FROM calls \
             JOIN customers ON caller = acct WHERE state = 'NJ' GROUP BY caller",
        )
        .unwrap();
        db.execute("APPEND INTO calls VALUES (555, 12.5)").unwrap();
        db.execute("APPEND INTO txns VALUES (1, 100.0)").unwrap();
        let home = db.routes().group_shard("telecom").unwrap();
        let target = (home + 1) % 4;
        let before = logical_state(&db);
        db.move_group("telecom", target).unwrap();
        // The group, its chronicle and both its views now live on the
        // target; state is bit-identical.
        assert_eq!(db.routes().group_shard("telecom").unwrap(), target);
        assert_eq!(db.shard_of_chronicle("calls").unwrap(), target);
        assert_eq!(db.routes().view_shard("call_totals").unwrap(), target);
        assert_eq!(db.routes().view_shard("nj_calls").unwrap(), target);
        assert!(!db.shard(home).has_group("telecom"));
        assert_eq!(logical_state(&db), before);
        // The moved group keeps working: appends route to the new shard,
        // views keep maintaining, SN sequence continues.
        db.execute("APPEND INTO calls VALUES (555, 0.5)").unwrap();
        assert_eq!(
            db.query_view_key("call_totals", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(13.0)
        );
        // Moving back works too.
        db.move_group("telecom", home).unwrap();
        assert_eq!(db.shard_of_chronicle("calls").unwrap(), home);
        assert_eq!(
            db.query_view_key("nj_calls", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Int(2)
        );
    }

    #[test]
    fn default_group_and_bad_targets_are_refused() {
        let mut db = ShardedDb::new(3).unwrap();
        db.execute("CREATE CHRONICLE c (sn SEQ, x INT)").unwrap();
        assert!(db.move_group("default", 1).is_err());
        db.execute("CREATE GROUP g").unwrap();
        assert!(db.move_group("g", 9).is_err());
        assert!(db.move_group("nope", 0).is_err());
        // A no-op move (already there) succeeds.
        let cur = db.routes().group_shard("g").unwrap();
        db.move_group("g", cur).unwrap();
    }

    #[test]
    fn moved_placement_survives_reopen() {
        let tmp = chronicle_testkit::TempDir::new("sharded-moved-reopen");
        let (before, target) = {
            let mut db = ShardedDb::open(tmp.path(), 3).unwrap();
            db.execute("CREATE GROUP telecom").unwrap();
            db.execute(
                "CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP telecom",
            )
            .unwrap();
            db.execute(
                "CREATE VIEW call_totals AS \
                 SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller",
            )
            .unwrap();
            db.execute("APPEND INTO calls VALUES (555, 2.5)").unwrap();
            let home = db.routes().group_shard("telecom").unwrap();
            let target = (home + 1) % 3;
            db.move_group("telecom", target).unwrap();
            db.execute("APPEND INTO calls VALUES (7, 1.0)").unwrap();
            db.wal_flush().unwrap();
            (logical_state(&db), target)
            // No clean shutdown: recovery must replay the import and the
            // post-move append from the WALs alone.
        };
        let db = ShardedDb::open(tmp.path(), 3).unwrap();
        assert_eq!(db.routes().group_shard("telecom").unwrap(), target);
        assert_eq!(logical_state(&db), before);
        // Checkpoint + reopen keeps the placement too (the epoch and the
        // group slice now come from the checkpoint image, not the WAL).
        {
            let mut db = ShardedDb::open(tmp.path(), 3).unwrap();
            db.checkpoint().unwrap();
        }
        let db = ShardedDb::open(tmp.path(), 3).unwrap();
        assert_eq!(db.routes().group_shard("telecom").unwrap(), target);
        assert_eq!(logical_state(&db), before);
    }

    #[test]
    fn interrupted_move_rolls_forward_on_reopen() {
        let tmp = chronicle_testkit::TempDir::new("sharded-interrupted-move");
        let (before, home, target) = {
            let mut db = ShardedDb::open(tmp.path(), 3).unwrap();
            db.execute("CREATE GROUP telecom").unwrap();
            db.execute(
                "CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP telecom",
            )
            .unwrap();
            db.execute(
                "CREATE VIEW call_totals AS \
                 SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller",
            )
            .unwrap();
            db.execute("APPEND INTO calls VALUES (555, 2.5)").unwrap();
            db.wal_flush().unwrap();
            let home = db.routes().group_shard("telecom").unwrap();
            let target = (home + 1) % 3;
            let state = logical_state(&db);
            // Simulate a crash between the move's two flushes: the target
            // durably imported, the source never logged its eviction.
            let image = db.shards[home].export_group("telecom").unwrap();
            db.shards[target].import_group(&image).unwrap();
            (state, home, target)
        };
        let db = ShardedDb::open(tmp.path(), 3).unwrap();
        // Reconciliation kept the higher-epoch imported copy and evicted
        // the stale source copy — the move completed.
        assert_eq!(db.routes().group_shard("telecom").unwrap(), target);
        assert!(!db.shard(home).has_group("telecom"));
        assert!(db.shard(target).has_group("telecom"));
        assert_eq!(logical_state(&db), before);
        // Exactly one shard owns the group.
        let owners: Vec<usize> = (0..3)
            .filter(|&i| db.shard(i).has_group("telecom"))
            .collect();
        assert_eq!(owners, vec![target]);
    }

    #[test]
    fn classifier_dedicates_heavy_groups_and_balances_the_rest() {
        let mut db = ShardedDb::new(4).unwrap();
        // Six groups; one gets ~10x the traffic of the other five.
        for i in 0..6 {
            db.execute(&format!("CREATE GROUP g{i}")).unwrap();
            db.execute(&format!(
                "CREATE CHRONICLE c{i} (sn SEQ, x INT) IN GROUP g{i}"
            ))
            .unwrap();
        }
        for round in 0..40 {
            for _ in 0..10 {
                db.execute("APPEND INTO c0 VALUES (1)").unwrap();
            }
            let i = 1 + (round % 5);
            db.execute(&format!("APPEND INTO c{i} VALUES (1)")).unwrap();
        }
        let before = logical_state(&db);
        let plan = db.plan_rebalance();
        let heavy_to = plan
            .iter()
            .find(|m| m.group == "g0")
            .map(|m| m.to)
            .unwrap_or_else(|| db.routes().group_shard("g0").unwrap());
        // Whatever shard g0 ends on, the plan leaves it there alone.
        for m in &plan {
            if m.group != "g0" {
                assert_ne!(
                    m.to, heavy_to,
                    "light group planned onto the dedicated shard"
                );
            }
        }
        let applied = db.rebalance().unwrap();
        assert_eq!(applied, plan, "rebalance applies exactly its plan");
        // The dedicated shard now holds only the heavy group (plus at most
        // the zero-rate leftovers, of which there are none here).
        for i in 1..6 {
            let s = db.routes().group_shard(&format!("g{i}")).unwrap();
            assert_ne!(s, heavy_to, "g{i} still shares the dedicated shard");
        }
        assert_eq!(logical_state(&db), before, "placement changed state");
        // A second pass right away is a no-op: the profile is unchanged
        // and every heavy already sits on its dedicated shard.
        assert!(
            db.rebalance().unwrap().is_empty(),
            "rebalance did not converge"
        );
    }

    #[test]
    fn uniform_traffic_plans_no_moves() {
        let mut db = ShardedDb::new(4).unwrap();
        for i in 0..8 {
            db.execute(&format!("CREATE GROUP g{i}")).unwrap();
            db.execute(&format!(
                "CREATE CHRONICLE c{i} (sn SEQ, x INT) IN GROUP g{i}"
            ))
            .unwrap();
        }
        for _ in 0..20 {
            for i in 0..8 {
                db.execute(&format!("APPEND INTO c{i} VALUES (1)")).unwrap();
            }
        }
        assert!(
            db.plan_rebalance().is_empty(),
            "no group exceeds 1.5x the per-shard average under uniform load"
        );
    }

    #[test]
    fn durable_shards_recover_in_parallel() {
        let tmp = chronicle_testkit::TempDir::new("sharded-recovery");
        let snap_before = {
            let mut db = ShardedDb::open(tmp.path(), 3).unwrap();
            db.execute("CREATE GROUP telecom").unwrap();
            db.execute("CREATE GROUP banking").unwrap();
            db.execute(
                "CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP telecom",
            )
            .unwrap();
            db.execute("CREATE CHRONICLE txns (sn SEQ, acct INT, amount FLOAT) IN GROUP banking")
                .unwrap();
            db.execute(
                "CREATE VIEW call_totals AS \
                 SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller",
            )
            .unwrap();
            db.execute("APPEND INTO calls VALUES (555, 2.5)").unwrap();
            db.execute("APPEND INTO txns VALUES (1, 10.0)").unwrap();
            db.checkpoint().unwrap();
            db.execute("APPEND INTO calls VALUES (555, 1.5)").unwrap();
            db.wal_flush().unwrap();
            db.snapshot_views()
            // Dropped without a clean shutdown: recovery must replay the
            // post-checkpoint WAL tail of every shard.
        };
        let db = ShardedDb::open(tmp.path(), 3).unwrap();
        assert_eq!(db.snapshot_views(), snap_before);
        assert_eq!(
            db.query_view_key("call_totals", &[Value::Int(555)])
                .unwrap()
                .unwrap()
                .get(1),
            &Value::Float(4.0)
        );
        // Routes were rebuilt from the recovered catalogs.
        assert_eq!(
            db.shard_of_chronicle("calls").unwrap(),
            shard_of_group("telecom", 3)
        );
        // A different shard count refuses to open the same directory.
        let err = ShardedDb::open(tmp.path(), 2).unwrap_err();
        assert!(matches!(err, ChronicleError::Durability { .. }));
    }
}
