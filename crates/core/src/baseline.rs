//! The three comparators the experiments measure the chronicle model
//! against.
//!
//! * [`NaiveRecomputeView`] — the Proposition 3.1 strategy: store the whole
//!   chronicle and recompute the view from scratch on demand. Maintenance
//!   work is `Ω(|C|)` per refresh; the class is IM-C^k.
//! * [`StoredThetaJoinCount`] — classical incremental maintenance *with*
//!   chronicle access, for the constructions Theorem 4.3 proves cannot be
//!   in CA: a cross product / θ-join between two chronicles. The delta for
//!   an append to one side joins against the entire stored other side, so
//!   per-append work grows with `|C|` — incremental, yet still IM-C^k.
//! * [`ProceduralSummary`] — the hand-written application code the paper
//!   wants to replace: a summary field updated by a custom closure on
//!   every transaction. Fast (the speed ceiling for E11) and exactly as
//!   bug-prone as the Chemical Bank incident the paper cites — there is no
//!   validation, no typing, and no reuse.

use std::collections::HashMap;

use chronicle_algebra::eval::eval_sca;
use chronicle_algebra::{CmpOp, ScaExpr};
use chronicle_store::Catalog;
use chronicle_types::{ChronicleId, Result, Tuple, Value};

/// Store-everything + recompute-on-demand (IM-C^k).
#[derive(Debug, Clone)]
pub struct NaiveRecomputeView {
    expr: ScaExpr,
    /// Chronicle tuples read by the last refresh.
    pub last_read: u64,
}

impl NaiveRecomputeView {
    /// Wrap an SCA expression (the *same* definition the incremental
    /// engine uses, for apples-to-apples comparisons).
    pub fn new(expr: ScaExpr) -> Self {
        NaiveRecomputeView { expr, last_read: 0 }
    }

    /// Recompute the view from the stored chronicle. Fails if retention
    /// evicted needed history — the paper's core objection to this design.
    pub fn refresh(&mut self, catalog: &Catalog) -> Result<Vec<Tuple>> {
        self.last_read = self
            .expr
            .ca()
            .base_chronicles()
            .iter()
            .map(|&c| catalog.chronicle(c).stored_len() as u64)
            .sum();
        eval_sca(catalog, &self.expr)
    }

    /// The wrapped expression.
    pub fn expr(&self) -> &ScaExpr {
        &self.expr
    }
}

/// Incrementally maintained `COUNT(C₁ ⋈_θ C₂)` where the join is a θ-join
/// on given columns — the beyond-CA construction. The count is exact and
/// updated per append, but each append must scan the stored other side.
#[derive(Debug)]
pub struct StoredThetaJoinCount {
    left: ChronicleId,
    right: ChronicleId,
    /// (left column, op, right column).
    cond: (usize, CmpOp, usize),
    /// The maintained count.
    pub count: u64,
    /// Chronicle tuples scanned by maintenance so far.
    pub scanned: u64,
}

impl StoredThetaJoinCount {
    /// A maintained count over `left ⋈_{l θ r} right`.
    pub fn new(left: ChronicleId, right: ChronicleId, cond: (usize, CmpOp, usize)) -> Self {
        StoredThetaJoinCount {
            left,
            right,
            cond,
            count: 0,
            scanned: 0,
        }
    }

    /// Maintain after a batch lands in `chronicle`. Requires the *other*
    /// chronicle to be fully stored; that requirement is the point.
    pub fn on_append(
        &mut self,
        catalog: &Catalog,
        chronicle: ChronicleId,
        tuples: &[Tuple],
    ) -> Result<()> {
        let (lc, op, rc) = self.cond;
        if chronicle == self.left {
            let other = catalog.chronicle(self.right);
            for t in tuples {
                for o in other.scan_all()? {
                    self.scanned += 1;
                    if op.test(t.get(lc).sql_cmp(o.get(rc))?) {
                        self.count += 1;
                    }
                }
            }
        }
        if chronicle == self.right {
            let other = catalog.chronicle(self.left);
            for t in tuples {
                for o in other.scan_all()? {
                    self.scanned += 1;
                    if op.test(o.get(lc).sql_cmp(t.get(rc))?) {
                        self.count += 1;
                    }
                }
            }
        }
        // Self-joins: tuples of this batch also pair with each other; both
        // branches above ran against the *stored* chronicle, which already
        // contains the batch if the caller appended before maintaining. The
        // double-count guard: when left == right, the two branches counted
        // (batch × stored) twice including (batch × batch); correct by
        // halving is wrong in general, so self-joins require left != right.
        debug_assert_ne!(self.left, self.right, "use distinct chronicles");
        Ok(())
    }
}

/// The hand-written update rule of a [`ProceduralSummary`].
pub type UpdateFn = Box<dyn Fn(f64, &Tuple) -> f64 + Send>;

/// Hand-coded summary fields — the status quo the paper describes:
/// *"an application program may define a few summary fields (e.g.,
/// minutes_called, dollar_balance) for each customer, and update these
/// fields whenever a new transaction is processed"*.
pub struct ProceduralSummary {
    state: HashMap<Vec<Value>, f64>,
    key_cols: Vec<usize>,
    update: UpdateFn,
}

impl std::fmt::Debug for ProceduralSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProceduralSummary")
            .field("keys", &self.state.len())
            .finish()
    }
}

impl ProceduralSummary {
    /// A summary field keyed by `key_cols`, folded by `update(old, tuple)`.
    pub fn new(key_cols: Vec<usize>, update: impl Fn(f64, &Tuple) -> f64 + Send + 'static) -> Self {
        ProceduralSummary {
            state: HashMap::new(),
            key_cols,
            update: Box::new(update),
        }
    }

    /// The classic `balance += amount` updater over column `amount_col`.
    pub fn running_sum(key_cols: Vec<usize>, amount_col: usize) -> Self {
        Self::new(key_cols, move |old, t| {
            old + t.get(amount_col).as_float().unwrap_or(0.0)
        })
    }

    /// Process one transaction.
    pub fn on_tuple(&mut self, tuple: &Tuple) {
        let key: Vec<Value> = self
            .key_cols
            .iter()
            .map(|&c| tuple.get(c).clone())
            .collect();
        let entry = self.state.entry(key).or_insert(0.0);
        *entry = (self.update)(*entry, tuple);
    }

    /// The summary field for `key`.
    pub fn get(&self, key: &[Value]) -> f64 {
        self.state.get(key).copied().unwrap_or(0.0)
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True iff no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_algebra::{AggFunc, AggSpec, CaExpr};
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{tuple, AttrType, Attribute, Chronon, Schema, SeqNo};

    fn setup(retention: Retention) -> (Catalog, ChronicleId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("acct", AttrType::Int),
                Attribute::new("amount", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c = cat.create_chronicle("txns", g, cs, retention).unwrap();
        (cat, c)
    }

    #[test]
    fn naive_recompute_matches_and_reads_everything() {
        let (mut cat, c) = setup(Retention::All);
        for i in 1..=10u64 {
            cat.append(c, Chronon(i as i64), &[tuple![SeqNo(i), 1i64, 1.0f64]])
                .unwrap();
        }
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["acct"],
            vec![AggSpec::new(AggFunc::Sum(2), "total")],
        )
        .unwrap();
        let mut naive = NaiveRecomputeView::new(expr);
        let rows = naive.refresh(&cat).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Float(10.0));
        assert_eq!(naive.last_read, 10, "every stored tuple was read");
    }

    #[test]
    fn naive_fails_once_history_evicted() {
        let (mut cat, c) = setup(Retention::LastTuples(2));
        for i in 1..=5u64 {
            cat.append(c, Chronon(i as i64), &[tuple![SeqNo(i), 1i64, 1.0f64]])
                .unwrap();
        }
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["acct"],
            vec![AggSpec::new(AggFunc::Sum(2), "total")],
        )
        .unwrap();
        let mut naive = NaiveRecomputeView::new(expr);
        assert!(naive.refresh(&cat).is_err());
    }

    #[test]
    fn theta_join_count_scans_other_side() {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let mk = |n: &str| {
            Schema::chronicle(
                vec![
                    Attribute::new("sn", AttrType::Seq),
                    Attribute::new("v", AttrType::Int),
                ],
                n,
            )
        };
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("v", AttrType::Int),
            ],
            "sn",
        )
        .unwrap();
        let _ = mk;
        let a = cat
            .create_chronicle("a", g, cs.clone(), Retention::All)
            .unwrap();
        let b = cat.create_chronicle("b", g, cs, Retention::All).unwrap();
        let mut joined = StoredThetaJoinCount::new(a, b, (1, CmpOp::Lt, 1));
        // Interleave appends; maintain after each.
        let mut seq = 0u64;
        for i in 0..4i64 {
            seq += 1;
            let ta = vec![tuple![SeqNo(seq), i]];
            cat.append_at(a, SeqNo(seq), Chronon(seq as i64), &ta)
                .unwrap();
            joined.on_append(&cat, a, &ta).unwrap();
            seq += 1;
            let tb = vec![tuple![SeqNo(seq), i + 1]];
            cat.append_at(b, SeqNo(seq), Chronon(seq as i64), &tb)
                .unwrap();
            joined.on_append(&cat, b, &tb).unwrap();
        }
        // Oracle: pairs (x from a, y from b) with x < y;
        // a = {0,1,2,3}, b = {1,2,3,4}.
        let expected = (0..4)
            .flat_map(|x| (1..5).map(move |y| (x, y)))
            .filter(|(x, y)| x < y)
            .count() as u64;
        assert_eq!(joined.count, expected);
        // Work grows with the stored sizes: last append scanned |a| = 4.
        assert!(joined.scanned >= 4 + 3 + 3 + 2 + 2);
    }

    #[test]
    fn theta_join_requires_stored_chronicles() {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("v", AttrType::Int),
            ],
            "sn",
        )
        .unwrap();
        let a = cat
            .create_chronicle("a", g, cs.clone(), Retention::None)
            .unwrap();
        let b = cat.create_chronicle("b", g, cs, Retention::None).unwrap();
        let ta = vec![tuple![SeqNo(1), 5i64]];
        cat.append_at(a, SeqNo(1), Chronon(1), &ta).unwrap();
        let tb = vec![tuple![SeqNo(2), 9i64]];
        cat.append_at(b, SeqNo(2), Chronon(2), &tb).unwrap();
        let mut joined = StoredThetaJoinCount::new(a, b, (1, CmpOp::Lt, 1));
        // Appending to b needs a's history, which isn't stored.
        assert!(joined.on_append(&cat, b, &tb).is_err());
    }

    #[test]
    fn procedural_summary_running_sum() {
        let mut p = ProceduralSummary::running_sum(vec![1], 2);
        p.on_tuple(&tuple![SeqNo(1), 7i64, 10.5f64]);
        p.on_tuple(&tuple![SeqNo(2), 7i64, 2.0f64]);
        p.on_tuple(&tuple![SeqNo(3), 8i64, 1.0f64]);
        assert_eq!(p.get(&[Value::Int(7)]), 12.5);
        assert_eq!(p.get(&[Value::Int(8)]), 1.0);
        assert_eq!(p.get(&[Value::Int(9)]), 0.0);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn procedural_custom_closure() {
        // A deliberately "bug-prone" custom rule: fee of 1.0 per txn.
        let mut p = ProceduralSummary::new(vec![1], |old, t| {
            old + t.get(2).as_float().unwrap_or(0.0) - 1.0
        });
        p.on_tuple(&tuple![SeqNo(1), 7i64, 10.0f64]);
        assert_eq!(p.get(&[Value::Int(7)]), 9.0);
    }
}
