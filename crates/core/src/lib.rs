//! `chronicle-db`: the chronicle database system facade.
//!
//! [`ChronicleDb`] realizes Definition 2.1's quadruple *(C, R, L, V)*:
//! chronicles and relations live in a [`chronicle_store::Catalog`], the
//! language `L` is SCA (built directly or through the SQL front-end), and
//! the persistent views are driven by a [`chronicle_views::Maintainer`] on
//! every append.
//!
//! The crate also contains:
//!
//! * [`baseline`] — the three comparators every experiment measures
//!   against: naive recomputation (IM-C^k), classical IVM *with* chronicle
//!   access, and hand-coded procedural summary fields (what the paper says
//!   applications do today),
//! * [`stats`] — append/maintenance accounting,
//! * [`pipeline`] — a concurrent append pipeline (producers feed a
//!   maintenance thread over `std::sync::mpsc` channels), used by the throughput
//!   experiment E11,
//! * [`shard`] — [`ShardedDb`]: the catalog hash-partitioned by chronicle
//!   group into independent maintenance shards (Thm 4.1 makes groups the
//!   natural unit), each with its own maintenance loop, WAL stream, and
//!   checkpoints; [`pipeline::ShardedPipeline`] gives every shard its own
//!   worker thread so group commits and maintenance overlap across shards.
//!
//! Databases opened at a path ([`ChronicleDb::open`]) are durable: every
//! mutation is written to a segmented write-ahead log, and
//! [`ChronicleDb::checkpoint`] persists the views so the log can be
//! truncated — durable state is `O(|V| + tail)`, never the chronicle
//! itself. See the `chronicle_durability` crate for the format.

#![warn(missing_docs)]

/// Test-only mutation backdoor for the verify.sh mutation checks: prove a
/// gate notices when a protocol step is silently disabled (e.g. the
/// salvage report dropped, or the heavy-light placement classifier turned
/// off).
pub(crate) fn mutate(which: &str) -> bool {
    std::env::var("CHRONICLE_MUTATE").is_ok_and(|v| v == which)
}

pub mod baseline;
mod db;
pub mod follower;
pub mod pipeline;
pub mod session;
pub mod shard;
pub mod stats;

pub use chronicle_durability::{
    DurabilityOptions, LsnRange, RecoveryPolicy, SalvageReport, ScrubReport,
};
pub use db::{AppendOutcome, ChronicleDb, ExecOutcome};
pub use follower::FollowerDb;
pub use session::{CachedOutcome, SessionTable, MAX_SESSIONS};
pub use shard::{shard_of_group, PlannedMove, ShardRoutes, ShardedDb};
pub use stats::{DbStats, LatencySample};
