//! Append and maintenance accounting.

use chronicle_algebra::WorkCounter;
use chronicle_views::MaintenanceReport;

/// Running statistics for a [`crate::ChronicleDb`].
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    /// Number of append batches processed.
    pub appends: u64,
    /// Total tuples appended.
    pub tuples_appended: u64,
    /// Total nanoseconds spent in maintenance.
    pub maintenance_nanos: u64,
    /// Worst single-append maintenance time.
    pub max_maintenance_nanos: u64,
    /// Total views maintained (sum over appends of affected views).
    pub views_maintained: u64,
    /// Views skipped by the router's guard filter.
    pub skipped_by_guard: u64,
    /// Views skipped by the router's interval filter.
    pub skipped_by_interval: u64,
    /// Aggregate work counters across all maintenance.
    pub work: WorkCounter,
    /// A bounded sample of per-append maintenance latencies (ns) for
    /// percentile reporting; reservoir of the most recent 4096.
    latencies: Vec<u64>,
}

impl DbStats {
    /// Fold one append's report into the stats.
    pub fn record_append(&mut self, tuples: usize, report: &MaintenanceReport) {
        self.appends += 1;
        self.tuples_appended += tuples as u64;
        self.maintenance_nanos += report.elapsed_nanos;
        self.max_maintenance_nanos = self.max_maintenance_nanos.max(report.elapsed_nanos);
        self.views_maintained += report.views.len() as u64;
        self.skipped_by_guard += report.routing.skipped_guard as u64;
        self.skipped_by_interval += report.routing.skipped_interval as u64;
        self.work.absorb(report.total_work);
        if self.latencies.len() == 4096 {
            // Overwrite cyclically: cheap recency-biased sample.
            let idx = (self.appends % 4096) as usize;
            self.latencies[idx] = report.elapsed_nanos;
        } else {
            self.latencies.push(report.elapsed_nanos);
        }
    }

    /// Mean maintenance time per append, nanoseconds.
    pub fn mean_maintenance_nanos(&self) -> f64 {
        if self.appends == 0 {
            0.0
        } else {
            self.maintenance_nanos as f64 / self.appends as f64
        }
    }

    /// Latency percentile (e.g. `0.5`, `0.99`) over the retained sample.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_views::RoutingDecision;

    fn report(nanos: u64) -> MaintenanceReport {
        MaintenanceReport {
            routing: RoutingDecision {
                candidates: 2,
                skipped_interval: 1,
                skipped_guard: 1,
                selected: vec![],
            },
            views: vec![],
            periodic_maintained: 0,
            total_work: WorkCounter::default(),
            elapsed_nanos: nanos,
        }
    }

    #[test]
    fn records_and_averages() {
        let mut s = DbStats::default();
        s.record_append(3, &report(100));
        s.record_append(1, &report(300));
        assert_eq!(s.appends, 2);
        assert_eq!(s.tuples_appended, 4);
        assert_eq!(s.maintenance_nanos, 400);
        assert_eq!(s.max_maintenance_nanos, 300);
        assert_eq!(s.skipped_by_guard, 2);
        assert_eq!(s.skipped_by_interval, 2);
        assert!((s.mean_maintenance_nanos() - 200.0).abs() < f64::EPSILON);
    }

    #[test]
    fn percentiles() {
        let mut s = DbStats::default();
        for i in 1..=100u64 {
            s.record_append(1, &report(i));
        }
        assert_eq!(s.latency_percentile(0.0), 1);
        assert_eq!(s.latency_percentile(1.0), 100);
        let p50 = s.latency_percentile(0.5);
        assert!((49..=52).contains(&p50));
        assert_eq!(DbStats::default().latency_percentile(0.5), 0);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let mut s = DbStats::default();
        for i in 0..10_000u64 {
            s.record_append(1, &report(i));
        }
        assert!(s.latencies.len() <= 4096);
        assert_eq!(s.appends, 10_000);
    }
}
