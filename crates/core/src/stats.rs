//! Append and maintenance accounting.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use chronicle_algebra::WorkCounter;
use chronicle_durability::SalvageReport;
use chronicle_testkit::{Rng, SeedableRng, SmallRng};
use chronicle_views::MaintenanceReport;

/// Size of the retained latency sample.
const SAMPLE: usize = 4096;

/// Seed for the reservoir's replacement draws. Fixed, so a run's retained
/// sample is reproducible; statistical guarantees need the draws to be
/// uncorrelated with the data, not unpredictable.
const RESERVOIR_SEED: u64 = 0x1a7e_5a3e_0b5e_7a11;

/// A bounded reservoir of latency observations with cached percentiles.
///
/// This is the lazy-percentile plumbing behind
/// [`DbStats::latency_percentile`], factored out so other subsystems
/// (network request latency, replication apply latency) reuse the same
/// reservoir + cached-sort discipline instead of growing their own. Once
/// `SAMPLE` observations are retained, observation number `n` replaces a
/// uniformly random slot with probability `SAMPLE/n` (Algorithm R), so
/// every observation of the run — not just the first or the most recent
/// `SAMPLE` — is equally likely to be in the retained sample and long
/// runs stay representative end to end.
#[derive(Debug, Clone)]
pub struct LatencySample {
    /// Reservoir of retained observations (ns), at most `SAMPLE` of them.
    samples: Vec<u64>,
    /// Total observations ever recorded (drives replacement probability).
    seen: u64,
    /// Seeded source of replacement draws (deterministic per run).
    rng: SmallRng,
    /// Lazily sorted copy of `samples` for percentile queries; rebuilt
    /// only when a query arrives after new data (`stale`).
    sorted: RefCell<Vec<u64>>,
    stale: Cell<bool>,
}

impl Default for LatencySample {
    fn default() -> Self {
        LatencySample {
            samples: Vec::new(),
            seen: 0,
            rng: SmallRng::seed_from_u64(RESERVOIR_SEED),
            sorted: RefCell::new(Vec::new()),
            stale: Cell::new(false),
        }
    }
}

impl LatencySample {
    /// Record one observation in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        self.seen += 1;
        if self.samples.len() < SAMPLE {
            self.samples.push(nanos);
        } else {
            // Algorithm R: keep with probability SAMPLE/seen, evicting a
            // uniformly random resident so the retained set stays an
            // unbiased sample of everything seen so far.
            let j = self.rng.next_u64() % self.seen;
            if (j as usize) < SAMPLE {
                self.samples[j as usize] = nanos;
            }
        }
        self.stale.set(true);
    }

    /// Fold another reservoir in: the other side's retained observations
    /// are re-offered to this reservoir one by one (so a full receiver
    /// still admits them with the usual replacement probability instead
    /// of dropping them wholesale), and its unretained population is
    /// folded into the observation count.
    pub fn absorb(&mut self, other: &LatencySample) {
        for &nanos in &other.samples {
            self.record(nanos);
        }
        self.seen += other.seen - other.samples.len() as u64;
        self.stale.set(true);
    }

    /// Latency percentile (e.g. `0.5`, `0.99`) over the retained sample;
    /// `0` when empty. The sorted view is cached, so repeated queries
    /// between observations cost O(1).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if self.stale.get() {
            let mut v = self.sorted.borrow_mut();
            v.clear();
            v.extend_from_slice(&self.samples);
            v.sort_unstable();
            self.stale.set(false);
        }
        let v = self.sorted.borrow();
        let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }

    /// Observations currently retained (at most the ring size).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Decayed per-group append rates — the observation side of heavy-light
/// placement (DESIGN.md §16).
///
/// Each group carries an integer pair `(decayed, current)`: appends land
/// in `current`, and [`GroupRates::decay`] folds the table as
/// `decayed = decayed/2 + current; current = 0` — an exponential moving
/// sum in pure integer arithmetic, so the classifier's inputs (and
/// therefore every placement decision) are bit-reproducible across runs
/// and platforms. A group's rate is `decayed + current`: recent traffic
/// dominates, dead groups decay to zero and are dropped from the table.
///
/// The fold is driven by the placement planner
/// ([`crate::ShardedDb::rebalance`] folds every shard's table after each
/// pass), **not** by per-shard record counts. This is load-bearing for
/// cross-shard comparability: if each shard folded on its own traffic
/// cadence, a busy shard's table would plateau at a couple of windows
/// while an idle shard's kept accumulating unfolded history, inflating
/// the idle shard's share of the absorbed total and deflating exactly
/// the heavy groups the classifier must find. Folding everyone at the
/// same planning instants keeps every table spanning the same
/// observation interval, with half-life one planning interval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupRates {
    /// Group name → `(decayed, current)` tuple counters. A `BTreeMap`, so
    /// iteration order — and everything downstream of it — is
    /// deterministic.
    counts: BTreeMap<String, (u64, u64)>,
}

impl GroupRates {
    /// Record one append batch of `tuples` rows against `group`.
    pub fn record(&mut self, group: &str, tuples: u64) {
        match self.counts.get_mut(group) {
            Some(e) => e.1 += tuples,
            None => {
                self.counts.insert(group.to_string(), (0, tuples));
            }
        }
    }

    /// Halve every decayed counter and roll the current window in,
    /// dropping groups whose rate has decayed to zero. Called by the
    /// placement planner after every pass (see the type docs for why the
    /// planner, not the recorder, owns the decay clock).
    pub fn decay(&mut self) {
        self.counts.retain(|_, e| {
            e.0 = e.0 / 2 + e.1;
            e.1 = 0;
            e.0 > 0
        });
    }

    /// The decayed append rate of `group` (0 if never seen or fully
    /// decayed).
    pub fn rate(&self, group: &str) -> u64 {
        self.counts.get(group).map_or(0, |&(d, c)| d + c)
    }

    /// Every tracked group with its current rate, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(g, &(d, c))| (g.as_str(), d + c))
    }

    /// Sum of all tracked rates.
    pub fn total(&self) -> u64 {
        self.counts.values().map(|&(d, c)| d + c).sum()
    }

    /// Drop a group's counters entirely (it moved to another shard; the
    /// target rebuilds its rate from the traffic it actually receives).
    pub fn forget(&mut self, group: &str) {
        self.counts.remove(group);
    }

    /// Fold another table in (cross-shard aggregation): counters add
    /// componentwise, so the merged rate of a group is the sum of its
    /// per-shard rates.
    pub fn absorb(&mut self, other: &GroupRates) {
        for (g, &(d, c)) in &other.counts {
            let e = self.counts.entry(g.clone()).or_insert((0, 0));
            e.0 += d;
            e.1 += c;
        }
    }
}

/// Running statistics for a [`crate::ChronicleDb`].
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    /// Number of append batches processed.
    pub appends: u64,
    /// Total tuples appended.
    pub tuples_appended: u64,
    /// Relation mutations (insert/update/delete) that drove view
    /// maintenance.
    pub relation_changes: u64,
    /// Total nanoseconds spent in maintenance.
    pub maintenance_nanos: u64,
    /// Worst single-append maintenance time.
    pub max_maintenance_nanos: u64,
    /// Total views maintained (sum over appends of affected views).
    pub views_maintained: u64,
    /// Views skipped by the router's guard filter.
    pub skipped_by_guard: u64,
    /// Views skipped by the router's interval filter.
    pub skipped_by_interval: u64,
    /// Views maintained through the vectorized columnar kernels (subset of
    /// `views_maintained`; zero under `CHRONICLE_MUTATE=scalar_fallback`
    /// or `BatchMode::Scalar`).
    pub vectorized_views: u64,
    /// Aggregate work counters across all maintenance.
    pub work: WorkCounter,
    /// Decayed per-group append rates — what the heavy-light placement
    /// classifier reads (DESIGN.md §16).
    pub group_rates: GroupRates,
    /// Records written to the write-ahead log.
    pub wal_records: u64,
    /// Bytes written to the write-ahead log.
    pub wal_bytes: u64,
    /// WAL flushes issued (group commit coalesces many records into one).
    pub wal_flushes: u64,
    /// Checkpoints taken (manual and automatic).
    pub checkpoints: u64,
    /// LSN of the checkpoint recovery started from, if the database was
    /// opened from disk and a checkpoint existed.
    pub recovery_checkpoint_lsn: Option<u64>,
    /// WAL-tail records replayed during the most recent recovery.
    pub recovery_replayed_records: u64,
    /// Invalid checkpoint files skipped (newest-first) during recovery.
    pub recovery_skipped_checkpoints: u64,
    /// What the most recent open salvaged; `Some` iff the database was
    /// opened with `RecoveryPolicy::Salvage` (aggregated across shards
    /// for a sharded database).
    pub salvage: Option<SalvageReport>,
    /// Network sessions accepted by a wire-protocol server fronting this
    /// database (client and follower connections alike).
    pub net_sessions: u64,
    /// Wire frames received from peers.
    pub net_frames_in: u64,
    /// Wire frames sent to peers.
    pub net_frames_out: u64,
    /// WAL bytes shipped to followers (segment payload, not framing).
    pub net_shipped_bytes: u64,
    /// Network requests served (SQL round trips over the wire).
    pub net_requests: u64,
    /// Retried statements answered from the idempotent-session dedupe
    /// cache instead of re-executing (DESIGN.md §17).
    pub session_replays: u64,
    /// Requests refused with `Overloaded` by the server's bounded
    /// admission queue instead of blocking the session thread.
    pub overload_rejections: u64,
    /// On a follower: the highest WAL lsn applied (max across shards).
    /// `None` on a leader or an embedded database.
    pub follower_applied_lsn: Option<u64>,
    /// On a follower: worst per-shard gap between the leader's last
    /// reported durable lsn and this follower's applied lsn. `None` when
    /// no leader heartbeat has been seen.
    pub replication_lag: Option<u64>,
    /// Per-append maintenance latencies (see [`LatencySample`]).
    latencies: LatencySample,
    /// Per-request network service latencies (see [`LatencySample`]).
    net_latencies: LatencySample,
}

impl DbStats {
    /// Fold one append's report into the stats. `group` is the chronicle
    /// group the batch landed in; its decayed rate counter feeds the
    /// heavy-light placement classifier.
    pub fn record_append(&mut self, group: &str, tuples: usize, report: &MaintenanceReport) {
        self.appends += 1;
        self.tuples_appended += tuples as u64;
        self.group_rates.record(group, tuples as u64);
        self.maintenance_nanos += report.elapsed_nanos;
        self.max_maintenance_nanos = self.max_maintenance_nanos.max(report.elapsed_nanos);
        self.views_maintained += report.views.len() as u64;
        self.skipped_by_guard += report.routing.skipped_guard as u64;
        self.skipped_by_interval += report.routing.skipped_interval as u64;
        self.vectorized_views += report.vectorized_views as u64;
        self.work.absorb(report.total_work);
        self.latencies.record(report.elapsed_nanos);
    }

    /// Record one served network request (SQL round trip) and its
    /// service latency.
    pub fn record_net_request(&mut self, nanos: u64) {
        self.net_requests += 1;
        self.net_latencies.record(nanos);
    }

    /// Fold one relation mutation's maintenance report into the stats.
    /// Relation changes share the work counters with appends (Theorem 4.1
    /// accounting is uniform over signed deltas) but are tallied — and
    /// latency-sampled — separately from append batches.
    pub fn record_relation_change(&mut self, report: &MaintenanceReport) {
        self.relation_changes += 1;
        self.maintenance_nanos += report.elapsed_nanos;
        self.max_maintenance_nanos = self.max_maintenance_nanos.max(report.elapsed_nanos);
        self.views_maintained += report.views.len() as u64;
        self.work.absorb(report.total_work);
    }

    /// Fold another database's statistics into this one — the cross-shard
    /// aggregation used by `ShardedDb::stats`. Counters add, maxima take
    /// the max, and the latency reservoirs merge (every shard's retained
    /// observations are re-offered, so a full receiver keeps admitting
    /// them proportionally instead of dropping late shards wholesale), so
    /// percentiles over the merged snapshot draw on the retained
    /// observations of every shard. The
    /// merged value is a read-only snapshot: feeding it further
    /// `record_append` calls would interleave with the foreign samples.
    pub fn absorb(&mut self, other: &DbStats) {
        self.appends += other.appends;
        self.tuples_appended += other.tuples_appended;
        self.relation_changes += other.relation_changes;
        self.maintenance_nanos += other.maintenance_nanos;
        self.max_maintenance_nanos = self.max_maintenance_nanos.max(other.max_maintenance_nanos);
        self.views_maintained += other.views_maintained;
        self.skipped_by_guard += other.skipped_by_guard;
        self.skipped_by_interval += other.skipped_by_interval;
        self.vectorized_views += other.vectorized_views;
        self.work.absorb(other.work);
        self.group_rates.absorb(&other.group_rates);
        self.wal_records += other.wal_records;
        self.wal_bytes += other.wal_bytes;
        self.wal_flushes += other.wal_flushes;
        self.checkpoints += other.checkpoints;
        self.recovery_checkpoint_lsn =
            match (self.recovery_checkpoint_lsn, other.recovery_checkpoint_lsn) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        self.recovery_replayed_records += other.recovery_replayed_records;
        self.recovery_skipped_checkpoints += other.recovery_skipped_checkpoints;
        match (self.salvage.as_mut(), other.salvage.as_ref()) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.salvage = Some(theirs.clone()),
            _ => {}
        }
        self.net_sessions += other.net_sessions;
        self.net_frames_in += other.net_frames_in;
        self.net_frames_out += other.net_frames_out;
        self.net_shipped_bytes += other.net_shipped_bytes;
        self.net_requests += other.net_requests;
        self.session_replays += other.session_replays;
        self.overload_rejections += other.overload_rejections;
        self.follower_applied_lsn = match (self.follower_applied_lsn, other.follower_applied_lsn) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.replication_lag = match (self.replication_lag, other.replication_lag) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.latencies.absorb(&other.latencies);
        self.net_latencies.absorb(&other.net_latencies);
    }

    /// Mean maintenance time per append, nanoseconds.
    pub fn mean_maintenance_nanos(&self) -> f64 {
        if self.appends == 0 {
            0.0
        } else {
            self.maintenance_nanos as f64 / self.appends as f64
        }
    }

    /// Maintenance-latency percentile (e.g. `0.5`, `0.99`) over the
    /// retained per-append sample.
    ///
    /// The sorted view is cached: repeated percentile queries between
    /// appends cost O(1) instead of re-sorting the sample every call.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        self.latencies.percentile(q)
    }

    /// Network request-latency percentile over the retained sample
    /// recorded by [`DbStats::record_net_request`].
    pub fn net_latency_percentile(&self, q: f64) -> u64 {
        self.net_latencies.percentile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_views::RoutingDecision;

    fn report(nanos: u64) -> MaintenanceReport {
        MaintenanceReport {
            routing: RoutingDecision {
                candidates: 2,
                skipped_interval: 1,
                skipped_guard: 1,
                selected: vec![],
            },
            views: vec![],
            periodic_maintained: 0,
            vectorized_views: 0,
            total_work: WorkCounter::default(),
            elapsed_nanos: nanos,
        }
    }

    #[test]
    fn records_and_averages() {
        let mut s = DbStats::default();
        s.record_append("g", 3, &report(100));
        s.record_append("g", 1, &report(300));
        assert_eq!(s.appends, 2);
        assert_eq!(s.tuples_appended, 4);
        assert_eq!(s.maintenance_nanos, 400);
        assert_eq!(s.max_maintenance_nanos, 300);
        assert_eq!(s.skipped_by_guard, 2);
        assert_eq!(s.skipped_by_interval, 2);
        assert!((s.mean_maintenance_nanos() - 200.0).abs() < f64::EPSILON);
    }

    #[test]
    fn percentiles() {
        let mut s = DbStats::default();
        for i in 1..=100u64 {
            s.record_append("g", 1, &report(i));
        }
        assert_eq!(s.latency_percentile(0.0), 1);
        assert_eq!(s.latency_percentile(1.0), 100);
        let p50 = s.latency_percentile(0.5);
        assert!((49..=52).contains(&p50));
        assert_eq!(DbStats::default().latency_percentile(0.5), 0);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let mut s = DbStats::default();
        for i in 0..10_000u64 {
            s.record_append("g", 1, &report(i));
        }
        assert!(s.latencies.len() <= SAMPLE);
        assert_eq!(s.appends, 10_000);
    }

    #[test]
    fn percentile_cache_tracks_new_data() {
        let mut s = DbStats::default();
        s.record_append("g", 1, &report(10));
        assert_eq!(s.latency_percentile(1.0), 10);
        // A second query with no new data must not change the answer…
        assert_eq!(s.latency_percentile(1.0), 10);
        // …and new data must invalidate the cache.
        s.record_append("g", 1, &report(999));
        assert_eq!(s.latency_percentile(1.0), 999);
    }

    #[test]
    fn absorb_merges_counters_and_samples() {
        let mut a = DbStats::default();
        let mut b = DbStats::default();
        a.record_append("g", 2, &report(100));
        b.record_append("g", 3, &report(500));
        b.record_append("g", 1, &report(300));
        b.wal_records = 7;
        b.recovery_checkpoint_lsn = Some(42);
        a.absorb(&b);
        assert_eq!(a.appends, 3);
        assert_eq!(a.tuples_appended, 6);
        assert_eq!(a.max_maintenance_nanos, 500);
        assert_eq!(a.wal_records, 7);
        assert_eq!(a.recovery_checkpoint_lsn, Some(42));
        // Percentiles see the union of both samples.
        assert_eq!(a.latency_percentile(0.0), 100);
        assert_eq!(a.latency_percentile(1.0), 500);
    }

    #[test]
    fn absorb_caps_merged_sample() {
        let mut a = DbStats::default();
        let mut b = DbStats::default();
        for i in 0..SAMPLE as u64 {
            a.record_append("g", 1, &report(i));
            b.record_append("g", 1, &report(i));
        }
        a.absorb(&b);
        assert_eq!(a.appends, 2 * SAMPLE as u64);
        assert!(a.latencies.len() <= SAMPLE);
    }

    #[test]
    fn reservoir_tracks_a_mid_run_distribution_shift() {
        // Shift the latency distribution mid-run: 3×SAMPLE fast appends
        // (~1µs) followed by 3×SAMPLE slow ones (~1ms). A most-recent
        // ring would retain only the slow tail; the old stop-once-full
        // merge retained only the fast head. The reservoir keeps both
        // regimes in proportion, deterministically (seeded draws).
        let mut s = DbStats::default();
        for _ in 0..3 * SAMPLE {
            s.record_append("g", 1, &report(1_000));
        }
        for _ in 0..3 * SAMPLE {
            s.record_append("g", 1, &report(1_000_000));
        }
        assert!(s.latencies.len() <= SAMPLE);
        assert_eq!(
            s.latency_percentile(0.05),
            1_000,
            "early (fast) regime must still be sampled"
        );
        assert_eq!(
            s.latency_percentile(0.95),
            1_000_000,
            "late (slow) regime must be sampled too"
        );
        let slow = s
            .latencies
            .samples
            .iter()
            .filter(|&&v| v == 1_000_000)
            .count();
        let frac = slow as f64 / s.latencies.len() as f64;
        assert!(
            (0.40..=0.60).contains(&frac),
            "half the observations were slow, but the reservoir retains {frac:.2}"
        );
    }

    #[test]
    fn absorb_admits_a_full_peer_instead_of_dropping_it() {
        // Regression for the stop-once-full merge: once `a` was full,
        // `b`'s observations vanished from the merged percentiles.
        let mut a = DbStats::default();
        let mut b = DbStats::default();
        for _ in 0..SAMPLE as u64 {
            a.record_append("g", 1, &report(1_000));
            b.record_append("g", 1, &report(1_000_000));
        }
        a.absorb(&b);
        assert!(a.latencies.len() <= SAMPLE);
        assert_eq!(
            a.latency_percentile(0.95),
            1_000_000,
            "the absorbed shard's observations must survive the merge"
        );
        let slow = a
            .latencies
            .samples
            .iter()
            .filter(|&&v| v == 1_000_000)
            .count();
        let frac = slow as f64 / a.latencies.len() as f64;
        assert!(
            (0.40..=0.60).contains(&frac),
            "both shards contributed equally, but the merge retains {frac:.2}"
        );
    }

    #[test]
    fn net_requests_have_their_own_percentiles() {
        let mut s = DbStats::default();
        s.record_append("g", 1, &report(5));
        for i in 1..=100u64 {
            s.record_net_request(i * 1000);
        }
        assert_eq!(s.net_requests, 100);
        assert_eq!(s.net_latency_percentile(0.0), 1000);
        assert_eq!(s.net_latency_percentile(1.0), 100_000);
        // The maintenance sample is untouched by network traffic.
        assert_eq!(s.latency_percentile(1.0), 5);
    }

    #[test]
    fn group_rates_track_decay_and_dominance() {
        let mut r = GroupRates::default();
        // One planning interval: hot gets 3 tuples per batch, cold gets 1
        // every 8th batch.
        for i in 0..1024u64 {
            r.record("hot", 3);
            if i % 8 == 0 {
                r.record("cold", 1);
            }
        }
        assert!(r.rate("hot") > r.rate("cold") * 10);
        assert_eq!(r.rate("absent"), 0);
        assert_eq!(r.total(), r.rate("hot") + r.rate("cold"));
        let hot_before = r.rate("hot");
        // Planner-driven decay: intervals of silence on `hot` halve it
        // towards zero and eventually drop it from the table entirely.
        // (The first fold only rolls `current` into `decayed`, so four
        // intervals shrink the rate by 2³.)
        for _ in 0..4 {
            r.decay();
            for _ in 0..64 {
                r.record("cold", 1);
            }
        }
        assert!(r.rate("hot") < hot_before / 4);
        for _ in 0..20 {
            r.decay();
            r.record("cold", 1);
        }
        assert_eq!(r.rate("hot"), 0, "a dead group's rate fully decays");
        assert!(
            r.iter().all(|(g, _)| g == "cold"),
            "fully decayed groups leave the table"
        );
    }

    #[test]
    fn group_rates_absorb_sums_per_shard_rates() {
        let mut a = GroupRates::default();
        let mut b = GroupRates::default();
        a.record("g0", 5);
        a.record("shared", 2);
        b.record("shared", 7);
        b.record("g1", 1);
        let (ra, rb) = (a.clone(), b.clone());
        a.absorb(&b);
        assert_eq!(a.rate("shared"), ra.rate("shared") + rb.rate("shared"));
        assert_eq!(a.rate("g0"), 5);
        assert_eq!(a.rate("g1"), 1);
        assert_eq!(a.total(), ra.total() + rb.total());
        // Determinism: iteration is name-ordered regardless of insertion.
        let names: Vec<&str> = a.iter().map(|(g, _)| g).collect();
        assert_eq!(names, vec!["g0", "g1", "shared"]);
    }

    #[test]
    fn appends_feed_the_group_rate_table() {
        let mut s = DbStats::default();
        s.record_append("telecom", 3, &report(100));
        s.record_append("telecom", 2, &report(100));
        s.record_append("banking", 1, &report(100));
        assert_eq!(s.group_rates.rate("telecom"), 5);
        assert_eq!(s.group_rates.rate("banking"), 1);
        let mut t = DbStats::default();
        t.record_append("banking", 4, &report(50));
        s.absorb(&t);
        assert_eq!(s.group_rates.rate("banking"), 5, "absorb merges rates");
    }

    #[test]
    fn absorb_merges_net_counters() {
        let mut a = DbStats::default();
        let mut b = DbStats::default();
        a.net_sessions = 2;
        a.net_frames_in = 10;
        a.replication_lag = Some(3);
        b.net_sessions = 1;
        b.net_frames_out = 7;
        b.net_shipped_bytes = 4096;
        b.follower_applied_lsn = Some(41);
        b.replication_lag = Some(9);
        b.record_net_request(500);
        a.absorb(&b);
        assert_eq!(a.net_sessions, 3);
        assert_eq!(a.net_frames_in, 10);
        assert_eq!(a.net_frames_out, 7);
        assert_eq!(a.net_shipped_bytes, 4096);
        assert_eq!(a.net_requests, 1);
        assert_eq!(a.follower_applied_lsn, Some(41));
        assert_eq!(
            a.replication_lag,
            Some(9),
            "lag aggregates as the worst shard"
        );
        assert_eq!(a.net_latency_percentile(0.5), 500);
    }
}
