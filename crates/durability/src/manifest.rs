//! The shard manifest: a tiny root-level file that records how a durable
//! database directory is partitioned into maintenance shards.
//!
//! A sharded database lives at `path/` with one complete single-shard
//! database (checkpoints + WAL) per subdirectory `shard-000/`,
//! `shard-001/`, …; the manifest at `path/SHARDS` records the shard count
//! so recovery knows how many shard streams to replay (in parallel) and
//! can refuse to open the directory with a different partitioning — the
//! group→shard hash assignment is only stable for a fixed shard count.
//!
//! The file is 16 bytes: an 8-byte magic, the shard count as `u32` LE, and
//! a CRC-32 of the count. It is written once at creation time via the
//! usual tmp + rename + dir-sync dance and never modified afterwards.

use std::path::{Path, PathBuf};

use chronicle_simkit::{RealFs, Vfs};
use chronicle_types::{ChronicleError, Result};

use crate::crc::crc32;
use crate::retry::read_with_retry;
use crate::wal::{quarantine_rename, sync_dir};

/// Magic prefix identifying a shard manifest file.
const MAGIC: &[u8; 8] = b"CHRSHRD1";

/// File name of the manifest inside the database root directory.
pub const MANIFEST_FILE: &str = "SHARDS";

/// The persisted partitioning of a sharded database directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// Number of shards the catalog is hash-partitioned into (≥ 1).
    pub shards: u32,
}

impl ShardManifest {
    /// The subdirectory holding shard `i`'s single-shard database.
    pub fn shard_dir(root: &Path, i: usize) -> PathBuf {
        root.join(format!("shard-{i:03}"))
    }

    /// [`ShardManifest::load_with_vfs`] on the real filesystem.
    pub fn load(root: &Path) -> Result<Option<ShardManifest>> {
        Self::load_with_vfs(&RealFs, root)
    }

    /// Read the manifest under `root`, if one exists. A present-but-invalid
    /// manifest is loud [`ChronicleError::Corruption`], never a silent
    /// `None`: guessing a shard count would scatter groups across the
    /// wrong shards.
    pub fn load_with_vfs(vfs: &dyn Vfs, root: &Path) -> Result<Option<ShardManifest>> {
        let path = root.join(MANIFEST_FILE);
        let bytes = match read_with_retry(vfs, &path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(ChronicleError::Durability {
                    detail: format!("reading shard manifest {}: {e}", path.display()),
                })
            }
        };
        let corrupt = |detail: String| ChronicleError::Corruption { detail };
        if bytes.len() != 16 || &bytes[..8] != MAGIC {
            return Err(corrupt(format!(
                "shard manifest {} is malformed ({} bytes)",
                path.display(),
                bytes.len()
            )));
        }
        let shards = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
        let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("length checked"));
        if crc != crc32(&bytes[8..12]) {
            return Err(corrupt(format!(
                "shard manifest {} fails its checksum",
                path.display()
            )));
        }
        if shards == 0 {
            return Err(corrupt(format!(
                "shard manifest {} records zero shards",
                path.display()
            )));
        }
        Ok(Some(ShardManifest { shards }))
    }

    /// [`ShardManifest::write_with_vfs`] on the real filesystem.
    pub fn write(&self, root: &Path, fsync: bool) -> Result<()> {
        self.write_with_vfs(&RealFs, root, fsync)
    }

    /// Move a corrupt manifest into `root/quarantine/` so a salvage open
    /// can rewrite it from the caller's requested shard count. Returns
    /// where the untrusted file ended up.
    pub fn quarantine_with_vfs(vfs: &dyn Vfs, root: &Path, fsync: bool) -> Result<PathBuf> {
        quarantine_rename(vfs, root, &root.join(MANIFEST_FILE), fsync)
    }

    /// Persist the manifest under `root` (which must exist): write to a
    /// temporary name, rename into place, and optionally sync the
    /// directory so the rename itself is durable.
    pub fn write_with_vfs(&self, vfs: &dyn Vfs, root: &Path, fsync: bool) -> Result<()> {
        let io_err = |what: &str, e: std::io::Error| ChronicleError::Durability {
            detail: format!("{what} shard manifest in {}: {e}", root.display()),
        };
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&self.shards.to_le_bytes());
        bytes.extend_from_slice(&crc32(&self.shards.to_le_bytes()).to_le_bytes());
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        let final_path = root.join(MANIFEST_FILE);
        let mut f = vfs.create(&tmp).map_err(|e| io_err("creating", e))?;
        f.write_all(&bytes).map_err(|e| io_err("writing", e))?;
        if fsync {
            f.sync_data().map_err(|e| io_err("syncing", e))?;
        }
        drop(f);
        vfs.rename(&tmp, &final_path)
            .map_err(|e| io_err("publishing", e))?;
        if fsync {
            sync_dir(vfs, root)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_testkit::TempDir;

    #[test]
    fn round_trip() {
        let tmp = TempDir::new("chronicle-manifest-round-trip");
        let d = tmp.path();
        assert_eq!(ShardManifest::load(d).unwrap(), None);
        let m = ShardManifest { shards: 4 };
        m.write(d, false).unwrap();
        assert_eq!(ShardManifest::load(d).unwrap(), Some(m));
    }

    #[test]
    fn damage_is_loud() {
        let tmp = TempDir::new("chronicle-manifest-damage");
        let d = tmp.path();
        ShardManifest { shards: 2 }.write(d, false).unwrap();
        let path = d.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardManifest::load(d),
            Err(ChronicleError::Corruption { .. })
        ));
        std::fs::write(&path, b"short").unwrap();
        assert!(ShardManifest::load(d).is_err());
    }
}
