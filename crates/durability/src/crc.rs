//! Table-driven CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! Every WAL record frame and every checkpoint image carries a CRC so that
//! torn writes and bit rot are *detected*, never silently replayed. The
//! table is built at compile time; no external crate is involved.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming data assembled in pieces.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the chronicle is unbounded and not stored";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data));
        }
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = b"sensitivity check".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
