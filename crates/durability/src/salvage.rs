//! Recovery policies and the salvage report.
//!
//! The durability layer supports two recovery policies. [`Strict`] is the
//! historical behaviour: any damage that cannot be explained by a torn
//! final write fails the open with `ChronicleError::Corruption`.
//! [`Salvage`] instead recovers the **maximal legal prefix** of the
//! acknowledged history: a corrupt newest checkpoint falls back to the
//! previous generation, WAL replay truncates at the first unrecoverable
//! frame, and untrusted files are moved aside into a `quarantine/`
//! directory instead of being deleted — nothing the operator might want
//! for forensics is destroyed. Every salvage decision is recorded in a
//! [`SalvageReport`] so that lost data is *enumerated*, never silent.
//!
//! [`Strict`]: RecoveryPolicy::Strict
//! [`Salvage`]: RecoveryPolicy::Salvage

use std::fmt;
use std::path::PathBuf;

/// How recovery reacts to damage it cannot explain as a torn final write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Fail the open loudly on any unexplained damage (the default).
    #[default]
    Strict,
    /// Recover the maximal legal prefix, quarantine untrusted files, and
    /// report exactly what was lost in a [`SalvageReport`].
    Salvage,
}

/// An inclusive range of LSNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsnRange {
    /// First LSN in the range.
    pub first: u64,
    /// Last LSN in the range (inclusive; `>= first`).
    pub last: u64,
}

impl fmt::Display for LsnRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.first == self.last {
            write!(f, "lsn {}", self.first)
        } else {
            write!(f, "lsns {}..={}", self.first, self.last)
        }
    }
}

/// A WAL segment moved to `quarantine/` during a salvage open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSegment {
    /// Where the segment now lives (inside the quarantine directory).
    pub path: PathBuf,
    /// The first LSN the segment was named for.
    pub first_lsn: u64,
    /// Why the segment was not trusted.
    pub reason: String,
}

/// What a `Salvage` open did and what it could not save.
///
/// The contract proven by the simulation gate: after a salvage open the
/// database state equals `replay(prefix of acked ops)`, and if that prefix
/// is proper then [`SalvageReport::data_lost`] is true and
/// [`SalvageReport::lost`] starts exactly at the first dropped LSN.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SalvageReport {
    /// Checkpoint images that failed to decode and were skipped (Strict
    /// skips these too; the counter is shared).
    pub checkpoints_skipped: u64,
    /// Corrupt checkpoint images moved to `quarantine/`.
    pub checkpoints_quarantined: Vec<PathBuf>,
    /// True when a corrupt `SHARDS` manifest was rewritten from the
    /// requested shard count.
    pub manifest_rewritten: bool,
    /// WAL segments (or copies of damaged segments) moved to
    /// `wal/quarantine/`.
    pub segments_quarantined: Vec<QuarantinedSegment>,
    /// Bytes discarded from the final segment's torn/damaged tail.
    pub tail_bytes_discarded: u64,
    /// Highest LSN whose record was recovered and replayed (0 if none).
    pub replayed_through: u64,
    /// The contiguous LSN range that was acknowledged (or at least
    /// durable) but could not be recovered. `None` when nothing above the
    /// recovered prefix was seen on disk.
    pub lost: Option<LsnRange>,
}

impl SalvageReport {
    /// True when the salvage open dropped durable records: something was
    /// quarantined, a damaged tail was discarded, or an LSN range is gone.
    pub fn data_lost(&self) -> bool {
        self.lost.is_some()
            || !self.segments_quarantined.is_empty()
            || !self.checkpoints_quarantined.is_empty()
            || self.tail_bytes_discarded > 0
    }

    /// True when the open behaved exactly like a clean `Strict` open:
    /// nothing skipped, quarantined, discarded, or lost.
    pub fn is_trivial(&self) -> bool {
        !self.data_lost() && self.checkpoints_skipped == 0 && !self.manifest_rewritten
    }

    /// Fold another report into this one (used by the sharded engine to
    /// aggregate per-shard reports into the `DbStats` view).
    pub fn merge(&mut self, other: &SalvageReport) {
        self.checkpoints_skipped += other.checkpoints_skipped;
        self.checkpoints_quarantined
            .extend(other.checkpoints_quarantined.iter().cloned());
        self.manifest_rewritten |= other.manifest_rewritten;
        self.segments_quarantined
            .extend(other.segments_quarantined.iter().cloned());
        self.tail_bytes_discarded += other.tail_bytes_discarded;
        self.replayed_through = self.replayed_through.max(other.replayed_through);
        self.lost = match (self.lost, other.lost) {
            (Some(a), Some(b)) => Some(LsnRange {
                first: a.first.min(b.first),
                last: a.last.max(b.last),
            }),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_trivial() {
            return write!(f, "salvage: clean open, nothing lost");
        }
        writeln!(f, "salvage report:")?;
        writeln!(f, "  replayed through lsn {}", self.replayed_through)?;
        match self.lost {
            Some(range) => writeln!(f, "  LOST {range}")?,
            None => writeln!(f, "  no acknowledged records lost")?,
        }
        if self.checkpoints_skipped > 0 {
            writeln!(
                f,
                "  checkpoints skipped as undecodable: {}",
                self.checkpoints_skipped
            )?;
        }
        for p in &self.checkpoints_quarantined {
            writeln!(f, "  quarantined checkpoint: {}", p.display())?;
        }
        if self.manifest_rewritten {
            writeln!(f, "  shard manifest was corrupt and has been rewritten")?;
        }
        for seg in &self.segments_quarantined {
            writeln!(
                f,
                "  quarantined segment {} (first lsn {}): {}",
                seg.path.display(),
                seg.first_lsn,
                seg.reason
            )?;
        }
        if self.tail_bytes_discarded > 0 {
            writeln!(
                f,
                "  damaged tail bytes discarded: {}",
                self.tail_bytes_discarded
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_strict_and_trivial() {
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Strict);
        let r = SalvageReport::default();
        assert!(r.is_trivial());
        assert!(!r.data_lost());
    }

    #[test]
    fn merge_widens_lost_range_and_ors_flags() {
        let mut a = SalvageReport {
            lost: Some(LsnRange {
                first: 10,
                last: 12,
            }),
            replayed_through: 9,
            ..SalvageReport::default()
        };
        let b = SalvageReport {
            lost: Some(LsnRange { first: 4, last: 20 }),
            replayed_through: 3,
            manifest_rewritten: true,
            checkpoints_skipped: 2,
            ..SalvageReport::default()
        };
        a.merge(&b);
        assert_eq!(a.lost, Some(LsnRange { first: 4, last: 20 }));
        assert_eq!(a.replayed_through, 9);
        assert!(a.manifest_rewritten);
        assert_eq!(a.checkpoints_skipped, 2);
        assert!(a.data_lost());
    }

    #[test]
    fn display_mentions_loss() {
        let r = SalvageReport {
            lost: Some(LsnRange { first: 7, last: 7 }),
            replayed_through: 6,
            ..SalvageReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("LOST lsn 7"), "{s}");
        assert!(s.contains("replayed through lsn 6"), "{s}");
    }
}
