//! Follower-side WAL ingest.
//!
//! A replication follower receives *raw segment bytes* from its leader —
//! exactly the frames [`crate::Wal`] wrote, header included — and must
//! (a) persist them locally so a follower crash recovers through the
//! normal WAL recovery path, and (b) decode complete frames incrementally
//! so records can be applied to the follower's in-memory views as they
//! arrive.
//!
//! [`WalIngest`] is that state machine. The shipping protocol drives it
//! with three calls per segment:
//!
//! 1. [`WalIngest::begin_segment`] — the leader is about to stream the
//!    segment whose first record has the given LSN, from byte offset 0.
//!    Any local segment files *after* it are leftovers of a previous
//!    incarnation (the header-only active segment a follower's own open
//!    creates, or a partially shipped segment from a dropped connection)
//!    and are deleted. The segment's own file, if present, is *preserved*:
//!    its trusted prefix — valid header plus whole CRC-checked frames
//!    chaining up to the applied LSN — is reloaded as already-received
//!    bytes, so the local image never shrinks below what recovery already
//!    replayed.
//! 2. [`WalIngest::ingest`] — a chunk of raw bytes at the given offset.
//!    Bytes overlapping the preserved prefix are verified against it and
//!    skipped (the leader re-ships below its flushed frontier
//!    byte-for-byte, so a mismatch is real divergence, not resumption);
//!    fresh bytes are written to the local file verbatim and parsed
//!    incrementally, and every *complete* frame past the applied LSN is
//!    returned for application. A partial trailing frame simply waits for
//!    more bytes — and if the follower dies first, it is exactly the torn
//!    tail local recovery already repairs.
//! 3. [`WalIngest::seal_segment`] — the leader sealed the segment; no
//!    more bytes will come. The local copy is synced and the next
//!    `begin_segment` may start the successor.
//!
//! Because the leader always re-ships the whole segment containing
//! `applied + 1` from offset 0 on (re)connect, resumption needs no
//! byte-level negotiation. Preserving the already-received prefix across
//! a restart matters for more than efficiency: a follower can be
//! *promoted* (or cleanly reopened) at any instant, including mid-resume,
//! and promotion recovers from the local files. If the restart truncated
//! the segment and rewrote it from offset 0, every record between the
//! rewrite point and the old applied LSN would be lost to a promotion
//! that lands inside the rewrite window — acknowledged statements
//! included. With the prefix preserved, the on-disk image is always at
//! least as long as the applied watermark. Anything that does not
//! checksum or does not chain is a hard [`ChronicleError::Corruption`] —
//! the caller drops the connection and reconnects from its recovered
//! durable state, the same salvage-or-refuse discipline local recovery
//! applies.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use chronicle_simkit::{Vfs, VfsFile};
use chronicle_types::{ChronicleError, Result};

use crate::record::WalRecord;
use crate::wal::{parse_frame, parse_segment_name, segment_name, sync_dir, FrameError};
use crate::wal::{HEADER_LEN, MAGIC};

fn io_err(context: &str, path: &Path, e: std::io::Error) -> ChronicleError {
    ChronicleError::Durability {
        detail: format!("{context} {}: {e}", path.display()),
    }
}

fn corrupt(detail: String) -> ChronicleError {
    ChronicleError::Corruption { detail }
}

/// The longest prefix of a previously received segment image that can be
/// trusted across a restart: a valid header for `first_lsn` followed by
/// whole CRC-checked frames chaining upward, stopping at the applied LSN.
/// Frames past `applied` are dropped even when they parse — they will be
/// re-shipped and re-applied through the normal path, which keeps the
/// preserved image exactly equal to what local recovery already replayed.
/// Returns `(prefix_len, next_lsn, header_ok)`.
fn replayable_prefix(bytes: &[u8], first_lsn: u64, applied: u64) -> (usize, u64, bool) {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return (0, first_lsn, false);
    }
    let first = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if first != first_lsn {
        return (0, first_lsn, false);
    }
    let mut parsed = HEADER_LEN;
    let mut next = first_lsn;
    while parsed < bytes.len() && next <= applied {
        match parse_frame(&bytes[parsed..], next) {
            Ok((consumed, _)) => {
                parsed += consumed;
                next += 1;
            }
            Err(_) => break,
        }
    }
    (parsed, next, true)
}

/// The segment currently being received.
struct Receiving {
    first_lsn: u64,
    path: PathBuf,
    file: Box<dyn VfsFile>,
    /// Every byte received so far (the leader streams the file verbatim,
    /// header included), mirrored to `file`.
    buf: Vec<u8>,
    /// Offset up to which `buf` has been parsed into frames.
    parsed: usize,
    /// Expected LSN of the next frame.
    next_lsn: u64,
    /// Whether the 16-byte segment header has been validated yet.
    header_ok: bool,
}

impl std::fmt::Debug for Receiving {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiving")
            .field("first_lsn", &self.first_lsn)
            .field("received", &self.buf.len())
            .field("parsed", &self.parsed)
            .field("next_lsn", &self.next_lsn)
            .finish()
    }
}

/// Follower-side ingest state machine: persists shipped segment bytes into
/// a local WAL directory and decodes complete frames for application.
#[derive(Debug)]
pub struct WalIngest {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    fsync: bool,
    /// LSN of the last record handed to the caller (or already recovered
    /// locally before this ingest was created).
    applied: u64,
    /// Local segment files as `(first_lsn, path)`, ascending.
    known: Vec<(u64, PathBuf)>,
    /// The chain's tail segment as found at open time. A previous
    /// incarnation wrote it but may have died before the seal that syncs
    /// it, so its bytes can still be volatile; it must be persisted
    /// before a successor segment makes it non-final (local recovery
    /// repairs a torn segment only in final position).
    unsynced_tail: Option<(u64, PathBuf)>,
    cur: Option<Receiving>,
    /// Raw segment bytes received (header + frames, including skipped
    /// ones).
    bytes_received: u64,
}

impl WalIngest {
    /// Set up ingest into `dir` (created if missing). `applied` is the
    /// LSN through which local recovery already replayed — records at or
    /// below it are skipped when they arrive again. `fsync` syncs each
    /// sealed segment before acknowledging it.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        fsync: bool,
        applied: u64,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)
            .map_err(|e| io_err("creating WAL directory", &dir, e))?;
        let mut known: Vec<(u64, PathBuf)> = vfs
            .list(&dir)
            .map_err(|e| io_err("listing WAL directory", &dir, e))?
            .into_iter()
            .filter_map(|path| {
                let first = parse_segment_name(path.file_name()?.to_str()?)?;
                Some((first, path))
            })
            .collect();
        known.sort();
        let unsynced_tail = known.last().cloned();
        Ok(WalIngest {
            vfs,
            dir,
            fsync,
            applied,
            known,
            unsynced_tail,
            cur: None,
            bytes_received: 0,
        })
    }

    /// LSN of the last record returned for application.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Raw segment bytes received so far (headers included).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// The leader is about to stream the segment whose first record is
    /// `first_lsn`, starting at byte offset 0. Stale local segments past
    /// it are deleted; an existing image of the segment itself survives —
    /// its trusted prefix counts as already received, and [`ingest`]
    /// (WalIngest::ingest) verifies the re-shipped overlap against it.
    pub fn begin_segment(&mut self, first_lsn: u64) -> Result<()> {
        match self.cur.take() {
            // The leader moved on past the segment being received without
            // an explicit seal — the connection that shipped it died
            // first, and the resume point landed in a successor. That can
            // only happen once every byte of it parsed (a torn tail would
            // pull the resume point back *into* it), so it is complete:
            // seal it implicitly, or the local chain would carry an
            // unsynced non-final segment a power cut can tear.
            Some(mut prev) if prev.first_lsn < first_lsn => {
                if !prev.header_ok || prev.parsed != prev.buf.len() {
                    return Err(corrupt(format!(
                        "leader skipped past segment at lsn {} with {} unparsed bytes",
                        prev.first_lsn,
                        prev.buf.len() - prev.parsed.min(prev.buf.len())
                    )));
                }
                if self.fsync {
                    prev.file
                        .sync_data()
                        .map_err(|e| io_err("syncing WAL segment", &prev.path, e))?;
                    sync_dir(self.vfs.as_ref(), &self.dir)?;
                }
                self.known.push((prev.first_lsn, prev.path));
            }
            // A restart of the same segment reloads its trusted prefix
            // below; a *later* in-flight segment is stale (it is not in
            // `known`, so the sweep below would miss it) and is deleted
            // here.
            Some(prev) if prev.first_lsn > first_lsn => {
                drop(prev.file);
                self.vfs
                    .remove_file(&prev.path)
                    .map_err(|e| io_err("removing stale WAL segment", &prev.path, e))?;
            }
            _ => {}
        }
        if let Some((first, path)) = self.unsynced_tail.take() {
            if first < first_lsn && self.fsync {
                // The inherited tail is about to gain a successor. Its
                // bytes may never have been synced (the incarnation that
                // wrote them can have died before the seal), so persist
                // the current image first — `Vfs::truncate` is the
                // set_len-plus-fdatasync contract recovery repairs rely
                // on, and a same-length call is exactly "sync this file".
                let len = self
                    .vfs
                    .read(&path)
                    .map_err(|e| io_err("reading WAL segment", &path, e))?
                    .len() as u64;
                self.vfs
                    .truncate(&path, len)
                    .map_err(|e| io_err("persisting WAL segment", &path, e))?;
                sync_dir(self.vfs.as_ref(), &self.dir)?;
            }
            // At or past `first_lsn` the tail is rewritten or swept below;
            // the rewrite's own seal covers its durability.
        }
        let mut keep = Vec::with_capacity(self.known.len());
        let mut removed = false;
        for (first, path) in std::mem::take(&mut self.known) {
            if first > first_lsn {
                self.vfs
                    .remove_file(&path)
                    .map_err(|e| io_err("removing stale WAL segment", &path, e))?;
                removed = true;
            } else if first < first_lsn {
                keep.push((first, path));
            }
            // `first == first_lsn` is the segment being restarted: the
            // file stays (it seeds the preserved prefix below) and the
            // entry leaves `known` because the segment is live again.
        }
        self.known = keep;
        if removed && self.fsync {
            // The unlinks must be durable before the segment is rewritten:
            // a power cut mid-rewrite otherwise resurrects a *later*
            // segment next to the torn one, and local recovery refuses a
            // torn segment that is not the final one.
            sync_dir(self.vfs.as_ref(), &self.dir)?;
        }
        let path = self.dir.join(segment_name(first_lsn));
        // Preserve what a clean reopen would recover: the trusted prefix
        // of any existing image. Restoring it inside this call (rather
        // than truncating and letting the leader rewrite it over many
        // deliveries) means there is no instant at which a promotion sees
        // the segment shorter than the applied watermark.
        let preload = match self.vfs.read(&path) {
            Ok(bytes) => {
                let (len, next_lsn, header_ok) = replayable_prefix(&bytes, first_lsn, self.applied);
                let mut bytes = bytes;
                bytes.truncate(len);
                (bytes, next_lsn, header_ok)
            }
            Err(_) => (Vec::new(), first_lsn, false),
        };
        let (buf, next_lsn, header_ok) = preload;
        let mut file = self
            .vfs
            .create(&path)
            .map_err(|e| io_err("creating WAL segment", &path, e))?;
        if !buf.is_empty() {
            file.write_all(&buf)
                .map_err(|e| io_err("writing WAL segment", &path, e))?;
        }
        let parsed = buf.len();
        self.cur = Some(Receiving {
            first_lsn,
            path,
            file,
            buf,
            parsed,
            next_lsn,
            header_ok,
        });
        Ok(())
    }

    /// Raw segment bytes at `offset` (at or before where the stream left
    /// off — a restart re-ships from 0 and the overlap with the preserved
    /// prefix is verified, not rewritten). Fresh bytes are persisted, and
    /// every newly completed record past the applied LSN is returned in
    /// order.
    pub fn ingest(&mut self, offset: u64, bytes: &[u8]) -> Result<Vec<(u64, WalRecord)>> {
        let cur = self.cur.as_mut().ok_or_else(|| {
            corrupt("segment bytes arrived before the segment was announced".into())
        })?;
        let have = cur.buf.len() as u64;
        if offset > have {
            return Err(corrupt(format!(
                "segment bytes arrived at offset {offset} but only {have} were received"
            )));
        }
        self.bytes_received += bytes.len() as u64;
        // The leader only re-ships bytes below its flushed frontier, and
        // those never change across leader restarts — so the overlap with
        // what this follower already holds must match byte-for-byte. A
        // mismatch means the follower's history diverged from this
        // leader's (e.g. it outlived a failover the leader did not), which
        // no amount of resumption can reconcile.
        let skip = ((have - offset) as usize).min(bytes.len());
        if bytes[..skip] != cur.buf[offset as usize..offset as usize + skip] {
            return Err(corrupt(format!(
                "re-shipped bytes at offset {offset} differ from the local image of {}: \
                 the follower's history has diverged from this leader",
                cur.path.display()
            )));
        }
        let fresh = &bytes[skip..];
        cur.buf.extend_from_slice(fresh);
        cur.file
            .write_all(fresh)
            .map_err(|e| io_err("writing WAL segment", &cur.path, e))?;

        if !cur.header_ok {
            if cur.buf.len() < HEADER_LEN {
                return Ok(Vec::new());
            }
            if &cur.buf[..8] != MAGIC {
                return Err(corrupt(format!(
                    "shipped segment {} has a corrupt header",
                    cur.path.display()
                )));
            }
            let first = u64::from_le_bytes(cur.buf[8..16].try_into().expect("8 bytes"));
            if first != cur.first_lsn {
                return Err(corrupt(format!(
                    "shipped segment announced for lsn {} but its header says {first}",
                    cur.first_lsn
                )));
            }
            cur.header_ok = true;
            cur.parsed = HEADER_LEN;
        }

        let mut out = Vec::new();
        while cur.parsed < cur.buf.len() {
            match parse_frame(&cur.buf[cur.parsed..], cur.next_lsn) {
                Ok((consumed, record)) => {
                    let lsn = cur.next_lsn;
                    if lsn > self.applied {
                        self.applied = lsn;
                        out.push((lsn, record));
                    }
                    cur.next_lsn += 1;
                    cur.parsed += consumed;
                }
                // An incomplete trailing frame just needs more bytes. A
                // CRC mismatch also parses as Torn — it becomes a hard
                // error at seal time (no more bytes are coming) or keeps
                // the stream stalled until the connection drops; either
                // way it never decodes.
                Err(FrameError::Torn(_)) => break,
                Err(FrameError::Corrupt(detail)) => {
                    return Err(corrupt(format!(
                        "shipped segment {}: {detail}",
                        cur.path.display()
                    )));
                }
            }
        }
        Ok(out)
    }

    /// The leader sealed the segment: every byte of it has been shipped.
    /// Verifies nothing is left half-parsed, makes the local copy durable
    /// (when `fsync`), and readies the ingest for the next segment.
    pub fn seal_segment(&mut self, first_lsn: u64) -> Result<()> {
        let cur = self.cur.as_mut().ok_or_else(|| {
            corrupt("segment seal arrived before the segment was announced".into())
        })?;
        if cur.first_lsn != first_lsn {
            return Err(corrupt(format!(
                "seal names segment at lsn {first_lsn} but lsn {} is being received",
                cur.first_lsn
            )));
        }
        if !cur.header_ok || cur.parsed != cur.buf.len() {
            return Err(corrupt(format!(
                "segment at lsn {first_lsn} sealed with {} unparsed trailing bytes",
                cur.buf.len() - cur.parsed.min(cur.buf.len())
            )));
        }
        if self.fsync {
            cur.file
                .sync_data()
                .map_err(|e| io_err("syncing WAL segment", &cur.path, e))?;
            sync_dir(self.vfs.as_ref(), &self.dir)?;
        }
        let cur = self.cur.take().expect("checked above");
        self.known.push((cur.first_lsn, cur.path));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;
    use crate::DurabilityOptions;
    use chronicle_simkit::SimFs;
    use chronicle_types::{tuple, Chronon, SeqNo};

    fn rec(i: u64) -> WalRecord {
        WalRecord::Append {
            chronicle: "c".into(),
            seq: SeqNo(i),
            at: Chronon(i as i64),
            tuples: vec![tuple![SeqNo(i), i as i64]],
        }
    }

    fn leader_opts() -> DurabilityOptions {
        DurabilityOptions {
            segment_bytes: 128,
            fsync: true,
            ..DurabilityOptions::default()
        }
    }

    /// Default-size segments: everything in these tests fits in one.
    fn one_seg_opts() -> DurabilityOptions {
        DurabilityOptions {
            fsync: true,
            ..DurabilityOptions::default()
        }
    }

    /// Ship every live leader segment into `ingest` in `chunk`-byte
    /// pieces, returning the records the ingest surfaced.
    fn ship_all(leader: &Wal, ingest: &mut WalIngest, chunk: usize) -> Vec<(u64, WalRecord)> {
        let mut out = Vec::new();
        for seg in leader.segments() {
            ingest.begin_segment(seg.first_lsn).unwrap();
            let mut offset = 0;
            loop {
                let read = leader.read_segment(seg.first_lsn, offset, chunk).unwrap();
                out.extend(ingest.ingest(offset, &read.bytes).unwrap());
                offset += read.bytes.len() as u64;
                if offset >= read.total_len {
                    break;
                }
            }
            if seg.sealed {
                ingest.seal_segment(seg.first_lsn).unwrap();
            }
        }
        out
    }

    #[test]
    fn shipped_segments_recover_locally() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(11));
        let (mut leader, _) =
            Wal::open_with_vfs(Arc::clone(&fs), "/leader/wal", leader_opts(), 0).unwrap();
        for i in 1..=40 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        assert!(leader.segments().len() > 3, "need rotation in this test");

        let mut ingest = WalIngest::open(Arc::clone(&fs), "/follower/wal", true, 0).unwrap();
        for chunk in [1usize, 7, 64, 4096] {
            let got = ship_all(
                &leader,
                &mut WalIngest::open(Arc::clone(&fs), format!("/follower-{chunk}/wal"), true, 0)
                    .unwrap(),
                chunk,
            );
            assert_eq!(got.len(), 40, "chunk {chunk}");
        }
        let got = ship_all(&leader, &mut ingest, 13);
        assert_eq!(
            got.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            (1..=40).collect::<Vec<_>>()
        );
        for (lsn, r) in &got {
            assert_eq!(*r, rec(*lsn));
        }
        // The follower's local WAL recovers through the normal path with
        // the identical tail.
        let (_, tail) =
            Wal::open_with_vfs(Arc::clone(&fs), "/follower/wal", leader_opts(), 0).unwrap();
        assert_eq!(tail, got);
    }

    #[test]
    fn reshipping_skips_applied_records() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(12));
        let (mut leader, _) =
            Wal::open_with_vfs(Arc::clone(&fs), "/leader/wal", leader_opts(), 0).unwrap();
        for i in 1..=30 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 0).unwrap();
        ship_all(&leader, &mut ingest, 64);
        assert_eq!(ingest.applied(), 30);

        // A reconnect re-ships whole segments from offset 0; nothing may
        // surface twice.
        let applied = ingest.applied();
        let mut resumed = WalIngest::open(Arc::clone(&fs), "/f/wal", true, applied).unwrap();
        for i in 31..=35 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let seg = leader.segment_containing(applied + 1).unwrap();
        let mut got = Vec::new();
        for s in leader.segments() {
            if s.first_lsn < seg.first_lsn {
                continue;
            }
            resumed.begin_segment(s.first_lsn).unwrap();
            let read = leader.read_segment(s.first_lsn, 0, usize::MAX).unwrap();
            got.extend(resumed.ingest(0, &read.bytes).unwrap());
            if s.sealed {
                resumed.seal_segment(s.first_lsn).unwrap();
            }
        }
        assert_eq!(
            got.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            (31..=35).collect::<Vec<_>>()
        );
        let (_, tail) = Wal::open_with_vfs(Arc::clone(&fs), "/f/wal", leader_opts(), 0).unwrap();
        assert_eq!(tail.len(), 35);
    }

    #[test]
    fn stale_later_segments_are_removed() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(13));
        // A follower's own `Wal::open` leaves a header-only active segment
        // behind; a later shipped segment covering earlier LSNs must
        // delete it or the next recovery sees a broken chain.
        {
            let (_wal, _) =
                Wal::open_with_vfs(Arc::clone(&fs), "/f/wal", leader_opts(), 0).unwrap();
        }
        let (mut leader, _) =
            Wal::open_with_vfs(Arc::clone(&fs), "/leader/wal", leader_opts(), 0).unwrap();
        for i in 1..=10 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 0).unwrap();
        ship_all(&leader, &mut ingest, 64);
        let (_, tail) = Wal::open_with_vfs(Arc::clone(&fs), "/f/wal", leader_opts(), 0).unwrap();
        assert_eq!(tail.len(), 10);
    }

    #[test]
    fn torn_partial_frame_recovers_as_prefix() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(14));
        let (mut leader, _) =
            Wal::open_with_vfs(Arc::clone(&fs), "/leader/wal", one_seg_opts(), 0).unwrap();
        for i in 1..=3 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let seg = leader.segments()[0].clone();
        let read = leader.read_segment(seg.first_lsn, 0, usize::MAX).unwrap();
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 0).unwrap();
        ingest.begin_segment(seg.first_lsn).unwrap();
        // Ship all but the final 3 bytes: the last frame stays torn.
        let cut = read.bytes.len() - 3;
        let got = ingest.ingest(0, &read.bytes[..cut]).unwrap();
        assert_eq!(got.len(), 2);
        drop(ingest); // connection dies here
        let (_, tail) = Wal::open_with_vfs(Arc::clone(&fs), "/f/wal", leader_opts(), 0).unwrap();
        assert_eq!(tail.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn corrupt_bytes_are_refused() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(15));
        let (mut leader, _) =
            Wal::open_with_vfs(Arc::clone(&fs), "/leader/wal", one_seg_opts(), 0).unwrap();
        for i in 1..=3 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let seg = leader.segments()[0].clone();
        let clean = leader
            .read_segment(seg.first_lsn, 0, usize::MAX)
            .unwrap()
            .bytes;

        // Bad magic.
        let mut bad = clean.clone();
        bad[0] ^= 0xFF;
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f1/wal", true, 0).unwrap();
        ingest.begin_segment(seg.first_lsn).unwrap();
        assert!(ingest.ingest(0, &bad).is_err());

        // A flipped payload bit: the frame never checksums, so sealing
        // with it unparsed is refused.
        let mut bad = clean.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f2/wal", true, 0).unwrap();
        ingest.begin_segment(seg.first_lsn).unwrap();
        let got = ingest.ingest(0, &bad).unwrap();
        assert_eq!(got.len(), 2, "only the intact prefix decodes");
        assert!(ingest.seal_segment(seg.first_lsn).is_err());

        // A gap: bytes starting past what was received.
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f3/wal", true, 0).unwrap();
        ingest.begin_segment(seg.first_lsn).unwrap();
        assert!(ingest.ingest(5, &clean).is_err());
    }

    /// A reconnect restarts the active segment from offset 0. The local
    /// image must survive the restart: a promotion (clean reopen) can land
    /// at any instant of the resume, and everything recovery had already
    /// replayed — acknowledged statements included — must still be on
    /// disk.
    #[test]
    fn restart_preserves_the_applied_prefix_on_disk() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(16));
        let (mut leader, _) =
            Wal::open_with_vfs(Arc::clone(&fs), "/leader/wal", one_seg_opts(), 0).unwrap();
        for i in 1..=5 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 0).unwrap();
        ship_all(&leader, &mut ingest, 64);
        assert_eq!(ingest.applied(), 5);
        drop(ingest);

        // Reconnect: recovery replayed through 5, the leader re-announces
        // the active segment, and only a sliver of the re-shipped stream
        // arrives before the follower is promoted.
        let seg = leader.segments()[0].clone();
        let stream = leader.read_segment(seg.first_lsn, 0, usize::MAX).unwrap();
        let mut resumed = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 5).unwrap();
        resumed.begin_segment(seg.first_lsn).unwrap();
        let got = resumed.ingest(0, &stream.bytes[..10]).unwrap();
        assert_eq!(got, vec![], "overlap bytes surface nothing new");
        drop(resumed); // promotion reopens from the local files
        let (_, tail) = Wal::open_with_vfs(Arc::clone(&fs), "/f/wal", one_seg_opts(), 0).unwrap();
        assert_eq!(
            tail.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5],
            "a restart must never shrink the image below the applied LSN"
        );

        // The same resume carried to completion extends the image past
        // the preserved prefix as new records arrive.
        let mut resumed = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 5).unwrap();
        resumed.begin_segment(seg.first_lsn).unwrap();
        assert!(resumed.ingest(0, &stream.bytes).unwrap().is_empty());
        for i in 6..=8 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let more = leader.read_segment(seg.first_lsn, 0, usize::MAX).unwrap();
        let got = resumed.ingest(stream.bytes.len() as u64, &more.bytes[stream.bytes.len()..]);
        assert_eq!(
            got.unwrap().iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![6, 7, 8]
        );
    }

    /// Re-shipped bytes below the leader's flushed frontier are immutable,
    /// so an overlap that disagrees with the preserved local image is
    /// divergence — e.g. a follower of a deposed leader attaching to a new
    /// lineage — and must be refused loudly, not spliced.
    #[test]
    fn diverged_overlap_is_refused() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(17));
        let (mut leader, _) =
            Wal::open_with_vfs(Arc::clone(&fs), "/leader/wal", one_seg_opts(), 0).unwrap();
        for i in 1..=5 {
            leader.append(&rec(i)).unwrap();
            leader.flush().unwrap();
        }
        let mut ingest = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 0).unwrap();
        ship_all(&leader, &mut ingest, 64);
        drop(ingest);

        let seg = leader.segments()[0].clone();
        let mut stream = leader
            .read_segment(seg.first_lsn, 0, usize::MAX)
            .unwrap()
            .bytes;
        stream[HEADER_LEN + 3] ^= 0x40; // inside the preserved prefix
        let mut resumed = WalIngest::open(Arc::clone(&fs), "/f/wal", true, 5).unwrap();
        resumed.begin_segment(seg.first_lsn).unwrap();
        let err = resumed.ingest(0, &stream).unwrap_err();
        assert!(
            err.to_string().contains("diverged"),
            "expected divergence refusal, got: {err}"
        );
    }
}
