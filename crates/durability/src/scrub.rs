//! The scrubber: on-demand integrity verification of everything durable.
//!
//! Recovery only validates what it reads, and it only reads on open — a
//! sealed segment or an old checkpoint can rot for weeks before a restart
//! trips over it. [`scrub_database`] walks every checkpoint image and
//! every WAL segment through the [`Vfs`] layer, re-verifying CRCs, LSN
//! chain continuity, and header/name agreement **without disturbing live
//! state**: it never truncates, quarantines, or repairs. Findings are
//! returned, not acted on, so problems surface while both checkpoint
//! generations are still healthy instead of as recovery-time surprises.
//!
//! Scrubbing a live database is safe: flushes write whole frames, so the
//! active segment on disk always ends at a frame boundary, and checkpoint
//! publication is atomic (tmp + rename).

use std::fmt;
use std::path::{Path, PathBuf};

use chronicle_simkit::{RealFs, Vfs};
use chronicle_types::Result;

use crate::checkpoint::{list_checkpoints, CheckpointImage};
use crate::retry::read_with_retry;
use crate::wal::{parse_frame, parse_segment_name, FrameError, HEADER_LEN, MAGIC};

/// One integrity problem found by the scrubber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// The file the problem lives in.
    pub path: PathBuf,
    /// What is wrong with it.
    pub detail: String,
}

/// Everything a scrub pass checked and found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Checkpoint images examined.
    pub checkpoints_checked: u64,
    /// WAL segment files examined.
    pub segments_checked: u64,
    /// Problems found, in scan order.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// True when nothing suspicious was found.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Fold another report into this one (used by the sharded engine).
    pub fn merge(&mut self, other: &ScrubReport) {
        self.checkpoints_checked += other.checkpoints_checked;
        self.segments_checked += other.segments_checked;
        self.findings.extend(other.findings.iter().cloned());
    }

    fn note(&mut self, path: &Path, detail: impl Into<String>) {
        self.findings.push(ScrubFinding {
            path: path.to_path_buf(),
            detail: detail.into(),
        });
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scrub: {} checkpoint(s), {} segment(s) checked",
            self.checkpoints_checked, self.segments_checked
        )?;
        if self.clean() {
            write!(f, "  clean: every CRC and LSN chain verified")?;
        } else {
            for finding in &self.findings {
                writeln!(f, "  {}: {}", finding.path.display(), finding.detail)?;
            }
            write!(f, "  {} finding(s)", self.findings.len())?;
        }
        Ok(())
    }
}

/// [`scrub_database`] on the real filesystem.
pub fn scrub(dir: &Path) -> Result<ScrubReport> {
    scrub_database(&RealFs, dir)
}

/// Verify every checkpoint image and WAL segment of the single-shard
/// database at `dir` (checkpoints in `dir`, segments in `dir/wal`).
///
/// Read-only: nothing is repaired, moved, or deleted. Content problems
/// become findings; only environmental failures (an unlistable directory)
/// are errors. Files already in `quarantine/` are not re-checked.
pub fn scrub_database(vfs: &dyn Vfs, dir: &Path) -> Result<ScrubReport> {
    let mut report = ScrubReport::default();

    // --- checkpoints: every generation must decode, not just the newest.
    let mut floor = 0u64;
    if vfs.exists(dir) {
        for (named_lsn, path) in list_checkpoints(vfs, dir)? {
            report.checkpoints_checked += 1;
            let bytes = match read_with_retry(vfs, &path) {
                Ok(b) => b,
                Err(e) => {
                    report.note(&path, format!("unreadable: {e}"));
                    continue;
                }
            };
            match CheckpointImage::decode(&bytes) {
                Ok(image) if image.lsn != named_lsn => {
                    report.note(
                        &path,
                        format!(
                            "named for lsn {named_lsn} but the image covers lsn {}",
                            image.lsn
                        ),
                    );
                }
                Ok(image) => floor = floor.max(image.lsn),
                Err(e) => report.note(&path, format!("undecodable: {e}")),
            }
        }
    }

    // --- WAL segments: headers, frame CRCs, and chain continuity,
    // tolerating exactly what recovery tolerates (a gap fully covered by
    // the checkpoint floor; a torn tail in the final segment).
    let wal_dir = dir.join("wal");
    if !vfs.exists(&wal_dir) {
        return Ok(report);
    }
    let mut segs: Vec<(u64, PathBuf)> = vfs
        .list(&wal_dir)
        .map_err(|e| chronicle_types::ChronicleError::Durability {
            detail: format!("listing WAL directory {}: {e}", wal_dir.display()),
        })?
        .into_iter()
        .filter_map(|path| {
            let first = parse_segment_name(path.file_name()?.to_str()?)?;
            Some((first, path))
        })
        .collect();
    segs.sort();

    let mut expected: Option<u64> = None;
    let count = segs.len();
    for (i, (named_first, path)) in segs.into_iter().enumerate() {
        let last = i + 1 == count;
        report.segments_checked += 1;
        let data = match read_with_retry(vfs, &path) {
            Ok(d) => d,
            Err(e) => {
                report.note(&path, format!("unreadable: {e}"));
                continue;
            }
        };
        if data.len() < HEADER_LEN || &data[..8] != MAGIC {
            if last {
                report.note(
                    &path,
                    "corrupt segment header (a crash while creating a fresh segment, or rot)",
                );
            } else {
                report.note(&path, "corrupt segment header in a non-final segment");
            }
            continue;
        }
        let first = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
        if first != named_first {
            report.note(
                &path,
                format!("named for lsn {named_first} but its header says {first}"),
            );
            continue;
        }
        match expected {
            Some(exp) if first > exp && first <= floor + 1 => {}
            Some(exp) if first != exp => {
                report.note(
                    &path,
                    format!(
                        "chain broken: expected a segment starting at lsn {exp}, found {first}"
                    ),
                );
            }
            None if first > floor + 1 => {
                report.note(
                    &path,
                    format!(
                        "gap: checkpoint covers through lsn {floor} but this segment starts at \
                         lsn {first}"
                    ),
                );
            }
            _ => {}
        }
        let mut lsn = first;
        let mut pos = HEADER_LEN;
        while pos < data.len() {
            match parse_frame(&data[pos..], lsn) {
                Ok((consumed, _)) => {
                    lsn += 1;
                    pos += consumed;
                }
                Err(FrameError::Torn(detail)) => {
                    let suffix = if last {
                        " (possible torn tail; recovery would repair this)"
                    } else {
                        ""
                    };
                    report.note(&path, format!("at byte {pos}: {detail}{suffix}"));
                    break;
                }
                Err(FrameError::Corrupt(detail)) => {
                    report.note(&path, format!("at byte {pos}: {detail}"));
                    break;
                }
            }
        }
        expected = Some(lsn);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DurabilityOptions, Wal, WalRecord};
    use chronicle_simkit::SimFs;
    use chronicle_types::{tuple, Chronon, SeqNo};
    use std::sync::Arc;

    fn rec(i: u64) -> WalRecord {
        WalRecord::Append {
            chronicle: "c".into(),
            seq: SeqNo(i),
            at: Chronon(i as i64),
            tuples: vec![tuple![SeqNo(i), i as i64]],
        }
    }

    #[test]
    fn clean_log_scrubs_clean_and_flips_are_found() {
        let fs = SimFs::new(5);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        let dir = Path::new("/db");
        let opts = DurabilityOptions {
            segment_bytes: 128,
            fsync: true,
            ..DurabilityOptions::default()
        };
        {
            let (mut wal, _) =
                Wal::open_with_vfs(Arc::clone(&vfs), dir.join("wal"), opts, 0).unwrap();
            for i in 1..=10 {
                wal.append(&rec(i)).unwrap();
                wal.flush().unwrap();
            }
        }
        let report = scrub_database(vfs.as_ref(), dir).unwrap();
        assert!(report.clean(), "{report}");
        assert!(report.segments_checked >= 2);

        // Flip a byte mid-chain; the scrub must name the damaged file.
        let seg = fs
            .live_files()
            .into_iter()
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .min()
            .unwrap();
        let mut data = fs.peek(&seg).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x40;
        fs.install(&seg, &data);
        let report = scrub_database(vfs.as_ref(), dir).unwrap();
        assert!(!report.clean());
        assert_eq!(report.findings[0].path, seg);
    }

    #[test]
    fn scrub_survives_transient_read_faults() {
        let fs = SimFs::new(6);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        let dir = Path::new("/db");
        {
            let (mut wal, _) = Wal::open_with_vfs(
                Arc::clone(&vfs),
                dir.join("wal"),
                DurabilityOptions {
                    fsync: true,
                    ..DurabilityOptions::default()
                },
                0,
            )
            .unwrap();
            wal.append(&rec(1)).unwrap();
            wal.flush().unwrap();
        }
        fs.set_short_reads(2);
        let report = scrub_database(vfs.as_ref(), dir).unwrap();
        assert!(report.clean(), "{report}");
    }
}
