//! Durability for the chronicle data model: segmented WAL, group commit,
//! view checkpointing, and crash recovery.
//!
//! The paper's premise (§2, Thm 4.1/4.4) is that the chronicle `C` is
//! unbounded and *not stored*: the persistent views, relations, and
//! catalog are the only state, and maintenance cost must not depend on
//! `|C|`. This crate is the system-level analogue of that discipline:
//!
//! * the [`Wal`] logs only the *deltas* (append batches, relation updates,
//!   DDL) — never the chronicle base;
//! * a [`checkpoint::CheckpointImage`] persists the `O(|V|)` view state
//!   plus the low-water LSN, after which older WAL segments are deleted;
//! * recovery loads the newest valid checkpoint and replays only the WAL
//!   *tail* through the normal maintenance path, so recovery time depends
//!   on tail length, not chronicle length.
//!
//! Torn final records are detected by CRC and cleanly discarded (they were
//! never acknowledged — acks happen only after flush); any other damage
//! fails recovery loudly with [`chronicle_types::ChronicleError::Corruption`].
//!
//! Everything here is built on `std` and the in-tree
//! [`chronicle_types::codec`]; the workspace's zero-dependency policy
//! holds.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc;
mod group_commit;
mod ingest;
pub mod manifest;
mod record;
mod retry;
pub mod salvage;
pub mod scrub;
mod wal;

pub use checkpoint::{CheckpointImage, ChronicleImage, GroupImage, RelationImage};
pub use group_commit::GroupCommit;
pub use ingest::WalIngest;
pub use manifest::ShardManifest;
pub use record::WalRecord;
pub use salvage::{LsnRange, QuarantinedSegment, RecoveryPolicy, SalvageReport};
pub use scrub::{scrub_database, ScrubFinding, ScrubReport};
pub use wal::{SegmentInfo, SegmentRead, Wal, WalStats};

/// Policy knobs for the durability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Target size of one WAL segment file in bytes; a record that would
    /// overflow the active segment seals it first.
    pub segment_bytes: u64,
    /// When true, every WAL flush `fdatasync`s the segment and checkpoint
    /// publication syncs the directory (survives power loss). When false,
    /// writes go to the OS page cache (survives process crash only) —
    /// the right default for tests and benchmarks.
    pub fsync: bool,
    /// Checkpoint automatically after this many WAL records since the
    /// last checkpoint. `None` leaves checkpointing to explicit
    /// `checkpoint()` calls.
    pub auto_checkpoint_records: Option<u64>,
    /// How many checkpoint files to retain (the newest N; at least 1).
    pub keep_checkpoints: usize,
    /// How recovery reacts to unexplained damage: fail loudly
    /// ([`RecoveryPolicy::Strict`], the default) or recover the maximal
    /// legal prefix and report what was lost
    /// ([`RecoveryPolicy::Salvage`]).
    pub recovery: RecoveryPolicy,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            segment_bytes: 1 << 20,
            fsync: false,
            auto_checkpoint_records: None,
            keep_checkpoints: 2,
            recovery: RecoveryPolicy::Strict,
        }
    }
}
