//! Bounded retry for transient read faults.
//!
//! Recovery and scrub read whole files through the `Vfs`. A transient
//! fault — an `Interrupted` short read from a flaky device or the
//! simulator's `SHORT_READ_MSG` injection — must not abort an otherwise
//! clean recovery, so reads retry a few times with a tiny backoff before
//! surfacing the error. Anything other than `Interrupted` is returned
//! immediately: real corruption or a missing file is not transient.

use std::io::ErrorKind;
use std::path::Path;
use std::time::Duration;

use chronicle_simkit::Vfs;

/// How many read attempts before giving up on a transient fault.
const MAX_READ_ATTEMPTS: u32 = 4;

/// Read a whole file, retrying `Interrupted` errors with exponential
/// backoff (1ms, 2ms, 4ms). Other error kinds return immediately.
pub(crate) fn read_with_retry(vfs: &dyn Vfs, path: &Path) -> std::io::Result<Vec<u8>> {
    let mut attempt = 0;
    loop {
        match vfs.read(path) {
            Ok(data) => return Ok(data),
            Err(e) if e.kind() == ErrorKind::Interrupted && attempt + 1 < MAX_READ_ATTEMPTS => {
                std::thread::sleep(Duration::from_millis(1 << attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_simkit::{SimFs, SHORT_READ_MSG};
    use std::sync::Arc;

    #[test]
    fn transient_short_reads_are_retried_away() {
        let fs = SimFs::new(9);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        vfs.create_dir_all(Path::new("/d")).unwrap();
        {
            let mut f = vfs.create(Path::new("/d/x")).unwrap();
            f.write_all(b"payload").unwrap();
        }
        fs.set_short_reads(u64::from(MAX_READ_ATTEMPTS) - 1);
        let data = read_with_retry(vfs.as_ref(), Path::new("/d/x")).unwrap();
        assert_eq!(data, b"payload");
    }

    #[test]
    fn persistent_faults_still_surface() {
        let fs = SimFs::new(9);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        vfs.create_dir_all(Path::new("/d")).unwrap();
        {
            let mut f = vfs.create(Path::new("/d/x")).unwrap();
            f.write_all(b"payload").unwrap();
        }
        fs.set_short_reads(u64::from(MAX_READ_ATTEMPTS) + 5);
        let err = read_with_retry(vfs.as_ref(), Path::new("/d/x")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted);
        assert!(err.to_string().contains(SHORT_READ_MSG), "{err}");
    }
}
