//! Logical WAL records.
//!
//! The log captures exactly the operations that mutate durable state:
//! DDL statements (replayed through the SQL front end), chronicle append
//! batches, and proactive relation updates. Objects are identified by
//! *name*, not catalog id, so a record replays correctly against a catalog
//! rebuilt from DDL. Relation records carry the sequence-number stamp the
//! original operation received, so replay reproduces version visibility
//! exactly (paper §2.3: a change stamped with high-water `h` is visible to
//! chronicle tuples with SN > `h`).

use chronicle_types::codec::{Reader, Writer};
use chronicle_types::{ChronicleError, Chronon, Result, SeqNo, Tuple, Value};

/// One logical operation in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A DDL statement, logged as its SQL text and replayed through
    /// `ChronicleDb::execute`.
    Ddl(String),
    /// A chronicle append batch with its admitted sequence number and
    /// chronon.
    Append {
        /// Chronicle name.
        chronicle: String,
        /// Group sequence number the batch was admitted under.
        seq: SeqNo,
        /// Chronon the batch was stamped with.
        at: Chronon,
        /// The appended tuples (may be empty — an empty batch still
        /// advances the group watermark).
        tuples: Vec<Tuple>,
    },
    /// A proactive relation insert, stamped with the group high-water at
    /// the time of the operation.
    RelInsert {
        /// Relation name.
        relation: String,
        /// High-water stamp of the change.
        at: SeqNo,
        /// Inserted tuple.
        tuple: Tuple,
    },
    /// A proactive relation delete.
    RelDelete {
        /// Relation name.
        relation: String,
        /// High-water stamp of the change.
        at: SeqNo,
        /// Deleted tuple (full tuple, as required by `TemporalRelation`).
        tuple: Tuple,
    },
    /// A proactive keyed relation update.
    RelUpdate {
        /// Relation name.
        relation: String,
        /// High-water stamp of the change.
        at: SeqNo,
        /// Primary-key values identifying the row.
        key: Vec<Value>,
        /// Replacement tuple.
        new: Tuple,
    },
    /// A chronicle group (with its chronicles, views and periodic views)
    /// arriving on this shard during a placement move. `image` is a
    /// checkpoint-codec group slice; logged on the *target* shard's WAL
    /// before the source evicts, so a crash between the two flushes rolls
    /// the move forward (DESIGN.md §16).
    GroupImport {
        /// Group name (redundant with the image, but lets replay and log
        /// inspection identify the move without decoding the slice).
        group: String,
        /// Encoded `CheckpointImage` slice carrying the group's state.
        image: Vec<u8>,
    },
    /// A chronicle group leaving this shard during a placement move;
    /// logged on the *source* shard's WAL after the target's import is
    /// durable.
    GroupEvict(String),
    /// A client statement's effect records wrapped with its idempotency
    /// stamp `(session, seq)`. The wrapper keeps stamp and effect in *one*
    /// WAL frame, so a torn flush can never persist the effect without the
    /// stamp (a lost-ack retry would re-apply) or the stamp without the
    /// effect (a retry would be answered from cache for work that never
    /// happened). `inner` holds every record the statement logged — a
    /// multi-row relation insert logs one record per row — and replay
    /// applies them in order before noting the stamp. Inner records are
    /// never themselves stamped.
    Stamped {
        /// Client session id (random 64-bit, chosen by the client).
        session: u64,
        /// Statement sequence number within the session, starting at 1.
        seq: u64,
        /// The wrapped effect records, in execution order.
        inner: Vec<WalRecord>,
    },
    /// A leadership-term boundary: every record after this one (until the
    /// next `Term`) was written under leadership term `.0`. Logged on
    /// every shard when a node assumes leadership; replay tracks the
    /// maximum, and fencing rejects traffic from lower terms.
    Term(u64),
}

const TAG_DDL: u8 = 0;
const TAG_APPEND: u8 = 1;
const TAG_REL_INSERT: u8 = 2;
const TAG_REL_DELETE: u8 = 3;
const TAG_REL_UPDATE: u8 = 4;
/// Columnar append framing: multi-row batches are encoded column-major
/// with one tag byte per *column* when the column's runtime type is
/// uniform, instead of one tag byte per value. Single-row and ragged
/// batches keep the [`TAG_APPEND`] row framing; decode accepts both.
const TAG_APPEND_COL: u8 = 5;
const TAG_GROUP_IMPORT: u8 = 6;
const TAG_GROUP_EVICT: u8 = 7;
const TAG_STAMPED: u8 = 8;
const TAG_TERM: u8 = 9;

/// Per-column type tags of the columnar framing. `COL_MIXED` columns fall
/// back to per-value tagged encoding (this also covers NULLs, so every
/// encoded value occupies at least one byte — which is what lets decode
/// bound allocations by the remaining input).
const COL_BOOL: u8 = 1;
const COL_INT: u8 = 2;
const COL_FLOAT: u8 = 3;
const COL_STR: u8 = 4;
const COL_SEQ: u8 = 5;
const COL_MIXED: u8 = 0xFF;

/// The columnar tag of `values` when they are runtime-uniform and
/// NULL-free; `COL_MIXED` otherwise.
fn column_tag(tuples: &[Tuple], col: usize) -> u8 {
    let mut tag = COL_MIXED;
    for t in tuples {
        let vt = match t.get(col) {
            Value::Bool(_) => COL_BOOL,
            Value::Int(_) => COL_INT,
            Value::Float(_) => COL_FLOAT,
            Value::Str(_) => COL_STR,
            Value::Seq(_) => COL_SEQ,
            Value::Null => return COL_MIXED,
        };
        if tag == COL_MIXED {
            tag = vt;
        } else if tag != vt {
            return COL_MIXED;
        }
    }
    tag
}

impl WalRecord {
    /// Encode to the payload bytes of a WAL frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WalRecord::Ddl(sql) => {
                w.u8(TAG_DDL);
                w.str(sql);
            }
            WalRecord::Append {
                chronicle,
                seq,
                at,
                tuples,
            } => {
                let arity = tuples.first().map_or(0, |t| t.arity());
                let columnar =
                    tuples.len() >= 2 && arity > 0 && tuples.iter().all(|t| t.arity() == arity);
                if columnar {
                    w.u8(TAG_APPEND_COL);
                    w.str(chronicle);
                    w.seq_no(*seq);
                    w.chronon(*at);
                    w.u32(tuples.len() as u32);
                    w.u32(arity as u32);
                    for col in 0..arity {
                        let tag = column_tag(tuples, col);
                        w.u8(tag);
                        for t in tuples {
                            match (tag, t.get(col)) {
                                (COL_BOOL, Value::Bool(b)) => w.u8(*b as u8),
                                (COL_INT, Value::Int(i)) => w.i64(*i),
                                (COL_FLOAT, Value::Float(f)) => w.f64(*f),
                                (COL_STR, Value::Str(s)) => w.str(s),
                                (COL_SEQ, Value::Seq(s)) => w.seq_no(*s),
                                (COL_MIXED, v) => w.value(v),
                                _ => unreachable!("column_tag guarantees uniformity"),
                            }
                        }
                    }
                } else {
                    w.u8(TAG_APPEND);
                    w.str(chronicle);
                    w.seq_no(*seq);
                    w.chronon(*at);
                    w.u32(tuples.len() as u32);
                    for t in tuples {
                        w.tuple(t);
                    }
                }
            }
            WalRecord::RelInsert {
                relation,
                at,
                tuple,
            } => {
                w.u8(TAG_REL_INSERT);
                w.str(relation);
                w.seq_no(*at);
                w.tuple(tuple);
            }
            WalRecord::RelDelete {
                relation,
                at,
                tuple,
            } => {
                w.u8(TAG_REL_DELETE);
                w.str(relation);
                w.seq_no(*at);
                w.tuple(tuple);
            }
            WalRecord::RelUpdate {
                relation,
                at,
                key,
                new,
            } => {
                w.u8(TAG_REL_UPDATE);
                w.str(relation);
                w.seq_no(*at);
                w.u32(key.len() as u32);
                for v in key {
                    w.value(v);
                }
                w.tuple(new);
            }
            WalRecord::GroupImport { group, image } => {
                w.u8(TAG_GROUP_IMPORT);
                w.str(group);
                w.bytes(image);
            }
            WalRecord::GroupEvict(group) => {
                w.u8(TAG_GROUP_EVICT);
                w.str(group);
            }
            WalRecord::Stamped {
                session,
                seq,
                inner,
            } => {
                w.u8(TAG_STAMPED);
                w.u64(*session);
                w.u64(*seq);
                w.u32(inner.len() as u32);
                for rec in inner {
                    debug_assert!(
                        !matches!(rec, WalRecord::Stamped { .. }),
                        "stamped records do not nest"
                    );
                    w.bytes(&rec.encode());
                }
            }
            WalRecord::Term(t) => {
                w.u8(TAG_TERM);
                w.u64(*t);
            }
        }
        w.into_bytes()
    }

    /// Decode from frame payload bytes. The whole slice must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8()? {
            TAG_DDL => WalRecord::Ddl(r.str()?),
            TAG_APPEND => {
                let chronicle = r.str()?;
                let seq = r.seq_no()?;
                let at = r.chronon()?;
                let n = r.u32()? as usize;
                let mut tuples = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tuples.push(r.tuple()?);
                }
                WalRecord::Append {
                    chronicle,
                    seq,
                    at,
                    tuples,
                }
            }
            TAG_APPEND_COL => {
                let chronicle = r.str()?;
                let seq = r.seq_no()?;
                let at = r.chronon()?;
                let nrows = r.u32()? as usize;
                let arity = r.u32()? as usize;
                // Every encoded value occupies at least one byte and every
                // column carries a tag byte, so an honest record needs at
                // least this much input — reject outsized claims before
                // allocating.
                let need = nrows.saturating_mul(arity).saturating_add(arity);
                if nrows < 2 || arity == 0 || need > r.remaining() {
                    return Err(ChronicleError::Corruption {
                        detail: format!(
                            "columnar WAL append claims {nrows}x{arity} values \
                             (at least {need} bytes) but only {} bytes remain",
                            r.remaining()
                        ),
                    });
                }
                let mut cols: Vec<Vec<Value>> = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let tag = r.u8()?;
                    let mut vals = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        vals.push(match tag {
                            COL_BOOL => Value::Bool(r.u8()? != 0),
                            COL_INT => Value::Int(r.i64()?),
                            COL_FLOAT => Value::Float(r.f64()?),
                            COL_STR => Value::str(r.str()?),
                            COL_SEQ => Value::Seq(r.seq_no()?),
                            COL_MIXED => r.value()?,
                            t => {
                                return Err(ChronicleError::Corruption {
                                    detail: format!("unknown WAL column tag {t}"),
                                })
                            }
                        });
                    }
                    cols.push(vals);
                }
                let mut lanes: Vec<_> = cols.into_iter().map(Vec::into_iter).collect();
                let tuples = (0..nrows)
                    .map(|_| {
                        Tuple::new(
                            lanes
                                .iter_mut()
                                .map(|l| l.next().expect("lane length nrows"))
                                .collect(),
                        )
                    })
                    .collect();
                WalRecord::Append {
                    chronicle,
                    seq,
                    at,
                    tuples,
                }
            }
            TAG_REL_INSERT => WalRecord::RelInsert {
                relation: r.str()?,
                at: r.seq_no()?,
                tuple: r.tuple()?,
            },
            TAG_REL_DELETE => WalRecord::RelDelete {
                relation: r.str()?,
                at: r.seq_no()?,
                tuple: r.tuple()?,
            },
            TAG_REL_UPDATE => {
                let relation = r.str()?;
                let at = r.seq_no()?;
                let n = r.u32()? as usize;
                let mut key = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    key.push(r.value()?);
                }
                let new = r.tuple()?;
                WalRecord::RelUpdate {
                    relation,
                    at,
                    key,
                    new,
                }
            }
            TAG_GROUP_IMPORT => WalRecord::GroupImport {
                group: r.str()?,
                image: r.bytes()?,
            },
            TAG_GROUP_EVICT => WalRecord::GroupEvict(r.str()?),
            TAG_STAMPED => {
                let session = r.u64()?;
                let seq = r.u64()?;
                let n = r.u32()? as usize;
                // Each inner record costs at least a 4-byte length prefix
                // plus one tag byte; reject outsized counts before
                // allocating.
                if n.saturating_mul(5) > r.remaining() {
                    return Err(ChronicleError::Corruption {
                        detail: format!(
                            "stamped WAL record claims {n} inner records but only {} \
                             bytes remain",
                            r.remaining()
                        ),
                    });
                }
                let mut inner = Vec::with_capacity(n);
                for _ in 0..n {
                    let bytes = r.bytes()?;
                    // Nesting is bounded to depth one: a stamped record
                    // inside a stamped record is never produced, and
                    // refusing it here keeps decode non-recursive in depth
                    // (a crafted deep nest could otherwise exhaust the
                    // stack).
                    if bytes.first() == Some(&TAG_STAMPED) {
                        return Err(ChronicleError::Corruption {
                            detail: "nested stamped WAL record".into(),
                        });
                    }
                    inner.push(WalRecord::decode(&bytes)?);
                }
                WalRecord::Stamped {
                    session,
                    seq,
                    inner,
                }
            }
            TAG_TERM => WalRecord::Term(r.u64()?),
            t => {
                return Err(ChronicleError::Corruption {
                    detail: format!("unknown WAL record tag {t}"),
                })
            }
        };
        if !r.at_end() {
            return Err(ChronicleError::Corruption {
                detail: "trailing bytes after WAL record payload".into(),
            });
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Ddl("CREATE GROUP atm".into()),
            WalRecord::Append {
                chronicle: "deposits".into(),
                seq: SeqNo(42),
                at: Chronon(7),
                tuples: vec![
                    tuple![SeqNo(42), 1i64, 250.0f64],
                    tuple![SeqNo(42), 2i64, 5.5f64],
                ],
            },
            WalRecord::Append {
                chronicle: "empty".into(),
                seq: SeqNo(43),
                at: Chronon(8),
                tuples: vec![],
            },
            WalRecord::RelInsert {
                relation: "accts".into(),
                at: SeqNo(10),
                tuple: tuple![1i64, "alice"],
            },
            WalRecord::RelDelete {
                relation: "accts".into(),
                at: SeqNo(11),
                tuple: tuple![1i64, "alice"],
            },
            WalRecord::RelUpdate {
                relation: "accts".into(),
                at: SeqNo(12),
                key: vec![Value::Int(1)],
                new: tuple![1i64, "alicia"],
            },
            WalRecord::GroupImport {
                group: "telecom".into(),
                image: vec![0xAB, 0xCD, 0, 1, 2, 3],
            },
            WalRecord::GroupEvict("telecom".into()),
            WalRecord::Stamped {
                session: 0xDEAD_BEEF_0123_4567,
                seq: 42,
                inner: vec![
                    WalRecord::Append {
                        chronicle: "deposits".into(),
                        seq: SeqNo(44),
                        at: Chronon(9),
                        tuples: vec![tuple![SeqNo(44), 7i64, 1.25f64]],
                    },
                    WalRecord::RelInsert {
                        relation: "accts".into(),
                        at: SeqNo(10),
                        tuple: tuple![2i64, "bob"],
                    },
                ],
            },
            WalRecord::Term(3),
        ]
    }

    #[test]
    fn round_trip() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn multi_row_appends_take_the_columnar_framing() {
        let rec = WalRecord::Append {
            chronicle: "deposits".into(),
            seq: SeqNo(42),
            at: Chronon(7),
            tuples: vec![
                tuple![SeqNo(42), 1i64, 250.0f64, "atm"],
                tuple![SeqNo(42), 2i64, 5.5f64, "teller"],
                tuple![SeqNo(42), 3i64, Value::Null, "atm"],
            ],
        };
        let bytes = rec.encode();
        assert_eq!(bytes[0], TAG_APPEND_COL);
        assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        // Single-row batches keep the legacy row framing.
        let single = WalRecord::Append {
            chronicle: "deposits".into(),
            seq: SeqNo(44),
            at: Chronon(9),
            tuples: vec![tuple![SeqNo(44), 1i64, 1.0f64, "atm"]],
        };
        let bytes = single.encode();
        assert_eq!(bytes[0], TAG_APPEND);
        assert_eq!(WalRecord::decode(&bytes).unwrap(), single);
    }

    #[test]
    fn columnar_framing_shrinks_uniform_batches() {
        let tuples: Vec<_> = (0..64)
            .map(|i| tuple![SeqNo(5), i as i64, i as f64 / 2.0])
            .collect();
        let columnar = WalRecord::Append {
            chronicle: "c".into(),
            seq: SeqNo(5),
            at: Chronon(1),
            tuples: tuples.clone(),
        }
        .encode();
        // Row framing spends one tag byte per value plus per-tuple length
        // prefixes; columnar spends one tag byte per column.
        let mut row = Writer::new();
        row.u8(TAG_APPEND);
        row.str("c");
        row.seq_no(SeqNo(5));
        row.chronon(Chronon(1));
        row.u32(tuples.len() as u32);
        for t in &tuples {
            row.tuple(t);
        }
        assert!(columnar.len() < row.into_bytes().len());
    }

    #[test]
    fn oversized_columnar_claims_rejected_before_allocating() {
        let rec = WalRecord::Append {
            chronicle: "c".into(),
            seq: SeqNo(5),
            at: Chronon(1),
            tuples: vec![tuple![SeqNo(5), 1i64], tuple![SeqNo(5), 2i64]],
        };
        let bytes = rec.encode();
        assert_eq!(bytes[0], TAG_APPEND_COL);
        // The row count sits right after the chronicle name, seq and
        // chronon; stamp it to u32::MAX and the decoder must refuse.
        let nrows_at = bytes.len() - (2 * 8 + 8 + 8 + 1 + 1 + 8);
        let mut huge = bytes.clone();
        huge[nrows_at..nrows_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = WalRecord::decode(&huge).unwrap_err();
        assert!(matches!(err, ChronicleError::Corruption { .. }));
        // Truncated columnar payloads fail cleanly too.
        assert!(WalRecord::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn truncation_and_bad_tags_rejected() {
        let bytes = samples()[1].encode();
        assert!(WalRecord::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        // Trailing garbage after a full record is corruption, not ignored.
        let mut padded = samples()[0].encode();
        padded.push(0);
        assert!(WalRecord::decode(&padded).is_err());
        // A truncated group-import image fails cleanly, not with a huge
        // allocation.
        let import = samples()[6].encode();
        assert!(WalRecord::decode(&import[..import.len() - 2]).is_err());
    }

    #[test]
    fn stamped_records_reject_nesting_and_outsized_counts() {
        let inner = WalRecord::Term(1);
        let nested = WalRecord::Stamped {
            session: 1,
            seq: 1,
            inner: vec![inner],
        };
        // Hand-build a nested stamp: encode() debug-asserts against it.
        let mut w = Writer::new();
        w.u8(8); // TAG_STAMPED
        w.u64(1);
        w.u64(1);
        w.u32(1);
        w.bytes(&nested.encode());
        let err = WalRecord::decode(&w.into_bytes()).unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");

        // An absurd inner-record count is refused before allocation.
        let mut w = Writer::new();
        w.u8(8);
        w.u64(1);
        w.u64(1);
        w.u32(u32::MAX);
        let err = WalRecord::decode(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, ChronicleError::Corruption { .. }));

        // Truncated stamped payloads fail cleanly.
        let bytes = samples()[8].encode();
        assert!(WalRecord::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
