//! Logical WAL records.
//!
//! The log captures exactly the operations that mutate durable state:
//! DDL statements (replayed through the SQL front end), chronicle append
//! batches, and proactive relation updates. Objects are identified by
//! *name*, not catalog id, so a record replays correctly against a catalog
//! rebuilt from DDL. Relation records carry the sequence-number stamp the
//! original operation received, so replay reproduces version visibility
//! exactly (paper §2.3: a change stamped with high-water `h` is visible to
//! chronicle tuples with SN > `h`).

use chronicle_types::codec::{Reader, Writer};
use chronicle_types::{ChronicleError, Chronon, Result, SeqNo, Tuple, Value};

/// One logical operation in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A DDL statement, logged as its SQL text and replayed through
    /// `ChronicleDb::execute`.
    Ddl(String),
    /// A chronicle append batch with its admitted sequence number and
    /// chronon.
    Append {
        /// Chronicle name.
        chronicle: String,
        /// Group sequence number the batch was admitted under.
        seq: SeqNo,
        /// Chronon the batch was stamped with.
        at: Chronon,
        /// The appended tuples (may be empty — an empty batch still
        /// advances the group watermark).
        tuples: Vec<Tuple>,
    },
    /// A proactive relation insert, stamped with the group high-water at
    /// the time of the operation.
    RelInsert {
        /// Relation name.
        relation: String,
        /// High-water stamp of the change.
        at: SeqNo,
        /// Inserted tuple.
        tuple: Tuple,
    },
    /// A proactive relation delete.
    RelDelete {
        /// Relation name.
        relation: String,
        /// High-water stamp of the change.
        at: SeqNo,
        /// Deleted tuple (full tuple, as required by `TemporalRelation`).
        tuple: Tuple,
    },
    /// A proactive keyed relation update.
    RelUpdate {
        /// Relation name.
        relation: String,
        /// High-water stamp of the change.
        at: SeqNo,
        /// Primary-key values identifying the row.
        key: Vec<Value>,
        /// Replacement tuple.
        new: Tuple,
    },
}

const TAG_DDL: u8 = 0;
const TAG_APPEND: u8 = 1;
const TAG_REL_INSERT: u8 = 2;
const TAG_REL_DELETE: u8 = 3;
const TAG_REL_UPDATE: u8 = 4;

impl WalRecord {
    /// Encode to the payload bytes of a WAL frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WalRecord::Ddl(sql) => {
                w.u8(TAG_DDL);
                w.str(sql);
            }
            WalRecord::Append {
                chronicle,
                seq,
                at,
                tuples,
            } => {
                w.u8(TAG_APPEND);
                w.str(chronicle);
                w.seq_no(*seq);
                w.chronon(*at);
                w.u32(tuples.len() as u32);
                for t in tuples {
                    w.tuple(t);
                }
            }
            WalRecord::RelInsert {
                relation,
                at,
                tuple,
            } => {
                w.u8(TAG_REL_INSERT);
                w.str(relation);
                w.seq_no(*at);
                w.tuple(tuple);
            }
            WalRecord::RelDelete {
                relation,
                at,
                tuple,
            } => {
                w.u8(TAG_REL_DELETE);
                w.str(relation);
                w.seq_no(*at);
                w.tuple(tuple);
            }
            WalRecord::RelUpdate {
                relation,
                at,
                key,
                new,
            } => {
                w.u8(TAG_REL_UPDATE);
                w.str(relation);
                w.seq_no(*at);
                w.u32(key.len() as u32);
                for v in key {
                    w.value(v);
                }
                w.tuple(new);
            }
        }
        w.into_bytes()
    }

    /// Decode from frame payload bytes. The whole slice must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8()? {
            TAG_DDL => WalRecord::Ddl(r.str()?),
            TAG_APPEND => {
                let chronicle = r.str()?;
                let seq = r.seq_no()?;
                let at = r.chronon()?;
                let n = r.u32()? as usize;
                let mut tuples = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tuples.push(r.tuple()?);
                }
                WalRecord::Append {
                    chronicle,
                    seq,
                    at,
                    tuples,
                }
            }
            TAG_REL_INSERT => WalRecord::RelInsert {
                relation: r.str()?,
                at: r.seq_no()?,
                tuple: r.tuple()?,
            },
            TAG_REL_DELETE => WalRecord::RelDelete {
                relation: r.str()?,
                at: r.seq_no()?,
                tuple: r.tuple()?,
            },
            TAG_REL_UPDATE => {
                let relation = r.str()?;
                let at = r.seq_no()?;
                let n = r.u32()? as usize;
                let mut key = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    key.push(r.value()?);
                }
                let new = r.tuple()?;
                WalRecord::RelUpdate {
                    relation,
                    at,
                    key,
                    new,
                }
            }
            t => {
                return Err(ChronicleError::Corruption {
                    detail: format!("unknown WAL record tag {t}"),
                })
            }
        };
        if !r.at_end() {
            return Err(ChronicleError::Corruption {
                detail: "trailing bytes after WAL record payload".into(),
            });
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Ddl("CREATE GROUP atm".into()),
            WalRecord::Append {
                chronicle: "deposits".into(),
                seq: SeqNo(42),
                at: Chronon(7),
                tuples: vec![
                    tuple![SeqNo(42), 1i64, 250.0f64],
                    tuple![SeqNo(42), 2i64, 5.5f64],
                ],
            },
            WalRecord::Append {
                chronicle: "empty".into(),
                seq: SeqNo(43),
                at: Chronon(8),
                tuples: vec![],
            },
            WalRecord::RelInsert {
                relation: "accts".into(),
                at: SeqNo(10),
                tuple: tuple![1i64, "alice"],
            },
            WalRecord::RelDelete {
                relation: "accts".into(),
                at: SeqNo(11),
                tuple: tuple![1i64, "alice"],
            },
            WalRecord::RelUpdate {
                relation: "accts".into(),
                at: SeqNo(12),
                key: vec![Value::Int(1)],
                new: tuple![1i64, "alicia"],
            },
        ]
    }

    #[test]
    fn round_trip() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn truncation_and_bad_tags_rejected() {
        let bytes = samples()[1].encode();
        assert!(WalRecord::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        // Trailing garbage after a full record is corruption, not ignored.
        let mut padded = samples()[0].encode();
        padded.push(0);
        assert!(WalRecord::decode(&padded).is_err());
    }
}
