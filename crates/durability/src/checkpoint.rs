//! Checkpoint images: durable snapshots of everything *except* the
//! chronicle contents.
//!
//! A checkpoint persists the catalog DDL, group watermarks, retention
//! windows, temporal relations, and every view's snapshot — the paper's
//! `O(|V|)` durable state — together with the WAL LSN it covers. After a
//! checkpoint is durable, WAL segments at or below that LSN are deleted,
//! so total durable state is `O(|V| + tail)` and never grows with the
//! chronicle length `|C|`.
//!
//! # Protocol
//!
//! 1. flush the WAL and note `lsn = last_lsn()`;
//! 2. encode the image (magic `CHRCKPT1`, body, trailing CRC-32);
//! 3. write `ckpt-{lsn}.tmp`, fsync, atomically rename to
//!    `ckpt-{lsn}.ckpt`, fsync the directory;
//! 4. prune to the newest `keep` checkpoints, rotate the WAL, delete
//!    segments covered by `lsn`.
//!
//! A crash between steps 3 and 4 is harmless: recovery loads the new
//! checkpoint and skips replayed records at or below its LSN. A crash
//! during step 3 leaves a `.tmp` file, which recovery ignores. If the
//! newest `.ckpt` is unreadable, [`load_latest`] falls back to an older
//! one; the WAL gap check in [`crate::Wal::open`] then decides loudly
//! whether the log still reaches back far enough to recover from it.

use std::path::{Path, PathBuf};

use chronicle_simkit::{RealFs, Vfs};
use chronicle_types::codec::{Reader, Writer};
use chronicle_types::{ChronicleError, Chronon, Result, SeqNo, Tuple};

use crate::crc::crc32;
use crate::retry::read_with_retry;
use crate::salvage::RecoveryPolicy;
use crate::wal::{quarantine_rename, sync_dir};

const MAGIC: &str = "CHRCKPT1";

/// Watermark state of one chronicle group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupImage {
    /// Group name.
    pub name: String,
    /// High-water sequence number.
    pub high_water: SeqNo,
    /// Chronon of the last admitted batch, if any.
    pub last_at: Option<Chronon>,
    /// Placement epoch: bumped each time the group moves between shards
    /// (DESIGN.md §16). When reconciliation after a crash finds a group on
    /// more than one shard, the copy with the highest epoch is the one the
    /// move reached last and wins; stale copies are evicted. Always 0 for
    /// never-moved groups and in single-process databases.
    pub epoch: u64,
}

/// Counters and retained window of one chronicle.
#[derive(Debug, Clone, PartialEq)]
pub struct ChronicleImage {
    /// Chronicle name.
    pub name: String,
    /// Total tuples ever appended.
    pub total_appended: u64,
    /// Sequence number of the last appended batch.
    pub last_seq: SeqNo,
    /// Oldest sequence number still in the retention window.
    pub first_stored_seq: Option<SeqNo>,
    /// The retained window tuples, oldest first.
    pub window: Vec<Tuple>,
}

/// Full state of one temporal relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationImage {
    /// Relation name.
    pub name: String,
    /// Compaction floor.
    pub floor: SeqNo,
    /// Base version rows (the version at the floor).
    pub base: Vec<Tuple>,
    /// Change log above the floor: `(stamp, is_insert, tuple)`.
    pub log: Vec<(SeqNo, bool, Tuple)>,
}

/// Everything needed to rebuild a `ChronicleDb` minus the WAL tail.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointImage {
    /// WAL LSN this image covers through.
    pub lsn: u64,
    /// Database clock at checkpoint time.
    pub tick: i64,
    /// Every DDL statement executed so far, in order.
    pub ddl: Vec<String>,
    /// Group watermarks.
    pub groups: Vec<GroupImage>,
    /// Chronicle counters and windows.
    pub chronicles: Vec<ChronicleImage>,
    /// Temporal relations.
    pub relations: Vec<RelationImage>,
    /// Persistent view snapshots as `(name, bytes)`.
    pub views: Vec<(String, Vec<u8>)>,
    /// Periodic view-family snapshots as `(name, bytes)`.
    pub periodic: Vec<(String, Vec<u8>)>,
    /// Leadership term the node held when the image was written (0 until
    /// a node is ever promoted). Trailing optional field: images written
    /// before terms existed decode with 0.
    pub term: u64,
    /// Encoded idempotent-session dedupe table (the core crate's session
    /// codec; opaque at this layer). Trailing optional field: empty for
    /// pre-session images and for group-slice images.
    pub sessions: Vec<u8>,
}

impl CheckpointImage {
    /// Encode to bytes with a trailing CRC-32.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(MAGIC);
        w.u64(self.lsn);
        w.i64(self.tick);
        w.u32(self.ddl.len() as u32);
        for sql in &self.ddl {
            w.str(sql);
        }
        w.u32(self.groups.len() as u32);
        for g in &self.groups {
            w.str(&g.name);
            w.seq_no(g.high_water);
            match g.last_at {
                None => w.u8(0),
                Some(at) => {
                    w.u8(1);
                    w.chronon(at);
                }
            }
            w.u64(g.epoch);
        }
        w.u32(self.chronicles.len() as u32);
        for c in &self.chronicles {
            w.str(&c.name);
            w.u64(c.total_appended);
            w.seq_no(c.last_seq);
            match c.first_stored_seq {
                None => w.u8(0),
                Some(s) => {
                    w.u8(1);
                    w.seq_no(s);
                }
            }
            w.u32(c.window.len() as u32);
            for t in &c.window {
                w.tuple(t);
            }
        }
        w.u32(self.relations.len() as u32);
        for r in &self.relations {
            w.str(&r.name);
            w.seq_no(r.floor);
            w.u32(r.base.len() as u32);
            for t in &r.base {
                w.tuple(t);
            }
            w.u32(r.log.len() as u32);
            for (at, is_insert, t) in &r.log {
                w.seq_no(*at);
                w.u8(*is_insert as u8);
                w.tuple(t);
            }
        }
        for set in [&self.views, &self.periodic] {
            w.u32(set.len() as u32);
            for (name, bytes) in set {
                w.str(name);
                w.bytes(bytes);
            }
        }
        // Trailing optional fields (term, session table): omitted entirely
        // when at their defaults, so images without failover state stay
        // byte-identical to the pre-term format.
        if self.term != 0 || !self.sessions.is_empty() {
            w.u64(self.term);
            w.bytes(&self.sessions);
        }
        let mut out = w.into_bytes();
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and validate; any failure is [`ChronicleError::Corruption`].
    pub fn decode(bytes: &[u8]) -> Result<CheckpointImage> {
        let corrupt = |detail: String| ChronicleError::Corruption { detail };
        if bytes.len() < 4 {
            return Err(corrupt("checkpoint file too short".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(corrupt("checkpoint CRC mismatch".into()));
        }
        let mut r = Reader::new(body);
        let mut parse = || -> Result<CheckpointImage> {
            if r.str()? != MAGIC {
                return Err(ChronicleError::Internal("bad checkpoint magic".into()));
            }
            let lsn = r.u64()?;
            let tick = r.i64()?;
            let mut ddl = Vec::new();
            for _ in 0..r.u32()? {
                ddl.push(r.str()?);
            }
            let mut groups = Vec::new();
            for _ in 0..r.u32()? {
                groups.push(GroupImage {
                    name: r.str()?,
                    high_water: r.seq_no()?,
                    last_at: match r.u8()? {
                        0 => None,
                        _ => Some(r.chronon()?),
                    },
                    epoch: r.u64()?,
                });
            }
            let mut chronicles = Vec::new();
            for _ in 0..r.u32()? {
                let name = r.str()?;
                let total_appended = r.u64()?;
                let last_seq = r.seq_no()?;
                let first_stored_seq = match r.u8()? {
                    0 => None,
                    _ => Some(r.seq_no()?),
                };
                let n = r.u32()? as usize;
                let mut window = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    window.push(r.tuple()?);
                }
                chronicles.push(ChronicleImage {
                    name,
                    total_appended,
                    last_seq,
                    first_stored_seq,
                    window,
                });
            }
            let mut relations = Vec::new();
            for _ in 0..r.u32()? {
                let name = r.str()?;
                let floor = r.seq_no()?;
                let nb = r.u32()? as usize;
                let mut base = Vec::with_capacity(nb.min(1024));
                for _ in 0..nb {
                    base.push(r.tuple()?);
                }
                let nl = r.u32()? as usize;
                let mut log = Vec::with_capacity(nl.min(1024));
                for _ in 0..nl {
                    log.push((r.seq_no()?, r.u8()? != 0, r.tuple()?));
                }
                relations.push(RelationImage {
                    name,
                    floor,
                    base,
                    log,
                });
            }
            let mut views = Vec::new();
            for _ in 0..r.u32()? {
                views.push((r.str()?, r.bytes()?));
            }
            let mut periodic = Vec::new();
            for _ in 0..r.u32()? {
                periodic.push((r.str()?, r.bytes()?));
            }
            let (term, sessions) = if r.at_end() {
                (0, Vec::new())
            } else {
                (r.u64()?, r.bytes()?)
            };
            Ok(CheckpointImage {
                lsn,
                tick,
                ddl,
                groups,
                chronicles,
                relations,
                views,
                periodic,
                term,
                sessions,
            })
        };
        let image = parse().map_err(|e| corrupt(format!("checkpoint undecodable: {e}")))?;
        if !r.at_end() {
            return Err(corrupt("trailing bytes after checkpoint image".into()));
        }
        Ok(image)
    }
}

fn ckpt_name(lsn: u64) -> String {
    format!("ckpt-{lsn:020}.ckpt")
}

pub(crate) fn list_checkpoints(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out: Vec<(u64, PathBuf)> = vfs
        .list(dir)
        .map_err(|e| ChronicleError::Durability {
            detail: format!("listing checkpoint directory {}: {e}", dir.display()),
        })?
        .into_iter()
        .filter_map(|path| {
            let lsn: u64 = path
                .file_name()?
                .to_str()?
                .strip_prefix("ckpt-")?
                .strip_suffix(".ckpt")?
                .parse()
                .ok()?;
            Some((lsn, path))
        })
        .collect();
    out.sort();
    Ok(out)
}

/// [`write_with_vfs`] on the real filesystem.
pub fn write(dir: &Path, image: &CheckpointImage, keep: usize, fsync: bool) -> Result<PathBuf> {
    write_with_vfs(&RealFs, dir, image, keep, fsync)
}

/// Durably write `image` to `dir` (tmp + fsync + atomic rename), then
/// prune to the newest `keep` checkpoint files.
pub fn write_with_vfs(
    vfs: &dyn Vfs,
    dir: &Path,
    image: &CheckpointImage,
    keep: usize,
    fsync: bool,
) -> Result<PathBuf> {
    vfs.create_dir_all(dir)
        .map_err(|e| ChronicleError::Durability {
            detail: format!("creating checkpoint directory {}: {e}", dir.display()),
        })?;
    let io = |context: &str, p: &Path, e: std::io::Error| ChronicleError::Durability {
        detail: format!("{context} {}: {e}", p.display()),
    };
    let bytes = image.encode();
    let tmp = dir.join(format!("ckpt-{:020}.tmp", image.lsn));
    let dest = dir.join(ckpt_name(image.lsn));
    {
        let mut f = vfs
            .create(&tmp)
            .map_err(|e| io("creating checkpoint", &tmp, e))?;
        f.write_all(&bytes)
            .map_err(|e| io("writing checkpoint", &tmp, e))?;
        if fsync {
            f.sync_data()
                .map_err(|e| io("syncing checkpoint", &tmp, e))?;
        }
    }
    vfs.rename(&tmp, &dest)
        .map_err(|e| io("publishing checkpoint", &dest, e))?;
    if fsync {
        sync_dir(vfs, dir)?;
    }
    let mut all = list_checkpoints(vfs, dir)?;
    while all.len() > keep.max(1) {
        let (_, old) = all.remove(0);
        let _ = vfs.remove_file(&old);
    }
    Ok(dest)
}

/// [`load_latest_with_vfs`] on the real filesystem.
pub fn load_latest(dir: &Path) -> Result<(Option<CheckpointImage>, usize)> {
    load_latest_with_vfs(&RealFs, dir)
}

/// Load the newest valid checkpoint in `dir`, skipping unreadable ones.
/// Returns the image (if any) and how many invalid files were skipped.
/// `.tmp` files from interrupted writes are ignored entirely.
pub fn load_latest_with_vfs(vfs: &dyn Vfs, dir: &Path) -> Result<(Option<CheckpointImage>, usize)> {
    let (image, skipped, _, _) =
        load_latest_salvaging_with_vfs(vfs, dir, RecoveryPolicy::Strict, false)?;
    Ok((image, skipped))
}

/// [`load_latest_with_vfs`], recovery-policy aware.
///
/// Both policies fall back past an undecodable newest image to the
/// previous generation (counting it in `skipped`); transient read faults
/// are retried with backoff either way. Salvage additionally moves each
/// undecodable image into `dir/quarantine/` (the returned paths) instead
/// of leaving it in place, and treats a *persistently* unreadable image as
/// one more file to skip rather than failing the open.
///
/// The final element is the highest lsn named by a skipped or quarantined
/// image (0 when none was dropped): a checkpoint at lsn X proves records
/// `1..=X` were once durable, so a recovery that ends below X after
/// dropping it must confess the difference as loss.
pub fn load_latest_salvaging_with_vfs(
    vfs: &dyn Vfs,
    dir: &Path,
    policy: RecoveryPolicy,
    fsync: bool,
) -> Result<(Option<CheckpointImage>, usize, Vec<PathBuf>, u64)> {
    if !vfs.exists(dir) {
        return Ok((None, 0, Vec::new(), 0));
    }
    let salvage = policy == RecoveryPolicy::Salvage;
    let mut all = list_checkpoints(vfs, dir)?;
    let mut skipped = 0;
    let mut quarantined = Vec::new();
    let mut dropped_lsn = 0u64;
    while let Some((lsn, path)) = all.pop() {
        let bytes = match read_with_retry(vfs, &path) {
            Ok(bytes) => bytes,
            Err(e) if salvage => {
                let _ = e;
                skipped += 1;
                dropped_lsn = dropped_lsn.max(lsn);
                quarantined.push(quarantine_rename(vfs, dir, &path, fsync)?);
                continue;
            }
            Err(e) => {
                return Err(ChronicleError::Durability {
                    detail: format!("reading checkpoint {}: {e}", path.display()),
                });
            }
        };
        match CheckpointImage::decode(&bytes) {
            Ok(image) => return Ok((Some(image), skipped, quarantined, dropped_lsn)),
            Err(_) => {
                skipped += 1;
                dropped_lsn = dropped_lsn.max(lsn);
                if salvage {
                    quarantined.push(quarantine_rename(vfs, dir, &path, fsync)?);
                }
            }
        }
    }
    Ok((None, skipped, quarantined, dropped_lsn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn sample(lsn: u64) -> CheckpointImage {
        CheckpointImage {
            lsn,
            tick: 99,
            ddl: vec![
                "CREATE GROUP g".into(),
                "CREATE CHRONICLE c (sn SEQ, x INT)".into(),
            ],
            groups: vec![GroupImage {
                name: "g".into(),
                high_water: SeqNo(7),
                last_at: Some(Chronon(70)),
                epoch: 3,
            }],
            chronicles: vec![ChronicleImage {
                name: "c".into(),
                total_appended: 7,
                last_seq: SeqNo(7),
                first_stored_seq: Some(SeqNo(5)),
                window: vec![tuple![SeqNo(5), 1i64], tuple![SeqNo(6), 2i64]],
            }],
            relations: vec![RelationImage {
                name: "r".into(),
                floor: SeqNo(2),
                base: vec![tuple![1i64, "a"]],
                log: vec![(SeqNo(3), true, tuple![2i64, "b"])],
            }],
            views: vec![("v".into(), vec![1, 2, 3])],
            periodic: vec![("p".into(), vec![9, 8])],
            term: 2,
            sessions: vec![4, 5, 6],
        }
    }

    #[test]
    fn image_round_trips() {
        let img = sample(12);
        assert_eq!(CheckpointImage::decode(&img.encode()).unwrap(), img);
        let empty = CheckpointImage::default();
        assert_eq!(CheckpointImage::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn pre_term_images_decode_with_defaults() {
        // An image encoded without the trailing term/session fields (the
        // pre-failover format) must decode with term 0 and no sessions.
        let mut img = sample(12);
        img.term = 0;
        img.sessions = Vec::new();
        let bytes = img.encode();
        let with = {
            let mut i2 = img.clone();
            i2.term = 1;
            i2.encode()
        };
        assert!(bytes.len() < with.len(), "default fields must be omitted");
        assert_eq!(CheckpointImage::decode(&bytes).unwrap(), img);
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut bytes = sample(5).encode();
        for i in (0..bytes.len()).step_by(7) {
            bytes[i] ^= 0x10;
            assert!(CheckpointImage::decode(&bytes).is_err(), "flip at {i}");
            bytes[i] ^= 0x10;
        }
        assert!(CheckpointImage::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn write_load_prune() {
        let tmp = chronicle_testkit::TempDir::new("chronicle-ckpt");
        let dir = tmp.join("db");
        assert_eq!(load_latest(&dir).unwrap(), (None, 0));
        for lsn in [3, 9, 27] {
            write(&dir, &sample(lsn), 2, false).unwrap();
        }
        let (img, skipped) = load_latest(&dir).unwrap();
        assert_eq!(img.unwrap().lsn, 27);
        assert_eq!(skipped, 0);
        // Pruned to 2.
        assert_eq!(list_checkpoints(&RealFs, &dir).unwrap().len(), 2);
        // A corrupt newest falls back to the previous one.
        let newest = dir.join(ckpt_name(27));
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (img, skipped) = load_latest(&dir).unwrap();
        assert_eq!(img.unwrap().lsn, 9);
        assert_eq!(skipped, 1);
        // Leftover .tmp files are ignored.
        std::fs::write(dir.join("ckpt-00000000000000000099.tmp"), b"junk").unwrap();
        assert_eq!(load_latest(&dir).unwrap().0.unwrap().lsn, 9);
    }
}
