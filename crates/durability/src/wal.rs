//! Segmented write-ahead log.
//!
//! # On-disk format
//!
//! The log is a directory of segment files named `wal-{first_lsn:020}.seg`.
//! Each segment starts with a 16-byte header — the 8-byte magic
//! `b"CHRWAL01"` followed by the little-endian `u64` LSN of the first
//! record in the segment — and is followed by record frames:
//!
//! ```text
//! [u32 len][u32 crc][u64 lsn][payload...]
//!           \------- body: len bytes ------/
//! ```
//!
//! `len` counts the body (LSN + payload); `crc` is CRC-32 over the body.
//! LSNs are assigned contiguously starting at 1, so a valid log is a gap-
//! free sequence of records split across segments.
//!
//! # Torn-tail policy
//!
//! A crash can tear the *last* write: an incomplete frame or a CRC
//! mismatch at the end of the final segment is expected, and recovery
//! truncates the file back to the last valid record (the discarded bytes
//! were never acknowledged — acks happen after flush). The same damage
//! anywhere else cannot be explained by a torn write, so it is reported as
//! [`ChronicleError::Corruption`] and recovery refuses to proceed. One
//! exception: a missing *run* of segments that lies entirely at or below
//! the checkpoint floor is tolerated — checkpoint truncation unlinks
//! covered segments, and a crash can persist some of those unlinks but not
//! others, leaving a gap that the checkpoint fully covers.
//!
//! Appends are buffered in memory; [`Wal::flush`] writes the buffer to the
//! active segment in one `write` call (and `fdatasync`s it when the
//! `fsync` policy knob is on). Group commit falls out of this split: many
//! appends, one flush, then ack them all.
//!
//! All filesystem access goes through [`Vfs`]: production uses
//! [`RealFs`](chronicle_simkit::RealFs) (plain `std::fs`), the simulation
//! harness substitutes an in-memory filesystem with fault injection.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use chronicle_simkit::{RealFs, Vfs, VfsFile};
use chronicle_types::{ChronicleError, Result};

use crate::crc::crc32;
use crate::record::WalRecord;
use crate::retry::read_with_retry;
use crate::salvage::{LsnRange, QuarantinedSegment, RecoveryPolicy, SalvageReport};
use crate::DurabilityOptions;

pub(crate) const MAGIC: &[u8; 8] = b"CHRWAL01";
pub(crate) const HEADER_LEN: usize = 16;
/// Upper bound on one frame body; anything larger in a length field is
/// treated as garbage rather than allocated.
const MAX_BODY: u32 = 256 * 1024 * 1024;
/// Subdirectory of the WAL directory where salvage moves untrusted files.
pub(crate) const QUARANTINE_DIR: &str = "quarantine";

/// Counters describing WAL activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (buffered or flushed).
    pub records: u64,
    /// Frame bytes appended.
    pub bytes: u64,
    /// Flush calls that wrote data.
    pub flushes: u64,
    /// Segment files created.
    pub segments_created: u64,
    /// Sealed segment files deleted by checkpoint truncation.
    pub segments_deleted: u64,
    /// Bytes discarded from a torn tail during the last open.
    pub torn_bytes_discarded: u64,
}

/// One live segment of the log, as tracked in memory — shipping consumers
/// enumerate these instead of poking at directory listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// LSN of the first record in the segment (also encoded in its name
    /// and header).
    pub first_lsn: u64,
    /// LSN of the last *durable* record in the segment; `first_lsn - 1`
    /// if the (active) segment holds no flushed records yet.
    pub last_lsn: u64,
    /// `true` for sealed (immutable) segments, `false` for the active one.
    pub sealed: bool,
    /// Path of the segment file.
    pub path: PathBuf,
}

/// A byte range read out of a live segment by [`Wal::read_segment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRead {
    /// First LSN of the segment the bytes came from.
    pub first_lsn: u64,
    /// The requested bytes, starting at the requested offset. Shorter than
    /// asked (possibly empty) when the readable region ends first.
    pub bytes: Vec<u8>,
    /// Whether the segment is sealed. A sealed segment at
    /// `offset + bytes.len() == total_len` has been shipped completely;
    /// an active one may grow.
    pub sealed: bool,
    /// Readable length of the segment right now: the file size for sealed
    /// segments, the flushed (durable) length for the active one.
    pub total_len: u64,
}

/// Callback invoked with each segment the log seals; registered via
/// [`Wal::set_seal_hook`].
pub struct SealHook(Box<dyn FnMut(&SegmentInfo) + Send>);

impl std::fmt::Debug for SealHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SealHook(..)")
    }
}

/// A segmented, CRC-checksummed write-ahead log.
#[derive(Debug)]
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    opts: DurabilityOptions,
    /// Sealed segments as `(first_lsn, path)`, ascending.
    sealed: Vec<(u64, PathBuf)>,
    active: Box<dyn VfsFile>,
    active_path: PathBuf,
    active_first_lsn: u64,
    active_len: u64,
    buf: Vec<u8>,
    buf_records: u64,
    next_lsn: u64,
    stats: WalStats,
    /// Set when a flush or rotation hit an I/O error. The records in
    /// flight were reported failed to the caller, so they must never
    /// reach the log afterwards: recovery may already have repaired the
    /// file and handed the same LSNs to a fresh log. A poisoned `Wal`
    /// refuses all further writes and its `Drop` is a no-op.
    poisoned: bool,
    /// What the open salvaged; `Some` iff opened with
    /// [`RecoveryPolicy::Salvage`].
    salvage: Option<SalvageReport>,
    /// Monotonic count of segments sealed by this handle; lets a polling
    /// shipper notice rotation without re-enumerating segments.
    seal_epoch: u64,
    /// Notification hook fired from [`Wal::rotate`] with each sealed
    /// segment.
    on_seal: Option<SealHook>,
    /// When set, [`Wal::truncate_through`] keeps every segment holding
    /// records at or above this LSN, regardless of the checkpoint floor —
    /// the shipping retention pin.
    retain_floor: Option<u64>,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> ChronicleError {
    ChronicleError::Durability {
        detail: format!("{context} {}: {e}", path.display()),
    }
}

pub(crate) fn segment_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:020}.seg")
}

pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// How a frame failed to parse.
pub(crate) enum FrameError {
    /// Incomplete frame or CRC mismatch — a legitimate torn write if it is
    /// the last thing in the last segment.
    Torn(String),
    /// The frame checksummed correctly but its contents are wrong (LSN
    /// discontinuity, undecodable payload) — never explainable by a torn
    /// write.
    Corrupt(String),
}

/// Best-effort resynchronising scan: walk `bytes` looking for CRC-valid
/// frames at any offset (advancing one byte past anything that does not
/// parse) and return the highest LSN found. Used only by salvage to
/// *enumerate* what a damaged region contained — never to replay it: a
/// record after unexplained damage is not part of any recoverable prefix.
fn lenient_max_lsn(bytes: &[u8]) -> Option<u64> {
    let mut max = None;
    let mut pos = 0;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if (8..=MAX_BODY).contains(&len) {
            let end = pos + 8 + len as usize;
            if end <= bytes.len() {
                let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
                let body = &bytes[pos + 8..end];
                if crc32(body) == crc {
                    let lsn = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                    max = Some(max.map_or(lsn, |m: u64| m.max(lsn)));
                    pos = end;
                    continue;
                }
            }
        }
        pos += 1;
    }
    max
}

/// Test-only mutation backdoor for the verify.sh mutation check: prove the
/// simulation gate notices when salvage stops quarantining or reporting.
pub(crate) fn mutate(which: &str) -> bool {
    std::env::var("CHRONICLE_MUTATE").is_ok_and(|v| v == which)
}

/// Pick a collision-free name for `name` inside the quarantine directory.
fn quarantine_target(vfs: &dyn Vfs, qdir: &Path, name: &str) -> PathBuf {
    let mut target = qdir.join(name);
    let mut n = 0;
    while vfs.exists(&target) {
        n += 1;
        target = qdir.join(format!("{name}.{n}"));
    }
    target
}

/// Move an untrusted file into `dir/quarantine/` (never delete it — the
/// operator may want it for forensics). Returns where it ended up.
pub(crate) fn quarantine_rename(
    vfs: &dyn Vfs,
    dir: &Path,
    path: &Path,
    fsync: bool,
) -> Result<PathBuf> {
    let qdir = dir.join(QUARANTINE_DIR);
    vfs.create_dir_all(&qdir)
        .map_err(|e| io_err("creating quarantine directory", &qdir, e))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("untrusted")
        .to_string();
    let target = quarantine_target(vfs, &qdir, &name);
    if mutate("no_quarantine") {
        vfs.remove_file(path)
            .map_err(|e| io_err("removing untrusted file", path, e))?;
        return Ok(target);
    }
    vfs.rename(path, &target)
        .map_err(|e| io_err("quarantining file", path, e))?;
    if fsync {
        sync_dir(vfs, &qdir)?;
        sync_dir(vfs, dir)?;
    }
    Ok(target)
}

/// Write a copy of `data` into `dir/quarantine/` (used when the original
/// must stay in place, e.g. a final segment about to be truncated).
fn quarantine_copy(
    vfs: &dyn Vfs,
    dir: &Path,
    path: &Path,
    data: &[u8],
    fsync: bool,
) -> Result<PathBuf> {
    let qdir = dir.join(QUARANTINE_DIR);
    vfs.create_dir_all(&qdir)
        .map_err(|e| io_err("creating quarantine directory", &qdir, e))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("untrusted")
        .to_string();
    let target = quarantine_target(vfs, &qdir, &name);
    if mutate("no_quarantine") {
        return Ok(target);
    }
    let mut f = vfs
        .create(&target)
        .map_err(|e| io_err("creating quarantine copy", &target, e))?;
    f.write_all(data)
        .map_err(|e| io_err("writing quarantine copy", &target, e))?;
    if fsync {
        f.sync_data()
            .map_err(|e| io_err("syncing quarantine copy", &target, e))?;
        sync_dir(vfs, &qdir)?;
    }
    Ok(target)
}

pub(crate) fn parse_frame(
    bytes: &[u8],
    expected_lsn: u64,
) -> std::result::Result<(usize, WalRecord), FrameError> {
    if bytes.len() < 8 {
        return Err(FrameError::Torn(format!(
            "{} trailing bytes, too short for a frame header",
            bytes.len()
        )));
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !(8..=MAX_BODY).contains(&len) {
        return Err(FrameError::Torn(format!("implausible frame length {len}")));
    }
    let end = 8 + len as usize;
    if bytes.len() < end {
        return Err(FrameError::Torn(format!(
            "frame claims {len} body bytes but only {} remain",
            bytes.len() - 8
        )));
    }
    let body = &bytes[8..end];
    if crc32(body) != crc {
        return Err(FrameError::Torn(format!(
            "CRC mismatch on record lsn~{expected_lsn}"
        )));
    }
    let lsn = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    if lsn != expected_lsn {
        return Err(FrameError::Corrupt(format!(
            "LSN discontinuity: expected {expected_lsn}, frame carries {lsn}"
        )));
    }
    let record = WalRecord::decode(&body[8..]).map_err(|e| {
        FrameError::Corrupt(format!(
            "record lsn {lsn} checksums but does not decode: {e}"
        ))
    })?;
    Ok((end, record))
}

impl Wal {
    /// Open (or create) the log in `dir` on the real filesystem. See
    /// [`Wal::open_with_vfs`].
    pub fn open(
        dir: impl AsRef<Path>,
        opts: DurabilityOptions,
        floor: u64,
    ) -> Result<(Wal, Vec<(u64, WalRecord)>)> {
        Self::open_with_vfs(RealFs::arc(), dir, opts, floor)
    }

    /// Open (or create) the log in `dir` over `vfs`, validating every
    /// segment.
    ///
    /// `floor` is the LSN through which the latest checkpoint already
    /// covers the state; records at or below it are validated but not
    /// returned. Returns the log handle plus the tail of records above the
    /// floor, in LSN order. A torn tail in the final segment is repaired
    /// by truncating the file; damage anywhere else is an error, except a
    /// segment gap that lies entirely at or below the floor (a partially
    /// persisted checkpoint truncation).
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        opts: DurabilityOptions,
        floor: u64,
    ) -> Result<(Wal, Vec<(u64, WalRecord)>)> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)
            .map_err(|e| io_err("creating WAL directory", &dir, e))?;
        let salvage = opts.recovery == RecoveryPolicy::Salvage;
        let mut report = SalvageReport::default();

        let mut segs: Vec<(u64, PathBuf)> = vfs
            .list(&dir)
            .map_err(|e| io_err("listing WAL directory", &dir, e))?
            .into_iter()
            .filter_map(|path| {
                let first = parse_segment_name(path.file_name()?.to_str()?)?;
                Some((first, path))
            })
            .collect();
        segs.sort();

        let mut stats = WalStats::default();
        let mut tail = Vec::new();
        let mut kept: Vec<(u64, PathBuf)> = Vec::new();
        let mut expected: Option<u64> = None;
        // Salvage bookkeeping: when the chain stops at an unrecoverable
        // point, `stopped` holds the index of the first remaining segment
        // to quarantine plus the best loss evidence scanned so far.
        let mut stopped: Option<(usize, Option<u64>)> = None;
        let count = segs.len();
        let mut i = 0;
        'chain: while i < count {
            let last = i + 1 == count;
            let (named_first, path) = segs[i].clone();
            i += 1;
            let data = read_with_retry(vfs.as_ref(), &path)
                .map_err(|e| io_err("reading WAL segment", &path, e))?;

            let header_first = if data.len() >= HEADER_LEN && &data[..8] == MAGIC {
                Some(u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")))
            } else {
                None
            };
            let untrusted: Option<String> = match header_first {
                None if last && !salvage => {
                    // A crash while creating a fresh segment: nothing in it
                    // was ever acknowledged, so drop the file.
                    stats.torn_bytes_discarded += data.len() as u64;
                    vfs.remove_file(&path)
                        .map_err(|e| io_err("removing torn WAL segment", &path, e))?;
                    continue 'chain;
                }
                None if salvage => Some("corrupt segment header".into()),
                None => {
                    return Err(ChronicleError::Corruption {
                        detail: format!("WAL segment {} has a corrupt header", path.display()),
                    });
                }
                Some(first) if first != named_first => {
                    if salvage {
                        Some(format!(
                            "named for lsn {named_first} but its header says {first}"
                        ))
                    } else {
                        return Err(ChronicleError::Corruption {
                            detail: format!(
                                "WAL segment {} is named for lsn {named_first} but its header \
                                 says {first}",
                                path.display()
                            ),
                        });
                    }
                }
                Some(_) => None,
            };
            if let Some(reason) = untrusted {
                // Salvage only: the whole segment is untrusted. Move it
                // aside; whether the chain can continue depends on whether
                // the checkpoint already covers everything it could hold.
                let covered = i < count && segs[i].0 <= floor + 1;
                let evidence = lenient_max_lsn(&data);
                let q = quarantine_rename(vfs.as_ref(), &dir, &path, opts.fsync)?;
                report.segments_quarantined.push(QuarantinedSegment {
                    path: q,
                    first_lsn: named_first,
                    reason,
                });
                if covered {
                    continue 'chain;
                }
                let l = expected.unwrap_or(floor + 1).max(floor + 1);
                // A final segment holding nothing but a (rotted or torn)
                // header is the footprint of a crash while creating a fresh
                // segment: no record was ever written to it, so nothing
                // acknowledged is being dropped. Anything *with* frame
                // bytes is different — rot may have mangled records past
                // recognition (no CRC-valid frame left to serve as
                // evidence), so the discard must be confessed as potential
                // loss rather than silently absorbed.
                if !last || evidence.is_some_and(|m| m >= l) || data.len() > HEADER_LEN {
                    stopped = Some((i, evidence));
                    break 'chain;
                }
                continue 'chain;
            }
            let first = header_first.expect("header validated above");
            match expected {
                // A forward gap entirely at or below the checkpoint floor:
                // checkpoint truncation unlinked a covered segment and the
                // unlink persisted while an older segment's did not. Every
                // missing record is covered by the checkpoint, so the chain
                // safely restarts here.
                Some(exp) if first > exp && first <= floor + 1 => {}
                Some(exp) if first != exp => {
                    if salvage {
                        // This segment's records do not connect to the
                        // recovered prefix; it and everything after it are
                        // beyond saving.
                        let evidence = lenient_max_lsn(&data);
                        let q = quarantine_rename(vfs.as_ref(), &dir, &path, opts.fsync)?;
                        report.segments_quarantined.push(QuarantinedSegment {
                            path: q,
                            first_lsn: named_first,
                            reason: format!(
                                "segment sequence broken: expected a segment starting at lsn \
                                 {exp}, found {first}"
                            ),
                        });
                        stopped = Some((i, evidence));
                        break 'chain;
                    }
                    return Err(ChronicleError::Corruption {
                        detail: format!(
                            "WAL segment sequence broken: expected a segment starting at lsn \
                             {exp}, found {first}"
                        ),
                    });
                }
                None if first > floor + 1 => {
                    if salvage {
                        let evidence = lenient_max_lsn(&data);
                        let q = quarantine_rename(vfs.as_ref(), &dir, &path, opts.fsync)?;
                        report.segments_quarantined.push(QuarantinedSegment {
                            path: q,
                            first_lsn: named_first,
                            reason: format!(
                                "WAL gap: checkpoint covers through lsn {floor} but this \
                                 segment starts at lsn {first}"
                            ),
                        });
                        stopped = Some((i, evidence));
                        break 'chain;
                    }
                    return Err(ChronicleError::Corruption {
                        detail: format!(
                            "WAL gap: checkpoint covers through lsn {floor} but the oldest \
                             segment starts at lsn {first}"
                        ),
                    });
                }
                _ => {}
            }
            let mut lsn = first;
            let mut pos = HEADER_LEN;
            let mut damage: Option<FrameError> = None;
            while pos < data.len() {
                match parse_frame(&data[pos..], lsn) {
                    Ok((consumed, record)) => {
                        if lsn > floor {
                            tail.push((lsn, record));
                        }
                        lsn += 1;
                        pos += consumed;
                    }
                    Err(FrameError::Torn(_)) if last && !salvage => {
                        stats.torn_bytes_discarded += (data.len() - pos) as u64;
                        // The truncation must be durable before the fresh
                        // active segment below can accept new records:
                        // otherwise a later crash can resurrect the stale
                        // tail bytes next to newly acknowledged records in
                        // the following segment. Vfs::truncate persists.
                        vfs.truncate(&path, pos as u64)
                            .map_err(|e| io_err("truncating torn WAL segment", &path, e))?;
                        break;
                    }
                    Err(FrameError::Torn(detail)) if !salvage => {
                        return Err(ChronicleError::Corruption {
                            detail: format!(
                                "damage in non-final WAL segment {}: {detail}",
                                path.display()
                            ),
                        });
                    }
                    Err(FrameError::Corrupt(detail)) if !salvage => {
                        return Err(ChronicleError::Corruption {
                            detail: format!("WAL segment {}: {detail}", path.display()),
                        });
                    }
                    Err(e) => {
                        damage = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = damage {
                // Salvage only: the segment has a valid frame prefix and
                // unexplained damage at `pos` / lsn `lsn`.
                let detail = match &e {
                    FrameError::Torn(d) | FrameError::Corrupt(d) => d.clone(),
                };
                if i < count && segs[i].0 <= floor + 1 {
                    // Everything this segment could contribute is already
                    // checkpoint-covered; drop it from the chain and let
                    // the covered-gap rule restart at the next segment.
                    let q = quarantine_rename(vfs.as_ref(), &dir, &path, opts.fsync)?;
                    report.segments_quarantined.push(QuarantinedSegment {
                        path: q,
                        first_lsn: named_first,
                        reason: detail,
                    });
                    expected = Some(lsn);
                    continue 'chain;
                }
                let suffix_len = data.len() - pos;
                let evidence = lenient_max_lsn(&data[pos..]);
                // A plain torn final write (incomplete trailing frame, no
                // intact frame beyond it) is routine crash damage — keep
                // the repair quiet, exactly like Strict. Anything else is
                // bit rot: preserve the original bytes for forensics.
                let plain_torn = last && matches!(e, FrameError::Torn(_)) && evidence.is_none();
                if !plain_torn {
                    let q = quarantine_copy(vfs.as_ref(), &dir, &path, &data, opts.fsync)?;
                    report.segments_quarantined.push(QuarantinedSegment {
                        path: q,
                        first_lsn: named_first,
                        reason: detail,
                    });
                }
                // The maximal recoverable content of this segment is a
                // byte prefix of the original file, so the repair is an
                // in-place truncation (persisted by Vfs::truncate).
                stats.torn_bytes_discarded += suffix_len as u64;
                report.tail_bytes_discarded += suffix_len as u64;
                vfs.truncate(&path, pos as u64)
                    .map_err(|e| io_err("truncating damaged WAL segment", &path, e))?;
                expected = Some(lsn);
                kept.push((first, path));
                stopped = Some((i, evidence));
                break 'chain;
            }
            expected = Some(lsn);
            kept.push((first, path));
        }

        if let Some((from, mut evidence)) = stopped {
            // Quarantine every segment past the stop point, scanning each
            // (best effort) to enumerate how far the lost range extends. A
            // segment named for lsn X also proves records through X-1 were
            // once flushed — rotation seals the predecessor first.
            for (named, path) in segs.iter().take(count).skip(from).cloned() {
                if let Ok(d) = read_with_retry(vfs.as_ref(), &path) {
                    if let Some(m) = lenient_max_lsn(&d) {
                        evidence = Some(evidence.map_or(m, |e| e.max(m)));
                    }
                }
                if named > 1 {
                    evidence = Some(evidence.map_or(named - 1, |e| e.max(named - 1)));
                }
                let q = quarantine_rename(vfs.as_ref(), &dir, &path, opts.fsync)?;
                report.segments_quarantined.push(QuarantinedSegment {
                    path: q,
                    first_lsn: named,
                    reason: "beyond the first unrecoverable point".into(),
                });
            }
            let l = expected.unwrap_or(floor + 1).max(floor + 1);
            report.lost = Some(LsnRange {
                first: l,
                last: evidence.map_or(l, |m| m.max(l)),
            });
        }

        let next_lsn = expected.unwrap_or(floor + 1).max(floor + 1);
        report.replayed_through = next_lsn - 1;

        // Always start a fresh active segment. A header-only segment from a
        // previous open can collide on the name; recreating it loses
        // nothing, but it must not stay listed as sealed.
        let active_path = dir.join(segment_name(next_lsn));
        kept.retain(|(_, p)| *p != active_path);
        if opts.fsync {
            // Commit the kept chain before the new active segment becomes
            // durable below. Recovery may have replayed bytes that never
            // reached the medium (a replication follower's shipped-but-
            // unsealed segment, read back from the page cache): once a
            // durable successor exists, every kept segment is non-final,
            // and a power cut must not be able to leave one torn or
            // missing. `Vfs::truncate` persists the image it is given.
            for (_, path) in &kept {
                let len = vfs
                    .read(path)
                    .map_err(|e| io_err("reading WAL segment", path, e))?
                    .len() as u64;
                vfs.truncate(path, len)
                    .map_err(|e| io_err("persisting WAL segment", path, e))?;
            }
        }
        let mut active = vfs
            .create(&active_path)
            .map_err(|e| io_err("creating WAL segment", &active_path, e))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&next_lsn.to_le_bytes());
        active
            .write_all(&header)
            .map_err(|e| io_err("writing WAL segment header", &active_path, e))?;
        stats.segments_created += 1;
        if opts.fsync {
            active
                .sync_data()
                .map_err(|e| io_err("syncing WAL segment", &active_path, e))?;
            sync_dir(vfs.as_ref(), &dir)?;
        }

        Ok((
            Wal {
                vfs,
                dir,
                opts,
                sealed: kept,
                active,
                active_path,
                active_first_lsn: next_lsn,
                active_len: HEADER_LEN as u64,
                buf: Vec::new(),
                buf_records: 0,
                next_lsn,
                stats,
                poisoned: false,
                salvage: salvage.then_some(report),
                seal_epoch: 0,
                on_seal: None,
                retain_floor: None,
            },
            tail,
        ))
    }

    /// Append a record to the in-memory buffer; returns its LSN. The
    /// record is durable only after the next [`Wal::flush`].
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        self.check_poisoned()?;
        let lsn = self.next_lsn;
        let payload = rec.encode();
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&lsn.to_le_bytes());
        body.extend_from_slice(&payload);
        let frame_len = 8 + body.len();

        // Seal the current segment first if this record would push it past
        // the configured size; a single oversized record is still allowed
        // in an otherwise-empty segment.
        let pending = self.active_len + self.buf.len() as u64;
        if pending > HEADER_LEN as u64 && pending + frame_len as u64 > self.opts.segment_bytes {
            self.rotate()?;
        }

        self.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&body).to_le_bytes());
        self.buf.extend_from_slice(&body);
        self.buf_records += 1;
        self.next_lsn += 1;
        self.stats.records += 1;
        self.stats.bytes += frame_len as u64;
        Ok(lsn)
    }

    /// Write all buffered records to the active segment (one write, one
    /// optional `fdatasync`). Returns how many records were flushed.
    ///
    /// An I/O error here **poisons** the log: the buffered records were
    /// just reported failed, so retrying them later — from a subsequent
    /// call or from `Drop` — would append records the caller believes
    /// lost, possibly after recovery has already repaired this very file
    /// and reissued the same LSNs to a fresh segment. The buffer is
    /// discarded and every further write refuses with an error; the only
    /// way forward is to reopen the database.
    pub fn flush(&mut self) -> Result<u64> {
        self.check_poisoned()?;
        if self.buf.is_empty() {
            return Ok(0);
        }
        if let Err(e) = self.active.write_all(&self.buf) {
            self.poison();
            return Err(io_err("writing WAL segment", &self.active_path, e));
        }
        self.active_len += self.buf.len() as u64;
        let n = self.buf_records;
        self.buf.clear();
        self.buf_records = 0;
        if self.opts.fsync {
            if let Err(e) = self.active.sync_data() {
                // Post-fsync-failure page-cache state is unknowable; never
                // trust this handle again.
                self.poison();
                return Err(io_err("syncing WAL segment", &self.active_path, e));
            }
        }
        self.stats.flushes += 1;
        Ok(n)
    }

    fn poison(&mut self) {
        self.poisoned = true;
        self.buf.clear();
        self.buf_records = 0;
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(ChronicleError::Durability {
                detail: "WAL poisoned by an earlier I/O failure; reopen the database to recover"
                    .into(),
            });
        }
        Ok(())
    }

    /// Seal the active segment and start a new one at the next LSN.
    ///
    /// An error once the new segment may exist on disk poisons the log:
    /// appending to the *old* active segment with a later-named segment
    /// already present would fork the chain (two segments claiming the
    /// same LSNs on the next recovery).
    pub fn rotate(&mut self) -> Result<()> {
        self.flush()?;
        if self.active_first_lsn == self.next_lsn {
            // The active segment holds no records: a new segment would get
            // the very same name (truncating the live file out from under
            // us). There is nothing to seal; rotating is a no-op.
            return Ok(());
        }
        let new_path = self.dir.join(segment_name(self.next_lsn));
        let mut file = match self.vfs.create(&new_path) {
            Ok(f) => f,
            Err(e) => {
                self.poison();
                return Err(io_err("creating WAL segment", &new_path, e));
            }
        };
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&self.next_lsn.to_le_bytes());
        if let Err(e) = file.write_all(&header) {
            self.poison();
            return Err(io_err("writing WAL segment header", &new_path, e));
        }
        if self.opts.fsync {
            if let Err(e) = file.sync_data() {
                self.poison();
                return Err(io_err("syncing WAL segment", &new_path, e));
            }
            if let Err(e) = sync_dir(self.vfs.as_ref(), &self.dir) {
                self.poison();
                return Err(e);
            }
        }
        let old_path = std::mem::replace(&mut self.active_path, new_path);
        let sealed_info = SegmentInfo {
            first_lsn: self.active_first_lsn,
            // `flush` above drained the buffer, so every record through
            // `next_lsn - 1` is in the file being sealed.
            last_lsn: self.next_lsn - 1,
            sealed: true,
            path: old_path.clone(),
        };
        self.sealed.push((self.active_first_lsn, old_path));
        self.active = file;
        self.active_first_lsn = self.next_lsn;
        self.active_len = HEADER_LEN as u64;
        self.stats.segments_created += 1;
        self.seal_epoch += 1;
        if let Some(hook) = self.on_seal.as_mut() {
            (hook.0)(&sealed_info);
        }
        Ok(())
    }

    /// Delete sealed segments whose every record has LSN ≤ `lsn` (i.e. is
    /// covered by a checkpoint). The active segment is never deleted, and
    /// a [`Wal::set_retain_floor`] pin further caps what may go.
    pub fn truncate_through(&mut self, lsn: u64) -> Result<()> {
        let lsn = match self.retain_floor {
            Some(f) => lsn.min(f.saturating_sub(1)),
            None => lsn,
        };
        let mut keep = Vec::with_capacity(self.sealed.len());
        for i in 0..self.sealed.len() {
            let next_first = self
                .sealed
                .get(i + 1)
                .map(|s| s.0)
                .unwrap_or(self.active_first_lsn);
            let (first, path) = &self.sealed[i];
            // The segment's last record has LSN next_first - 1.
            if next_first > *first && next_first - 1 <= lsn {
                self.vfs
                    .remove_file(path)
                    .map_err(|e| io_err("deleting covered WAL segment", path, e))?;
                self.stats.segments_deleted += 1;
            } else {
                keep.push((*first, path.clone()));
            }
        }
        self.sealed = keep;
        if self.opts.fsync {
            sync_dir(self.vfs.as_ref(), &self.dir)?;
        }
        Ok(())
    }

    /// LSN of the most recently appended record (0 if none ever).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Number of records appended but not yet flushed.
    pub fn unflushed(&self) -> u64 {
        self.buf_records
    }

    /// LSN of the last record written to the active segment file (0 if
    /// none ever). Records past this are buffered only; a shipper must
    /// never send them — a crash-recovered leader would not have them,
    /// leaving the follower ahead of its own leader.
    pub fn last_durable_lsn(&self) -> u64 {
        self.next_lsn - 1 - self.buf_records
    }

    /// Number of segments this handle has sealed since open. Monotonic;
    /// a polling shipper compares epochs to detect rotation cheaply.
    pub fn seal_epoch(&self) -> u64 {
        self.seal_epoch
    }

    /// Register a callback fired from [`Wal::rotate`] with each newly
    /// sealed segment (replacing any previous hook).
    pub fn set_seal_hook(&mut self, hook: impl FnMut(&SegmentInfo) + Send + 'static) {
        self.on_seal = Some(SealHook(Box::new(hook)));
    }

    /// Pin every record with LSN ≥ `lsn` against checkpoint truncation,
    /// so a shipping leader never deletes segments a follower still
    /// needs. Replaces any previous pin.
    pub fn set_retain_floor(&mut self, lsn: u64) {
        self.retain_floor = Some(lsn);
    }

    /// Drop the retention pin; the next checkpoint truncates normally.
    pub fn clear_retain_floor(&mut self) {
        self.retain_floor = None;
    }

    /// Enumerate the live segments (sealed then active, ascending by
    /// first LSN) from in-memory state — no directory listing involved.
    pub fn segments(&self) -> Vec<SegmentInfo> {
        let mut out = Vec::with_capacity(self.sealed.len() + 1);
        for i in 0..self.sealed.len() {
            let next_first = self
                .sealed
                .get(i + 1)
                .map(|s| s.0)
                .unwrap_or(self.active_first_lsn);
            let (first, path) = &self.sealed[i];
            out.push(SegmentInfo {
                first_lsn: *first,
                last_lsn: next_first - 1,
                sealed: true,
                path: path.clone(),
            });
        }
        out.push(SegmentInfo {
            first_lsn: self.active_first_lsn,
            last_lsn: self.last_durable_lsn().max(self.active_first_lsn - 1),
            sealed: false,
            path: self.active_path.clone(),
        });
        out
    }

    /// The live segment whose LSN range contains `lsn`. Any `lsn` at or
    /// past the active segment's first LSN maps to the active segment
    /// (that is where a record with that LSN would land), so a shipper
    /// waiting at the durable frontier still gets a valid cursor. Returns
    /// `None` when the covering segment was checkpoint-truncated away.
    pub fn segment_containing(&self, lsn: u64) -> Option<SegmentInfo> {
        let segs = self.segments();
        if lsn >= self.active_first_lsn {
            return segs.last().cloned();
        }
        let idx = segs.partition_point(|s| s.first_lsn <= lsn);
        if idx == 0 {
            return None;
        }
        let s = &segs[idx - 1];
        (s.first_lsn <= lsn && lsn <= s.last_lsn).then(|| s.clone())
    }

    /// Read up to `max` bytes of the segment whose first LSN is
    /// `first_lsn`, starting at byte `offset`. For the active segment only
    /// the flushed (durable) prefix is readable — see
    /// [`Wal::last_durable_lsn`] for why buffered bytes must never ship.
    pub fn read_segment(&self, first_lsn: u64, offset: u64, max: usize) -> Result<SegmentRead> {
        let (path, sealed, limit) = if first_lsn == self.active_first_lsn {
            (self.active_path.clone(), false, Some(self.active_len))
        } else if let Ok(i) = self.sealed.binary_search_by_key(&first_lsn, |s| s.0) {
            (self.sealed[i].1.clone(), true, None)
        } else {
            return Err(ChronicleError::Durability {
                detail: format!("WAL segment starting at lsn {first_lsn} is not live"),
            });
        };
        let data = read_with_retry(self.vfs.as_ref(), &path)
            .map_err(|e| io_err("reading WAL segment", &path, e))?;
        let total = limit.map_or(data.len() as u64, |l| l.min(data.len() as u64));
        let start = offset.min(total);
        let end = total.min(start.saturating_add(max as u64));
        Ok(SegmentRead {
            first_lsn,
            bytes: data[start as usize..end as usize].to_vec(),
            sealed,
            total_len: total,
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// What the open salvaged; `Some` iff the log was opened with
    /// [`RecoveryPolicy::Salvage`].
    pub fn salvage_report(&self) -> Option<&SalvageReport> {
        self.salvage.as_ref()
    }

    /// Number of segment files currently live (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // `flush` refuses on a poisoned log, so a handle whose last flush
        // failed cannot resurrect its discarded records here — recovery
        // may already have repaired the file and reissued those LSNs.
        let _ = self.flush();
    }
}

/// fsync a directory so renames/creates/unlinks inside it are durable.
pub(crate) fn sync_dir(vfs: &dyn Vfs, dir: &Path) -> Result<()> {
    vfs.sync_dir(dir)
        .map_err(|e| io_err("syncing directory", dir, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_simkit::SimFs;
    use chronicle_testkit::TempDir;
    use chronicle_types::{tuple, Chronon, SeqNo};
    use std::fs;

    fn rec(i: u64) -> WalRecord {
        WalRecord::Append {
            chronicle: "c".into(),
            seq: SeqNo(i),
            at: Chronon(i as i64),
            tuples: vec![tuple![SeqNo(i), i as i64]],
        }
    }

    #[test]
    fn append_flush_reopen_round_trip() {
        let tmp = TempDir::new("chronicle-wal-roundtrip");
        let dir = tmp.path();
        {
            let (mut wal, tail) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
            assert!(tail.is_empty());
            for i in 1..=10 {
                assert_eq!(wal.append(&rec(i)).unwrap(), i);
            }
            assert_eq!(wal.flush().unwrap(), 10);
            assert_eq!(wal.flush().unwrap(), 0);
        }
        let (wal, tail) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
        assert_eq!(tail.len(), 10);
        for (i, (lsn, r)) in tail.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(*r, rec(*lsn));
        }
        assert_eq!(wal.last_lsn(), 10);
    }

    #[test]
    fn floor_filters_tail() {
        let tmp = TempDir::new("chronicle-wal-floor");
        let dir = tmp.path();
        {
            let (mut wal, _) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
            for i in 1..=6 {
                wal.append(&rec(i)).unwrap();
            }
            wal.flush().unwrap();
        }
        let (_, tail) = Wal::open(dir, DurabilityOptions::default(), 4).unwrap();
        assert_eq!(tail.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![5, 6]);
    }

    #[test]
    fn unflushed_records_are_lost_not_corrupt() {
        let tmp = TempDir::new("chronicle-wal-unflushed");
        let dir = tmp.path();
        {
            let (mut wal, _) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.flush().unwrap();
            wal.append(&rec(2)).unwrap();
            // Simulate a crash before flush: forget the buffer.
            wal.buf.clear();
            wal.buf_records = 0;
        }
        let (_, tail) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
        assert_eq!(tail.len(), 1);
    }

    #[test]
    fn segments_rotate_by_size_and_truncate() {
        let tmp = TempDir::new("chronicle-wal-rotate");
        let dir = tmp.path();
        let opts = DurabilityOptions {
            segment_bytes: 128,
            ..DurabilityOptions::default()
        };
        let (mut wal, _) = Wal::open(dir, opts, 0).unwrap();
        for i in 1..=40 {
            wal.append(&rec(i)).unwrap();
            wal.flush().unwrap();
        }
        assert!(wal.segment_count() > 3, "tiny segments should have rotated");
        let before = wal.segment_count();
        wal.rotate().unwrap();
        wal.truncate_through(35).unwrap();
        assert!(wal.segment_count() < before);
        drop(wal);
        // Everything above the checkpoint floor survives truncation.
        let (_, tail) = Wal::open(dir, opts, 35).unwrap();
        assert_eq!(tail.first().map(|(l, _)| *l), Some(36));
        assert_eq!(tail.last().map(|(l, _)| *l), Some(40));
    }

    #[test]
    fn gap_below_floor_is_detected() {
        let tmp = TempDir::new("chronicle-wal-gap");
        let dir = tmp.path();
        let opts = DurabilityOptions {
            segment_bytes: 128,
            ..DurabilityOptions::default()
        };
        {
            let (mut wal, _) = Wal::open(dir, opts, 0).unwrap();
            for i in 1..=20 {
                wal.append(&rec(i)).unwrap();
                wal.flush().unwrap();
            }
            wal.rotate().unwrap();
            wal.truncate_through(15).unwrap();
        }
        // Claiming a floor of 0 when lsns 1..=15 are gone must fail.
        let err = Wal::open(dir, opts, 0).unwrap_err();
        assert!(matches!(err, ChronicleError::Corruption { .. }), "{err}");
        // The true floor is fine.
        assert!(Wal::open(dir, opts, 15).is_ok());
    }

    #[test]
    fn mid_chain_gap_covered_by_floor_is_tolerated() {
        // Checkpoint truncation unlinks covered segments; a crash can
        // persist some unlinks but not others, resurrecting an *older*
        // covered segment while a middle one stays gone. As long as the
        // hole sits at or below the floor, recovery must proceed.
        let tmp = TempDir::new("chronicle-wal-midgap");
        let dir = tmp.path();
        let opts = DurabilityOptions {
            segment_bytes: 96,
            ..DurabilityOptions::default()
        };
        {
            let (mut wal, _) = Wal::open(dir, opts, 0).unwrap();
            for i in 1..=12 {
                wal.append(&rec(i)).unwrap();
                wal.flush().unwrap();
            }
        }
        let mut segs: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        assert!(segs.len() >= 3, "need a middle segment to delete");
        // Records in the first two segments: parse the second segment's
        // header for its first LSN; everything before the third segment's
        // first LSN is "covered".
        let third_first =
            u64::from_le_bytes(fs::read(&segs[2]).unwrap()[8..16].try_into().unwrap());
        fs::remove_file(&segs[1]).unwrap();
        let floor = third_first - 1;
        let (_, tail) = Wal::open(dir, opts, floor).unwrap();
        assert_eq!(tail.first().map(|(l, _)| *l), Some(floor + 1));
        assert_eq!(tail.last().map(|(l, _)| *l), Some(12));
        // The same hole above the floor is still loud.
        let err = Wal::open(dir, opts, 0).unwrap_err();
        assert!(matches!(err, ChronicleError::Corruption { .. }), "{err}");
    }

    #[test]
    fn torn_tail_is_truncated_every_cut_point() {
        let tmp = TempDir::new("chronicle-wal-torn");
        let dir = tmp.path();
        {
            let (mut wal, _) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
            for i in 1..=3 {
                wal.append(&rec(i)).unwrap();
            }
            wal.flush().unwrap();
        }
        let seg = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let full = fs::read(&seg).unwrap();
        // Find where record 3's frame starts by reparsing lengths.
        let mut offsets = vec![HEADER_LEN];
        let mut pos = HEADER_LEN;
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
            offsets.push(pos);
        }
        let rec3_start = offsets[2];
        for cut in rec3_start + 1..full.len() {
            fs::write(&seg, &full[..cut]).unwrap();
            let (wal, tail) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
            assert_eq!(tail.len(), 2, "cut at {cut}");
            assert!(wal.stats().torn_bytes_discarded > 0);
            drop(wal);
            // Remove the fresh segment the open created so the next
            // iteration sees only the original file.
            for e in fs::read_dir(dir).unwrap() {
                let p = e.unwrap().path();
                if p != seg {
                    fs::remove_file(p).unwrap();
                }
            }
            fs::write(&seg, &full).unwrap();
        }
    }

    #[test]
    fn mid_log_damage_is_loud() {
        let tmp = TempDir::new("chronicle-wal-midlog");
        let dir = tmp.path();
        let opts = DurabilityOptions {
            segment_bytes: 96,
            ..DurabilityOptions::default()
        };
        {
            let (mut wal, _) = Wal::open(dir, opts, 0).unwrap();
            for i in 1..=12 {
                wal.append(&rec(i)).unwrap();
                wal.flush().unwrap();
            }
        }
        // Flip one payload bit in the FIRST segment (not the last).
        let mut segs: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        assert!(segs.len() >= 2);
        let mut data = fs::read(&segs[0]).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x01;
        fs::write(&segs[0], &data).unwrap();
        let err = Wal::open(dir, opts, 0).unwrap_err();
        assert!(matches!(err, ChronicleError::Corruption { .. }), "{err}");
    }

    #[test]
    fn failed_flush_poisons_wal_and_drop_appends_nothing() {
        // The zombie-handle scenario the simulator found (seed 0): a flush
        // dies mid-write, recovery repairs the torn tail and reissues the
        // lost LSN into a fresh segment — and only then is the old handle
        // dropped. Its buffered frame must NOT come back from the dead:
        // the repaired segment would grow a frame whose LSN the new
        // active segment also carries, forking the chain.
        let fs = SimFs::new(42);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        let opts = DurabilityOptions {
            fsync: true,
            ..DurabilityOptions::default()
        };
        let dir = Path::new("/db/wal");
        let (mut wal, _) = Wal::open_with_vfs(Arc::clone(&vfs), dir, opts, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.flush().unwrap();
        wal.append(&rec(2)).unwrap();
        fs.set_crash_after(1); // the flush's write dies mid-syscall
        assert!(wal.flush().is_err());
        fs.crash_and_restore();

        // The poisoned handle refuses everything but dropping.
        let msg = wal.append(&rec(3)).unwrap_err().to_string();
        assert!(msg.contains("poisoned"), "unexpected error: {msg}");
        assert!(wal.flush().is_err());
        assert!(wal.rotate().is_err());

        // Recovery on the crash-consistent disk: record 1 survives,
        // record 2 (never acknowledged) is repaired away, and a fresh
        // active segment takes over its LSN.
        let (wal2, tail) = Wal::open_with_vfs(Arc::clone(&vfs), dir, opts, 0).unwrap();
        assert_eq!(tail.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1]);

        let snapshot = |fs: &SimFs| -> Vec<(PathBuf, Vec<u8>)> {
            let mut files: Vec<_> = fs
                .live_files()
                .into_iter()
                .map(|p| (p.clone(), fs.peek(&p).unwrap()))
                .collect();
            files.sort();
            files
        };
        let before = snapshot(&fs);
        drop(wal); // the zombie handle dies; the disk must not move
        assert_eq!(snapshot(&fs), before);

        drop(wal2);
        let (_, tail) = Wal::open_with_vfs(vfs, dir, opts, 0).unwrap();
        assert_eq!(tail.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1]);
    }

    /// Decode every frame in a raw segment byte string (header + frames),
    /// returning the LSNs. Panics on any damage — these tests only feed it
    /// segments the log claims are clean.
    fn lsns_in_segment(bytes: &[u8], first_lsn: u64) -> Vec<u64> {
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            first_lsn
        );
        let mut lsns = Vec::new();
        let mut pos = HEADER_LEN;
        let mut lsn = first_lsn;
        while pos < bytes.len() {
            let (consumed, _) = match parse_frame(&bytes[pos..], lsn) {
                Ok(ok) => ok,
                Err(FrameError::Torn(d) | FrameError::Corrupt(d)) => {
                    panic!("unexpected damage at lsn {lsn}: {d}")
                }
            };
            lsns.push(lsn);
            lsn += 1;
            pos += consumed;
        }
        lsns
    }

    #[test]
    fn segments_enumeration_tracks_rotation() {
        let tmp = TempDir::new("chronicle-wal-segments");
        let opts = DurabilityOptions {
            segment_bytes: 128,
            ..DurabilityOptions::default()
        };
        let (mut wal, _) = Wal::open(tmp.path(), opts, 0).unwrap();
        assert_eq!(wal.seal_epoch(), 0);
        for i in 1..=40 {
            wal.append(&rec(i)).unwrap();
            wal.flush().unwrap();
        }
        let segs = wal.segments();
        assert_eq!(segs.len(), wal.segment_count());
        assert_eq!(wal.seal_epoch(), segs.len() as u64 - 1);
        // The enumeration is a contiguous chain covering exactly 1..=40.
        assert_eq!(segs[0].first_lsn, 1);
        for pair in segs.windows(2) {
            assert_eq!(pair[1].first_lsn, pair[0].last_lsn + 1);
            assert!(pair[0].sealed);
        }
        let active = segs.last().unwrap();
        assert!(!active.sealed);
        assert_eq!(active.last_lsn, 40);
        assert_eq!(wal.last_durable_lsn(), 40);
        // A buffered (unflushed) record is not durable and not enumerated.
        wal.append(&rec(41)).unwrap();
        assert_eq!(wal.last_durable_lsn(), 40);
        assert_eq!(wal.segments().last().unwrap().last_lsn, 40);
        wal.flush().unwrap();
        assert_eq!(wal.last_durable_lsn(), 41);
        assert_eq!(wal.segments().last().unwrap().last_lsn, 41);
    }

    #[test]
    fn seal_hook_fires_with_each_sealed_segment() {
        use std::sync::Mutex;
        let tmp = TempDir::new("chronicle-wal-sealhook");
        let opts = DurabilityOptions {
            segment_bytes: 128,
            ..DurabilityOptions::default()
        };
        let (mut wal, _) = Wal::open(tmp.path(), opts, 0).unwrap();
        let sealed: Arc<Mutex<Vec<SegmentInfo>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&sealed);
        wal.set_seal_hook(move |info| sink.lock().unwrap().push(info.clone()));
        for i in 1..=40 {
            wal.append(&rec(i)).unwrap();
            wal.flush().unwrap();
        }
        wal.rotate().unwrap();
        let sealed = sealed.lock().unwrap();
        assert_eq!(sealed.len() as u64, wal.seal_epoch());
        assert!(sealed.len() >= 3, "tiny segments should have rotated");
        // Each notification names a contiguous, sealed LSN range, and the
        // notified ranges chain end to end starting at 1.
        let mut next = 1;
        for info in sealed.iter() {
            assert!(info.sealed);
            assert_eq!(info.first_lsn, next);
            assert!(info.last_lsn >= info.first_lsn);
            next = info.last_lsn + 1;
        }
        assert_eq!(next, 41);
        // Every notified segment matches the enumeration's view of it.
        let segs = wal.segments();
        for info in sealed.iter() {
            assert_eq!(
                segs.iter().find(|s| s.first_lsn == info.first_lsn),
                Some(info)
            );
        }
    }

    #[test]
    fn segments_reflect_torn_tail_repair() {
        let tmp = TempDir::new("chronicle-wal-segtorn");
        let dir = tmp.path();
        {
            let (mut wal, _) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
            for i in 1..=3 {
                wal.append(&rec(i)).unwrap();
            }
            wal.flush().unwrap();
        }
        // Tear the last frame: cut the (single) segment mid-record-3.
        let seg = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .max()
            .unwrap();
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 3]).unwrap();
        let (wal, tail) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
        assert_eq!(tail.len(), 2);
        // The enumeration sees the repaired world: the old segment sealed
        // with exactly the surviving records, the fresh active one empty.
        let segs = wal.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].first_lsn, segs[0].last_lsn), (1, 2));
        assert!(segs[0].sealed);
        assert_eq!((segs[1].first_lsn, segs[1].last_lsn), (3, 2));
        assert!(!segs[1].sealed);
        // Reading the repaired segment yields exactly records 1..=2; the
        // torn bytes are gone from what shipping would see.
        let read = wal.read_segment(1, 0, usize::MAX).unwrap();
        assert!(read.sealed);
        assert_eq!(read.total_len, read.bytes.len() as u64);
        assert_eq!(lsns_in_segment(&read.bytes, 1), vec![1, 2]);
    }

    #[test]
    fn read_segment_exposes_only_flushed_bytes() {
        let tmp = TempDir::new("chronicle-wal-readdurable");
        let (mut wal, _) = Wal::open(tmp.path(), DurabilityOptions::default(), 0).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.flush().unwrap();
        wal.append(&rec(2)).unwrap(); // buffered, not durable
        let read = wal.read_segment(1, 0, usize::MAX).unwrap();
        assert!(!read.sealed);
        assert_eq!(lsns_in_segment(&read.bytes, 1), vec![1]);
        wal.flush().unwrap();
        let read = wal.read_segment(1, 0, usize::MAX).unwrap();
        assert_eq!(lsns_in_segment(&read.bytes, 1), vec![1, 2]);
        // Chunked reads stitch back to the same bytes.
        let mut stitched = Vec::new();
        let mut offset = 0;
        loop {
            let chunk = wal.read_segment(1, offset, 7).unwrap();
            assert_eq!(chunk.total_len, read.total_len);
            if chunk.bytes.is_empty() {
                break;
            }
            offset += chunk.bytes.len() as u64;
            stitched.extend_from_slice(&chunk.bytes);
        }
        assert_eq!(stitched, read.bytes);
    }

    #[test]
    fn segment_containing_resolves_across_truncation() {
        let tmp = TempDir::new("chronicle-wal-containing");
        let opts = DurabilityOptions {
            segment_bytes: 128,
            ..DurabilityOptions::default()
        };
        let (mut wal, _) = Wal::open(tmp.path(), opts, 0).unwrap();
        for i in 1..=40 {
            wal.append(&rec(i)).unwrap();
            wal.flush().unwrap();
        }
        for lsn in 1..=40 {
            let seg = wal.segment_containing(lsn).expect("live record");
            assert!(seg.first_lsn <= lsn && lsn <= seg.last_lsn, "lsn {lsn}");
        }
        // The durable frontier (where the next record will land) resolves
        // to the active segment.
        assert!(!wal.segment_containing(41).unwrap().sealed);
        wal.rotate().unwrap();
        wal.truncate_through(20).unwrap();
        let floor = wal.segments().first().unwrap().first_lsn;
        assert!(floor > 1, "truncation should have deleted a prefix");
        assert!(wal.segment_containing(floor - 1).is_none());
        assert!(wal.segment_containing(floor).is_some());
    }

    #[test]
    fn retain_floor_pins_segments_against_truncation() {
        let tmp = TempDir::new("chronicle-wal-retain");
        let opts = DurabilityOptions {
            segment_bytes: 128,
            ..DurabilityOptions::default()
        };
        let (mut wal, _) = Wal::open(tmp.path(), opts, 0).unwrap();
        for i in 1..=40 {
            wal.append(&rec(i)).unwrap();
            wal.flush().unwrap();
        }
        wal.rotate().unwrap();
        let before = wal.segment_count();
        wal.set_retain_floor(1);
        wal.truncate_through(40).unwrap();
        assert_eq!(wal.segment_count(), before, "pin must block deletion");
        assert!(wal.segment_containing(1).is_some());
        // A higher pin lets the prefix below it go.
        wal.set_retain_floor(21);
        wal.truncate_through(40).unwrap();
        let floor = wal.segments().first().unwrap().first_lsn;
        assert!(floor > 1 && floor <= 21, "floor {floor}");
        assert!(wal.segment_containing(21).is_some());
        // Clearing the pin restores normal truncation.
        wal.clear_retain_floor();
        wal.truncate_through(40).unwrap();
        assert_eq!(wal.segment_count(), 1);
    }

    #[test]
    fn wal_over_simfs_round_trips() {
        // The same WAL code, zero disk: write, "crash" with everything
        // synced, reopen, and the tail is intact.
        let fs = SimFs::new(77);
        let opts = DurabilityOptions {
            fsync: true,
            ..DurabilityOptions::default()
        };
        let dir = Path::new("/db/wal");
        {
            let (mut wal, tail) = Wal::open_with_vfs(Arc::new(fs.clone()), dir, opts, 0).unwrap();
            assert!(tail.is_empty());
            for i in 1..=5 {
                wal.append(&rec(i)).unwrap();
            }
            wal.flush().unwrap();
        }
        fs.crash_and_restore();
        let (_, tail) = Wal::open_with_vfs(Arc::new(fs.clone()), dir, opts, 0).unwrap();
        assert_eq!(tail.len(), 5);
    }
}
