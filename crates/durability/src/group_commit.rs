//! Group commit: coalesce concurrent commits into one flush.
//!
//! Many threads call [`GroupCommit::commit`]; each append is cheap (a
//! buffered encode under a short lock). The first thread to need
//! durability becomes the *leader* and flushes the WAL once; every record
//! buffered by then — its own and all followers' — becomes durable in
//! that single flush, and the followers return without touching the disk.
//! Under contention the flush cost is amortized across the whole batch,
//! which is what makes `fsync`-per-commit affordable.

use std::sync::{Condvar, Mutex, MutexGuard};

use chronicle_types::Result;

use crate::record::WalRecord;
use crate::wal::{Wal, WalStats};

#[derive(Debug, Default)]
struct FlushState {
    /// A leader is currently inside `flush`.
    flushing: bool,
    /// Highest LSN known durable.
    flushed_lsn: u64,
}

/// A thread-safe group-commit front end over a [`Wal`].
#[derive(Debug)]
pub struct GroupCommit {
    wal: Mutex<Wal>,
    state: Mutex<FlushState>,
    flushed: Condvar,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl GroupCommit {
    /// Wrap a WAL for concurrent committers.
    pub fn new(wal: Wal) -> Self {
        let flushed_lsn = wal.last_lsn() - wal.unflushed();
        GroupCommit {
            wal: Mutex::new(wal),
            state: Mutex::new(FlushState {
                flushing: false,
                flushed_lsn,
            }),
            flushed: Condvar::new(),
        }
    }

    /// Append `rec` and return once it is durable (flushed, and fsynced if
    /// the WAL's policy says so). Concurrent callers share one flush.
    pub fn commit(&self, rec: &WalRecord) -> Result<u64> {
        let lsn = lock(&self.wal).append(rec)?;
        let mut st = lock(&self.state);
        loop {
            if st.flushed_lsn >= lsn {
                return Ok(lsn);
            }
            if !st.flushing {
                st.flushing = true;
                drop(st);
                let flush_result = {
                    let mut wal = lock(&self.wal);
                    let r = wal.flush();
                    (r, wal.last_lsn() - wal.unflushed())
                };
                let mut st = lock(&self.state);
                st.flushing = false;
                let out = match flush_result.0 {
                    Ok(_) => {
                        st.flushed_lsn = st.flushed_lsn.max(flush_result.1);
                        Ok(lsn)
                    }
                    // Followers will elect a new leader and retry (the
                    // buffer is still intact), surfacing their own error.
                    Err(e) => Err(e),
                };
                drop(st);
                self.flushed.notify_all();
                return out;
            }
            st = self
                .flushed
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Current WAL counters.
    pub fn stats(&self) -> WalStats {
        lock(&self.wal).stats()
    }

    /// Unwrap back into the WAL (e.g. to checkpoint).
    pub fn into_wal(self) -> Wal {
        self.wal
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DurabilityOptions;
    use chronicle_testkit::TempDir;
    use chronicle_types::{Chronon, SeqNo};
    use std::sync::Arc;

    #[test]
    fn concurrent_commits_coalesce_flushes() {
        let tmp = TempDir::new("chronicle-gc");
        let dir = tmp.path();
        let (wal, _) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
        let gc = Arc::new(GroupCommit::new(wal));
        let threads = 8;
        let per_thread = 200u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gc = Arc::clone(&gc);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let rec = WalRecord::Append {
                            chronicle: "c".into(),
                            seq: SeqNo(t * per_thread + i + 1),
                            at: Chronon(0),
                            tuples: vec![],
                        };
                        gc.commit(&rec).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = gc.stats();
        let total = threads * per_thread;
        assert_eq!(stats.records, total);
        assert!(
            stats.flushes <= total,
            "flushes ({}) must never exceed commits ({total})",
            stats.flushes
        );
        // Every committed record really is on disk.
        let gc = Arc::into_inner(gc).expect("all committers joined");
        drop(gc.into_wal());
        let (_, tail) = Wal::open(dir, DurabilityOptions::default(), 0).unwrap();
        assert_eq!(tail.len(), total as usize);
    }
}
