//! A tiny scoped temporary directory, replacing the `tempfile` crate.
//!
//! Durability tests need real directories on disk (WAL segments,
//! checkpoint files, crash-and-reopen round trips). This helper creates a
//! uniquely named directory under the system temp dir and removes it — and
//! everything inside — on drop. Uniqueness comes from the process id, a
//! per-process counter, and the wall clock, so concurrent test binaries
//! never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory that exists for the lifetime of this value.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the system temp dir, its name
    /// prefixed with `prefix` for identifiability in stray-file listings.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — in tests that is the
    /// right response.
    pub fn new(prefix: &str) -> TempDir {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("{prefix}-{}-{n}-{nanos:x}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort: a leaked temp dir is annoying, not incorrect.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("tk-test");
        let b = TempDir::new("tk-test");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.join("f.txt"), b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
