//! Zero-dependency test infrastructure for the chronicle workspace.
//!
//! The tier-1 verify (`cargo build --release && cargo test -q`) must pass on
//! a machine with no network and no cached crate registry, so the workspace
//! cannot depend on `rand`, `proptest` or any other external crate. This
//! crate provides the two pieces of infrastructure those crates used to
//! supply:
//!
//! * [`rng`] — a seeded, deterministic PRNG ([`rng::SmallRng`], a
//!   xoshiro256++ generator seeded via SplitMix64) exposing the small
//!   `Rng` / `SeedableRng` API surface the workload generators and test
//!   suites use (`gen_range`, `gen_bool`, `seed_from_u64`).
//! * [`prop`] — a minimal property-testing harness: generator combinators
//!   ([`prop::ints`], [`prop::vec_of`], [`prop::weighted`], …), a
//!   configurable-case-count runner with failure-case shrinking, and the
//!   [`prop_test!`] macro the workspace's property suites are written
//!   against.
//! * [`tempdir`] — a scoped temporary directory ([`tempdir::TempDir`])
//!   for durability tests, removed with its contents on drop.
//! * [`zipf`] — a seeded Zipf(θ) rank sampler ([`zipf::Zipf`],
//!   inverse-CDF over precomputed cumulative weights) for skewed
//!   key-popularity workloads; a sample stream is a pure function of the
//!   seed that built the RNG driving it.
//!
//! Both are deliberately tiny: they implement exactly what the workspace
//! needs, with deterministic behavior given a fixed seed, so every property
//! failure is reproducible from the seed recorded in the test source.

#![warn(missing_docs)]

pub mod prop;
pub mod rng;
pub mod tempdir;
pub mod zipf;

pub use rng::{Rng, SeedableRng, SmallRng};
pub use tempdir::TempDir;
pub use zipf::Zipf;
