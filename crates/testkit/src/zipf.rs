//! Seeded Zipf(θ) sampling over ranked indices.
//!
//! A [`Zipf`] distribution over `n` ranks assigns rank `i` (0-based) the
//! probability `(i+1)^-θ / H(n,θ)` where `H(n,θ)` is the generalized
//! harmonic number — the standard model for skewed key popularity (a few
//! celebrity groups receive most of the appends, the long tail almost
//! none). θ = 0 degenerates to uniform; θ ≈ 1 is the classic web/telecom
//! skew; θ > 1 concentrates the mass hard on the first few ranks.
//!
//! Sampling is inverse-CDF over a precomputed cumulative weight table:
//! one uniform `f64` from the caller's [`Rng`] and one binary search, so
//! a sample stream is a pure function of the seed that built the RNG —
//! exactly what the differential suites and the skew benchmarks need to
//! reproduce a failing run from a printed `u64`.

use crate::rng::Rng;

/// A Zipf(θ) distribution over the ranks `0..n`, sampled by inverse CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cum[i]` = P(rank ≤ i); strictly increasing, `cum[n-1] == 1.0`.
    cum: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Build the distribution over `n` ranks with exponent `theta`.
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite — both are
    /// construction bugs, not data-dependent conditions.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative, got {theta}"
        );
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-theta);
            cum.push(acc);
        }
        let total = acc;
        for c in &mut cum {
            *c /= total;
        }
        // Pin the last entry so a u ~ [0,1) draw can never fall past it.
        *cum.last_mut().expect("n > 0") = 1.0;
        Zipf { cum, theta }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cum.len()
    }

    /// The exponent this distribution was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i` (0-based).
    pub fn probability(&self, i: usize) -> f64 {
        match i {
            0 => self.cum[0],
            _ => self.cum[i] - self.cum[i - 1],
        }
    }

    /// Draw one rank in `0..ranks()`, consuming one `u64` from `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // First index whose cumulative probability exceeds the draw.
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, SmallRng};

    #[test]
    fn same_seed_same_stream() {
        let z = Zipf::new(64, 1.1);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let sa: Vec<usize> = (0..256).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..256).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb, "a sample stream is a pure function of the seed");
    }

    #[test]
    fn ranks_stay_in_bounds_and_cover_the_head() {
        let z = Zipf::new(16, 1.1);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 16];
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!(r < 16);
            counts[r] += 1;
        }
        // Rank 0 dominates and frequencies decay down the rank order —
        // loose sanity bounds, not a statistical test.
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
        assert!(counts[0] > 2_000, "head rank under-sampled: {}", counts[0]);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.probability(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.5, 1.1, 2.0] {
            let z = Zipf::new(100, theta);
            let sum: f64 = (0..100).map(|i| z.probability(i)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta {theta}: sum {sum}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
