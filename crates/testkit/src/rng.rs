//! Seeded, deterministic pseudo-random number generation.
//!
//! [`SmallRng`] is a xoshiro256++ generator (Blackman & Vigna) whose state
//! is expanded from a 64-bit seed with SplitMix64 — the standard seeding
//! recipe for the xoshiro family. It is not cryptographically secure; it is
//! a fast, high-quality generator for workloads and property tests, and the
//! same seed always produces the same stream on every platform (all
//! arithmetic is explicit wrapping arithmetic on `u64`).
//!
//! The API mirrors the subset of the `rand` crate the workspace used:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open integer
//! and float ranges, and [`Rng::gen_bool`].

use std::ops::Range;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for deriving independent per-case seeds in
/// the property harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-number API used by workloads and tests.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: exactly the values representable in the
        // mantissa, so the result is uniform on the dyadic grid.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// A biased coin: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform sample from `range`. Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Map a uniform `u64` onto `0..span` without modulo bias (widening
/// multiply; Lemire's multiply-shift, sufficient for test workloads).
fn bounded(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = bounded(rng.next_u64(), span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )+};
}

int_sample_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample from empty range {}..{}",
            self.start,
            self.end
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// A small, fast xoshiro256++ generator.
///
/// The name mirrors `rand::rngs::SmallRng` (which is xoshiro-based on
/// 64-bit targets) so call sites read the same; the streams differ from the
/// `rand` crate's, which is fine — nothing in the workspace depends on a
/// particular stream, only on determinism given the seed.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // SplitMix64 never yields four consecutive zeros, so the all-zero
        // fixed point of xoshiro is unreachable.
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5..13i64);
            assert!((-5..13).contains(&v));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
            let f = r.gen_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.6)).count();
        assert!((5500..6500).contains(&hits), "got {hits} / 10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(0);
        let _ = r.gen_range(3..3i64);
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 from the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }
}
