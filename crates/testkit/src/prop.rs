//! A minimal property-testing harness with shrinking.
//!
//! A property test draws inputs from a [`Gen`] (built from the combinators
//! in this module), runs the property on each, and on failure *shrinks* the
//! failing input — repeatedly replacing it with a simpler input that still
//! fails — before reporting the minimal counterexample found. Every draw is
//! derived deterministically from the seed written in the test source, so a
//! reported failure is reproducible by re-running the test unchanged.
//!
//! The surface mirrors what the workspace's suites need from `proptest`:
//!
//! * combinators: [`ints`], [`floats`], [`bools`], [`option_of`],
//!   [`vec_of`], [`pair`], [`triple`], [`weighted`], [`just`], [`map`],
//!   [`from_fn`];
//! * the [`prop_test!`] macro declaring a `#[test]` with a case count and
//!   seed;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] for
//!   failures that carry a message (plain `assert!` and `unwrap` panics are
//!   also caught and shrunk).

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng, SeedableRng, SmallRng};

/// A generator of test inputs, with an optional notion of "simpler" inputs
/// used for shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. An empty vec
    /// means the value cannot be shrunk further.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// A boxed, type-erased generator (what [`weighted`] composes over).
pub type BoxGen<T> = Box<dyn Gen<Value = T>>;

impl<T: Clone + Debug> Gen for BoxGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Box a generator for use in heterogeneous collections.
pub fn boxed<G: Gen + 'static>(g: G) -> BoxGen<G::Value> {
    Box::new(g)
}

// ---------------------------------------------------------------------------
// Scalar generators
// ---------------------------------------------------------------------------

/// Integer types [`ints`] can generate.
pub trait PropInt: Copy + Clone + Debug + PartialEq + PartialOrd {
    /// Sample uniformly from `lo..hi`.
    fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
    /// Midpoint of `lo..=v`, used to shrink toward `lo`.
    fn midpoint(lo: Self, v: Self) -> Self;
    /// `v - 1`.
    fn pred(v: Self) -> Self;
}

macro_rules! prop_int {
    ($($t:ty),+ $(,)?) => {$(
        impl PropInt for $t {
            fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                rng.gen_range(lo..hi)
            }
            fn midpoint(lo: Self, v: Self) -> Self {
                lo + (v - lo) / 2
            }
            fn pred(v: Self) -> Self {
                v - 1
            }
        }
    )+};
}

prop_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// Uniform integers from a half-open range, shrinking toward the range
/// start.
pub fn ints<T: PropInt>(range: Range<T>) -> IntGen<T> {
    IntGen { range }
}

/// See [`ints`].
#[derive(Debug, Clone)]
pub struct IntGen<T> {
    range: Range<T>,
}

impl<T: PropInt> Gen for IntGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::sample(rng, self.range.start, self.range.end)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        let lo = self.range.start;
        if *value == lo {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mid = T::midpoint(lo, *value);
        if mid != lo && mid != *value {
            out.push(mid);
        }
        let pred = T::pred(*value);
        if pred != lo && !out.contains(&pred) {
            out.push(pred);
        }
        out
    }
}

/// Uniform floats from a half-open range, shrinking toward the range start.
pub fn floats(range: Range<f64>) -> FloatGen {
    FloatGen { range }
}

/// See [`floats`].
#[derive(Debug, Clone)]
pub struct FloatGen {
    range: Range<f64>,
}

impl Gen for FloatGen {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.range.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let lo = self.range.start;
        if *value == lo {
            return Vec::new();
        }
        let mid = lo + (*value - lo) / 2.0;
        if mid != lo && mid != *value {
            vec![lo, mid]
        } else {
            vec![lo]
        }
    }
}

/// Uniform booleans; `true` shrinks to `false`.
pub fn bools() -> BoolGen {
    BoolGen
}

/// See [`bools`].
#[derive(Debug, Clone)]
pub struct BoolGen;

impl Gen for BoolGen {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The constant generator; never shrinks.
pub fn just<T: Clone + Debug>(value: T) -> JustGen<T> {
    JustGen { value }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct JustGen<T> {
    value: T,
}

impl<T: Clone + Debug> Gen for JustGen<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.value.clone()
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// `None` half the time, otherwise `Some` of the inner generator. `Some(v)`
/// shrinks to `None` first, then through the inner generator's shrinks.
pub fn option_of<G: Gen>(inner: G) -> OptionGen<G> {
    OptionGen { inner }
}

/// See [`option_of`].
#[derive(Debug, Clone)]
pub struct OptionGen<G> {
    inner: G,
}

impl<G: Gen> Gen for OptionGen<G> {
    type Value = Option<G::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        match value {
            None => Vec::new(),
            Some(v) => std::iter::once(None)
                .chain(self.inner.shrink(v).into_iter().map(Some))
                .collect(),
        }
    }
}

/// Vectors whose length is drawn from `len` and whose elements come from
/// `elem`. Shrinks by halving, by dropping single elements, and by
/// shrinking individual elements, never going below the minimum length.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    VecGen { elem, len }
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    len: Range<usize>,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let mut out = Vec::new();
        if value.len() > min {
            // Aggressive first: cut to the front/back half.
            let half = (value.len() / 2).max(min);
            if half < value.len() {
                out.push(value[..half].to_vec());
                out.push(value[value.len() - half..].to_vec());
            }
            // Then drop one element at a time.
            for i in 0..value.len() {
                let mut c = value.clone();
                c.remove(i);
                out.push(c);
            }
        }
        // Finally shrink elements in place (a few candidates each, to keep
        // the fan-out bounded).
        for i in 0..value.len() {
            for s in self.elem.shrink(&value[i]).into_iter().take(4) {
                let mut c = value.clone();
                c[i] = s;
                out.push(c);
            }
        }
        out
    }
}

/// A pair of independent generators with component-wise shrinking.
pub fn pair<A: Gen, B: Gen>(a: A, b: B) -> PairGen<A, B> {
    PairGen { a, b }
}

/// See [`pair`].
#[derive(Debug, Clone)]
pub struct PairGen<A, B> {
    a: A,
    b: B,
}

impl<A: Gen, B: Gen> Gen for PairGen<A, B> {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (self.a.generate(rng), self.b.generate(rng))
    }
    fn shrink(&self, (a, b): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .a
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone()))
            .collect();
        out.extend(self.b.shrink(b).into_iter().map(|sb| (a.clone(), sb)));
        out
    }
}

/// A triple of independent generators with component-wise shrinking.
pub fn triple<A: Gen, B: Gen, C: Gen>(a: A, b: B, c: C) -> TripleGen<A, B, C> {
    TripleGen { a, b, c }
}

/// See [`triple`].
#[derive(Debug, Clone)]
pub struct TripleGen<A, B, C> {
    a: A,
    b: B,
    c: C,
}

impl<A: Gen, B: Gen, C: Gen> Gen for TripleGen<A, B, C> {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (
            self.a.generate(rng),
            self.b.generate(rng),
            self.c.generate(rng),
        )
    }
    fn shrink(&self, (a, b, c): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .a
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone(), c.clone()))
            .collect();
        out.extend(
            self.b
                .shrink(b)
                .into_iter()
                .map(|sb| (a.clone(), sb, c.clone())),
        );
        out.extend(
            self.c
                .shrink(c)
                .into_iter()
                .map(|sc| (a.clone(), b.clone(), sc)),
        );
        out
    }
}

/// Choose among alternatives with the given relative weights. Values shrink
/// through whichever alternative produced them *and* toward earlier
/// alternatives' capability is not tracked — place simpler alternatives
/// first and give them their own shrinks via [`from_fn`] when that matters.
pub fn weighted<T: Clone + Debug>(choices: Vec<(u32, BoxGen<T>)>) -> WeightedGen<T> {
    assert!(!choices.is_empty(), "weighted() needs at least one choice");
    assert!(
        choices.iter().any(|(w, _)| *w > 0),
        "weighted() needs a positive weight"
    );
    WeightedGen { choices }
}

/// See [`weighted`].
pub struct WeightedGen<T> {
    choices: Vec<(u32, BoxGen<T>)>,
}

impl<T: Clone + Debug> Gen for WeightedGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let total: u64 = self.choices.iter().map(|(w, _)| *w as u64).sum();
        let mut ticket = rng.gen_range(0..total);
        for (w, g) in &self.choices {
            if ticket < *w as u64 {
                return g.generate(rng);
            }
            ticket -= *w as u64;
        }
        unreachable!("ticket within total weight")
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        // Ask every alternative for shrinks; wrong-variant alternatives
        // return nothing or candidates that simply won't fail again.
        self.choices
            .iter()
            .flat_map(|(_, g)| g.shrink(value))
            .take(8)
            .collect()
    }
}

/// Apply `f` to the inner generator's values. Mapped values do not shrink
/// (the mapping cannot be inverted); use [`from_fn`] with a hand-written
/// shrink when shrinking matters for the mapped type.
pub fn map<G: Gen, U, F>(inner: G, f: F) -> MapGen<G, F>
where
    U: Clone + Debug,
    F: Fn(G::Value) -> U,
{
    MapGen { inner, f }
}

/// See [`map`].
pub struct MapGen<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, U, F> Gen for MapGen<G, F>
where
    U: Clone + Debug,
    F: Fn(G::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A generator from closures: `gen_f` draws a value, `shrink_f` proposes
/// simplifications. The escape hatch for enum inputs with custom shrinking.
pub fn from_fn<T, G, S>(gen_f: G, shrink_f: S) -> FnGen<G, S>
where
    T: Clone + Debug,
    G: Fn(&mut SmallRng) -> T,
    S: Fn(&T) -> Vec<T>,
{
    FnGen { gen_f, shrink_f }
}

/// See [`from_fn`].
pub struct FnGen<G, S> {
    gen_f: G,
    shrink_f: S,
}

impl<T, G, S> Gen for FnGen<G, S>
where
    T: Clone + Debug,
    G: Fn(&mut SmallRng) -> T,
    S: Fn(&T) -> Vec<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.gen_f)(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink_f)(value)
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Harness configuration: how many cases to run, the seed that determines
/// them all, and a bound on shrinking effort.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Master seed; each case derives its own sub-seed from it.
    pub seed: u64,
    /// Maximum accepted shrink steps before reporting.
    pub max_shrink_steps: u32,
}

impl Config {
    /// A config with the default shrink budget.
    pub fn new(cases: u32, seed: u64) -> Self {
        Config {
            cases,
            seed,
            max_shrink_steps: 512,
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_case<V, F>(test: &mut F, value: &V) -> Result<(), String>
where
    F: FnMut(&V) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(r) => r,
        Err(payload) => Err(format!("panic: {}", panic_message(payload))),
    }
}

/// Run `cfg.cases` random cases of `test` over inputs from `gen`, shrinking
/// and reporting the first failure. Panics (failing the `#[test]`) with the
/// minimal counterexample, the master seed, and the failing case index.
///
/// Prefer the [`prop_test!`](crate::prop_test) macro, which wraps this.
pub fn run<G, F>(name: &str, cfg: &Config, gen: &G, mut test: F)
where
    G: Gen,
    F: FnMut(&G::Value) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        // Per-case sub-seed: reproducible independently of earlier cases.
        let mut s = cfg.seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let sub_seed = splitmix64(&mut s);
        let mut rng = SmallRng::seed_from_u64(sub_seed);
        let value = gen.generate(&mut rng);
        if let Err(first_msg) = run_case(&mut test, &value) {
            let (minimal, msg, steps) = shrink_failure(gen, &mut test, value, first_msg, cfg);
            panic!(
                "[{name}] property failed at case {case}/{} (seed {:#x}, {steps} shrink steps)\n\
                 minimal failing input: {minimal:#?}\n{msg}",
                cfg.cases, cfg.seed
            );
        }
    }
}

fn shrink_failure<G, F>(
    gen: &G,
    test: &mut F,
    mut value: G::Value,
    mut msg: String,
    cfg: &Config,
) -> (G::Value, String, u32)
where
    G: Gen,
    F: FnMut(&G::Value) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in gen.shrink(&value) {
            if let Err(m) = run_case(test, &candidate) {
                value = candidate;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate still fails
    }
    (value, msg, steps)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare a property test.
///
/// ```ignore
/// chronicle_testkit::prop_test! {
///     /// Doubling is monotone.
///     fn doubling_monotone(cases = 64, seed = 0x1DEA;
///         x in ints(0..1000i64),
///         ys in vec_of(ints(0..10i64), 0..5),
///     ) {
///         prop_assert!(2 * x >= x, "x = {}", x);
///     }
/// }
/// ```
///
/// Each named input draws from its generator; on failure the whole input
/// tuple is shrunk component-wise and the minimal counterexample reported
/// together with the seed, which is fixed in the source for
/// reproducibility.
#[macro_export]
macro_rules! prop_test {
    (
        $(#[$meta:meta])*
        fn $name:ident(cases = $cases:expr, seed = $seed:expr;
            $($arg:ident in $gen:expr),+ $(,)?
        ) $body:block
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg = $crate::prop::Config::new($cases, $seed);
            let __gen = $crate::__prop_nest_gen!($($gen),+);
            $crate::prop::run(stringify!($name), &__cfg, &__gen, |__value| {
                let $crate::__prop_nest_pat!($($arg),+) = __value.clone();
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    };
}

/// Internal: right-nest generators into pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_nest_gen {
    ($g:expr) => { $g };
    ($g:expr, $($rest:expr),+) => {
        $crate::prop::pair($g, $crate::__prop_nest_gen!($($rest),+))
    };
}

/// Internal: right-nest bindings to match [`__prop_nest_gen`].
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_nest_pat {
    ($a:ident) => { $a };
    ($a:ident, $($rest:ident),+) => {
        ($a, $crate::__prop_nest_pat!($($rest),+))
    };
}

/// Fail the enclosing property when `cond` is false (with an optional
/// format message), recording the failure for shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fail the enclosing property when the two sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err(format!(
                "prop_assert_eq! failed\n  left: {:?}\n right: {:?}",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err(format!(
                "prop_assert_eq! failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Fail the enclosing property when the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err(format!(
                "prop_assert_ne! failed: both sides equal {:?}",
                __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err(format!(
                "prop_assert_ne! failed: {} (both sides equal {:?})",
                format!($($fmt)+), __l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g = vec_of(ints(0..100i64), 0..10);
        let mut r1 = SmallRng::seed_from_u64(99);
        let mut r2 = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(g.generate(&mut r1), g.generate(&mut r2));
        }
    }

    #[test]
    fn int_shrink_moves_toward_start() {
        let g = ints(3..100i64);
        assert!(g.shrink(&3).is_empty());
        let c = g.shrink(&50);
        assert!(c.contains(&3));
        assert!(c.iter().all(|&v| (3..50).contains(&v)));
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let g = vec_of(ints(0..10i64), 2..6);
        let v = vec![5, 6, 7, 8];
        for cand in g.shrink(&v) {
            assert!(cand.len() >= 2, "candidate too short: {cand:?}");
        }
        // A vec at min length only shrinks elements.
        for cand in g.shrink(&vec![4, 9]) {
            assert_eq!(cand.len(), 2);
        }
    }

    #[test]
    fn weighted_hits_every_choice() {
        let g = weighted(vec![
            (1, boxed(just(0u8))),
            (2, boxed(just(1u8))),
            (3, boxed(just(2u8))),
        ]);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[g.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // Property: no element exceeds 100. With inputs up to 1000 it
        // fails; the minimal counterexample is a single-element vec [101].
        let cfg = Config::new(64, 0xBEEF);
        let gen = vec_of(ints(0..1000i64), 0..20);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("shrink_demo", &cfg, &gen, |v| {
                if v.iter().any(|&x| x > 100) {
                    Err("element over 100".into())
                } else {
                    Ok(())
                }
            });
        }));
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(
            msg.contains("101"),
            "shrinking should reach the boundary value 101, got:\n{msg}"
        );
        assert!(msg.contains("seed 0xbeef"), "seed reported: {msg}");
    }

    #[test]
    fn panics_inside_properties_are_caught_and_shrunk() {
        let cfg = Config::new(32, 7);
        let gen = ints(0..50i64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("panic_demo", &cfg, &gen, |&x| {
                assert!(x < 10, "x too big: {x}");
                Ok(())
            });
        }));
        let msg = panic_message(result.expect_err("property must fail"));
        // Shrinking drives x down to the boundary 10.
        assert!(msg.contains("minimal failing input: 10"), "got:\n{msg}");
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::new(100, 1);
        let gen = pair(ints(0..10i64), bools());
        let mut count = 0;
        run("pass_demo", &cfg, &gen, |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 100);
    }

    prop_test! {
        /// The macro itself: addition commutes.
        fn macro_smoke(cases = 32, seed = 0xD06;
            a in ints(-50..50i64),
            b in ints(-50..50i64),
            flip in bools(),
        ) {
            let (x, y) = if flip { (b, a) } else { (a, b) };
            prop_assert_eq!(x + y, y + x);
            prop_assert!(a + b == b + a, "commutes for {} {}", a, b);
        }
    }

    prop_test! {
        /// A deliberately false property: the harness must fail it (and
        /// shrinking must terminate), which `should_panic` verifies.
        #[should_panic(expected = "property failed")]
        fn macro_reports_failures(cases = 16, seed = 0xBAD;
            xs in vec_of(ints(0..100i64), 1..10),
        ) {
            prop_assert!(xs.iter().sum::<i64>() < 40, "sum reached {}", xs.iter().sum::<i64>());
        }
    }
}
