//! Quickstart: the chronicle data model in ten statements.
//!
//! Run with `cargo run --example quickstart`.
//!
//! A chronicle database is the quadruple (C, R, L, V) of the paper
//! (Def. 2.1): chronicles, relations, a view-definition language, and
//! persistent views maintained incrementally on every append — without
//! storing the chronicle.

use chronicle::prelude::*;

fn main() -> Result<(), ChronicleError> {
    let mut db = ChronicleDb::new();

    // C: an append-only chronicle of call records. RETAIN NONE means the
    // chronicle itself is never stored — the paper's headline constraint.
    db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)")?;

    // R: an ordinary relation (proactive updates only).
    db.execute(
        "CREATE RELATION customers (acct INT, name STRING, plan STRING, PRIMARY KEY (acct))",
    )?;
    db.execute("INSERT INTO customers VALUES (555, 'alice', 'gold'), (777, 'bob', 'basic')")?;

    // L & V: persistent views, written declaratively. The planner validates
    // them into the chronicle algebra and classifies their maintenance
    // complexity before any data flows.
    db.execute(
        "CREATE VIEW total_minutes AS \
         SELECT caller, SUM(minutes) AS minutes_called, COUNT(*) AS calls \
         FROM calls GROUP BY caller",
    )?;
    db.execute(
        "CREATE VIEW gold_minutes AS \
         SELECT caller, SUM(minutes) AS m FROM calls \
         JOIN customers ON caller = acct WHERE plan = 'gold' GROUP BY caller",
    )?;

    let v = db.maintainer().view_by_name("total_minutes")?;
    println!(
        "view `total_minutes` is in {} => {}",
        v.expr().language_name(),
        v.expr().im_class()
    );
    let v = db.maintainer().view_by_name("gold_minutes")?;
    println!(
        "view `gold_minutes`  is in {} => {}\n",
        v.expr().language_name(),
        v.expr().im_class()
    );

    // Transactions stream in; every append maintains all affected views in
    // time independent of how much history has flowed through.
    db.execute("APPEND INTO calls VALUES (555, 12.5)")?;
    db.execute("APPEND INTO calls VALUES (777, 3.0)")?;
    db.execute("APPEND INTO calls VALUES (555, 4.5), (777, 1.0)")?;

    // Summary queries are point lookups on the materialized views —
    // "answered in subseconds" regardless of chronicle size (§1).
    for caller in [555i64, 777] {
        let row = db
            .query_view_key("total_minutes", &[Value::Int(caller)])?
            .expect("caller has activity");
        println!(
            "caller {caller}: {} minutes over {} calls",
            row.get(1),
            row.get(2)
        );
    }
    let gold = db.query_view("gold_minutes")?;
    println!("\ngold-plan minutes: {gold:?}");

    // The chronicle was never stored...
    let calls_id = db.catalog().chronicle_id("calls")?;
    let chronicle = db.catalog().chronicle(calls_id);
    println!(
        "\nchronicle `calls`: {} tuples appended, {} stored",
        chronicle.total_appended(),
        chronicle.stored_len()
    );
    // ...and maintenance stats confirm the views were kept current anyway.
    println!(
        "appends: {}, mean maintenance: {:.0} ns",
        db.stats().appends,
        db.stats().mean_maintenance_nanos()
    );
    Ok(())
}
