//! An interactive shell for the chronicle database.
//!
//! Run with `cargo run --example repl` for an in-memory session, or
//! `cargo run --example repl -- /path/to/db` for a durable one (the path
//! is created on first use and recovered on every start). Add
//! `shards=N` to run the maintenance engine hash-partitioned by
//! chronicle group into N shards (`cargo run --example repl -- /path/to/db
//! shards=4`); a durable sharded database must be reopened with the same
//! N it was created with. Add `salvage` to open under
//! [`RecoveryPolicy::Salvage`]: instead of refusing a corrupt disk, the
//! open recovers the maximal legal prefix, quarantines every untrusted
//! file, and prints the salvage report. Then type statements:
//!
//! ```text
//! chronicle> CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)
//! chronicle> CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller
//! chronicle> APPEND INTO calls VALUES (555, 12.5)
//! chronicle> SELECT * FROM totals
//! chronicle> .views          -- list views with their IM classes
//! chronicle> .stats          -- maintenance + durability statistics
//! chronicle> .checkpoint     -- persist views, truncate the WAL (\checkpoint works too)
//! chronicle> .scrub          -- read-only integrity check of every durable file
//! chronicle> .quit
//! ```
//!
//! The same binary also speaks the wire protocol (`chronicle::net`). A
//! leading mode word picks the role:
//!
//! ```text
//! repl serve <path> [shards=N] [addr=HOST:PORT] [salvage]
//!     Open the database and serve SQL sessions + WAL shipping on
//!     addr (default 127.0.0.1:7878). The console stays interactive
//!     (.stats / .quit).
//! repl follow <leader HOST:PORT> <path> [ro=HOST:PORT] [salvage]
//!     Start a follower: ship the leader's WAL into a local database at
//!     <path> and keep views maintained. With ro=, also serve read-only
//!     SELECTs on that address. Console: .lag / .applied / .views /
//!     SELECT … / .quit.
//! repl connect <HOST:PORT>
//!     A SQL shell over the wire against a leader (full SQL) or a
//!     follower's ro= listener (SELECT only).
//! ```

use std::io::{BufRead, Write};

use chronicle::db::pipeline::ShardedPipeline;
use chronicle::db::{ExecOutcome, ShardedDb};
use chronicle::net::{Client, RemoteOutcome, Replica, Server};
use chronicle::prelude::*;

/// The repl drives either a plain database or a sharded one behind the
/// same command surface.
enum Session {
    Single(Box<ChronicleDb>),
    Sharded(Box<ShardedDb>),
}

impl Session {
    fn execute(&mut self, sql: &str) -> Result<ExecOutcome, ChronicleError> {
        match self {
            Session::Single(db) => db.execute(sql),
            Session::Sharded(db) => db.execute(sql),
        }
    }

    fn stats(&self) -> chronicle::db::DbStats {
        match self {
            Session::Single(db) => db.stats().clone(),
            Session::Sharded(db) => db.stats(),
        }
    }

    fn is_durable(&self) -> bool {
        match self {
            Session::Single(db) => db.is_durable(),
            Session::Sharded(db) => db.shard(0).is_durable(),
        }
    }

    fn print_views(&self) {
        let print = |shard: Option<usize>, db: &ChronicleDb| {
            for v in db.maintainer().iter_views() {
                let origin = shard.map(|s| format!("s{s} ")).unwrap_or_default();
                println!(
                    "{origin}{:<24} {:<10} {:<12} rows={:<8} {}",
                    v.name(),
                    v.expr().language_name(),
                    v.expr().im_class().to_string(),
                    v.len(),
                    v.expr()
                );
            }
        };
        match self {
            Session::Single(db) => print(None, db),
            Session::Sharded(db) => {
                for (i, shard) in db.shards().iter().enumerate() {
                    print(Some(i), shard);
                }
            }
        }
    }

    fn scrub(&self) {
        if !self.is_durable() {
            println!("nothing to scrub: this session is in-memory");
            return;
        }
        let result = match self {
            Session::Single(db) => db.scrub(),
            Session::Sharded(db) => db.scrub(),
        };
        match result {
            Ok(report) => println!("{report}"),
            Err(e) => println!("scrub failed: {e}"),
        }
    }

    /// After a durable open: surface what salvage recovery had to do, if
    /// anything. Quiet on clean opens and under `Strict` (no report).
    fn print_salvage(&self) {
        match self {
            Session::Single(db) => {
                if let Some(sr) = &db.stats().salvage {
                    if !sr.is_trivial() {
                        print!("{sr}");
                    }
                }
            }
            Session::Sharded(db) => {
                for (i, sr) in db.salvage_reports() {
                    if !sr.is_trivial() {
                        println!("shard {i}:");
                        print!("{sr}");
                    }
                }
                if db.manifest_salvaged() {
                    println!("shard manifest was corrupt: quarantined and rewritten");
                }
            }
        }
    }

    fn checkpoint(&mut self) {
        match self {
            Session::Single(db) => match db.checkpoint() {
                Ok(lsn) => println!("checkpoint written through lsn {lsn}"),
                Err(e) => println!("error: {e}"),
            },
            Session::Sharded(db) => match db.checkpoint() {
                Ok(lsns) => {
                    for (i, lsn) in lsns.iter().enumerate() {
                        println!("shard {i}: checkpoint written through lsn {lsn}");
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(&args[1..]),
        Some("follow") => return follow_main(&args[1..]),
        Some("connect") => return connect_main(&args[1..]),
        _ => {}
    }
    let mut path: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut recovery = RecoveryPolicy::Strict;
    for arg in args {
        if let Some(n) = arg.strip_prefix("shards=") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => {
                    eprintln!("invalid shard count `{n}` (want shards=N, N >= 1)");
                    std::process::exit(1);
                }
            }
        } else if arg == "salvage" {
            recovery = RecoveryPolicy::Salvage;
        } else {
            path = Some(arg);
        }
    }
    let opts = DurabilityOptions {
        recovery,
        ..DurabilityOptions::default()
    };
    let mut db = match (path, shards) {
        (Some(path), None) => match ChronicleDb::open_with(&path, opts) {
            Ok(db) => {
                let s = db.stats();
                println!(
                    "opened `{path}` (checkpoint lsn {:?}, {} WAL records replayed)",
                    s.recovery_checkpoint_lsn, s.recovery_replayed_records
                );
                let session = Session::Single(Box::new(db));
                session.print_salvage();
                session
            }
            Err(e) => {
                eprintln!("cannot open `{path}`: {e}");
                std::process::exit(1);
            }
        },
        (Some(path), Some(n)) => match ShardedDb::open_with(&path, n, opts) {
            Ok(db) => {
                let s = db.stats();
                println!(
                    "opened `{path}` across {n} shard(s) ({} WAL records replayed)",
                    s.recovery_replayed_records
                );
                let session = Session::Sharded(Box::new(db));
                session.print_salvage();
                session
            }
            Err(e) => {
                eprintln!("cannot open `{path}` with {n} shard(s): {e}");
                std::process::exit(1);
            }
        },
        (None, Some(n)) => Session::Sharded(Box::new(ShardedDb::new(n).expect("shards >= 1"))),
        (None, None) => Session::Single(Box::new(ChronicleDb::new())),
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("chronicle repl — SQL statements, or .views / .stats / .checkpoint / .scrub / .quit");
    loop {
        print!("chronicle> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".views" => {
                db.print_views();
                continue;
            }
            ".stats" => {
                let s = db.stats();
                println!(
                    "appends: {}  tuples: {}  mean maintenance: {:.0} ns  p99: {} ns",
                    s.appends,
                    s.tuples_appended,
                    s.mean_maintenance_nanos(),
                    s.latency_percentile(0.99)
                );
                println!(
                    "router: {} guard-skips, {} interval-skips; work: {:?}",
                    s.skipped_by_guard, s.skipped_by_interval, s.work
                );
                if db.is_durable() {
                    println!(
                        "wal: {} records, {} bytes, {} flushes; checkpoints: {}",
                        s.wal_records, s.wal_bytes, s.wal_flushes, s.checkpoints
                    );
                }
                continue;
            }
            ".checkpoint" | "\\checkpoint" => {
                db.checkpoint();
                continue;
            }
            ".scrub" => {
                db.scrub();
                continue;
            }
            _ => {}
        }
        match db.execute(line) {
            Ok(ExecOutcome::Created(kind, name)) => println!("created {kind} `{name}`"),
            Ok(ExecOutcome::Appended(o)) => println!(
                "appended at {} ({} views maintained in {} ns)",
                o.seq,
                o.report.views.len(),
                o.report.elapsed_nanos
            ),
            Ok(ExecOutcome::RelationChanged(n)) => println!("{n} row(s) changed"),
            Ok(ExecOutcome::Rows(rows)) => {
                for r in &rows {
                    println!("{r}");
                }
                println!("({} row(s))", rows.len());
            }
            Ok(ExecOutcome::Dropped(name)) => println!("dropped `{name}`"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}

/// Prompt, read one trimmed console line; `None` on EOF or read error.
fn read_line(prompt: &str) -> Option<String> {
    print!("{prompt}");
    std::io::stdout().flush().ok();
    let mut line = String::new();
    match std::io::stdin().lock().read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim().to_string()),
        Err(e) => {
            eprintln!("read error: {e}");
            None
        }
    }
}

fn print_remote(outcome: RemoteOutcome) {
    match outcome {
        RemoteOutcome::Created(kind, name) => println!("created {kind} `{name}`"),
        RemoteOutcome::Appended { seq, at } => println!("appended at {seq} (chronon {at})"),
        RemoteOutcome::RelationChanged(n) => println!("{n} row(s) changed"),
        RemoteOutcome::Rows(rows) => {
            for r in &rows {
                println!("{r}");
            }
            println!("({} row(s))", rows.len());
        }
        RemoteOutcome::Dropped(name) => println!("dropped `{name}`"),
    }
}

/// `repl serve <path> [shards=N] [addr=HOST:PORT] [salvage]` — the leader:
/// open a durable database, serve SQL sessions and WAL shipping on a TCP
/// listener, and keep a small console for the operator.
fn serve_main(args: &[String]) {
    let mut path: Option<String> = None;
    let mut shards = 1usize;
    let mut addr = String::from("127.0.0.1:7878");
    let mut recovery = RecoveryPolicy::Strict;
    for arg in args {
        if let Some(n) = arg.strip_prefix("shards=") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => shards = n,
                _ => {
                    eprintln!("invalid shard count `{n}` (want shards=N, N >= 1)");
                    std::process::exit(1);
                }
            }
        } else if let Some(a) = arg.strip_prefix("addr=") {
            addr = a.to_string();
        } else if arg == "salvage" {
            recovery = RecoveryPolicy::Salvage;
        } else {
            path = Some(arg.clone());
        }
    }
    let Some(path) = path else {
        eprintln!("usage: repl serve <path> [shards=N] [addr=HOST:PORT] [salvage]");
        std::process::exit(1);
    };
    let opts = DurabilityOptions {
        recovery,
        ..DurabilityOptions::default()
    };
    let db = match ShardedDb::open_with(&path, shards, opts) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot open `{path}` with {shards} shard(s): {e}");
            std::process::exit(1);
        }
    };
    let pipeline = ShardedPipeline::start(db, 64);
    let server = match Server::start(pipeline.handle(), &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serving `{path}` ({shards} shard(s)) on {} — clients: `repl connect {0}`, \
         followers: `repl follow {0} <path>`",
        server.addr()
    );
    let handle = pipeline.handle();
    while let Some(line) = read_line("leader> ") {
        match line.as_str() {
            "" => continue,
            ".quit" | ".exit" => break,
            ".stats" => match handle.stats() {
                Ok(s) => println!(
                    "appends: {}  tuples: {}  wal: {} records / {} bytes  \
                     checkpoints: {}  sessions accepted: {}",
                    s.appends,
                    s.tuples_appended,
                    s.wal_records,
                    s.wal_bytes,
                    s.checkpoints,
                    server.sessions_accepted()
                ),
                Err(e) => println!("error: {e}"),
            },
            other => {
                println!("unknown command `{other}` — SQL goes over the wire (`repl connect`)")
            }
        }
    }
    server.stop();
    pipeline.shutdown();
    println!("bye");
}

/// `repl follow <leader HOST:PORT> <path> [ro=HOST:PORT] [salvage]` — a
/// follower: continuous WAL ingest from the leader into a local database,
/// optionally serving read-only SELECTs, with a console for lag and local
/// queries.
fn follow_main(args: &[String]) {
    let mut positional: Vec<String> = Vec::new();
    let mut ro: Option<String> = None;
    let mut recovery = RecoveryPolicy::Strict;
    for arg in args {
        if let Some(a) = arg.strip_prefix("ro=") {
            ro = Some(a.to_string());
        } else if arg == "salvage" {
            recovery = RecoveryPolicy::Salvage;
        } else {
            positional.push(arg.clone());
        }
    }
    let [leader, path] = positional.as_slice() else {
        eprintln!("usage: repl follow <leader HOST:PORT> <path> [ro=HOST:PORT] [salvage]");
        std::process::exit(1);
    };
    let opts = DurabilityOptions {
        recovery,
        ..DurabilityOptions::default()
    };
    let mut replica = match Replica::start(leader, path, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot follow {leader}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "following {leader} into `{path}` ({} shard(s))",
        replica
            .follower()
            .lock()
            .expect("follower lock")
            .shard_count()
    );
    if let Some(ro) = ro {
        match replica.serve(&ro) {
            Ok(a) => println!("read-only listener on {a} — `repl connect {a}`"),
            Err(e) => {
                eprintln!("cannot listen on {ro}: {e}");
                std::process::exit(1);
            }
        }
    }
    while let Some(line) = read_line("follower> ") {
        match line.as_str() {
            "" => continue,
            ".quit" | ".exit" => break,
            ".lag" => match replica.replication_lag() {
                Some(lag) => println!(
                    "{lag} record(s) behind the leader's durable frontier \
                     (connected: {})",
                    replica.connected()
                ),
                None => println!("no heartbeat yet (connected: {})", replica.connected()),
            },
            ".applied" => println!("applied lsns per shard: {:?}", replica.applied_lsns()),
            sql => {
                // Local reads against the continuously maintained views;
                // everything else belongs on the leader.
                let f = replica.follower();
                let f = f.lock().expect("follower lock");
                match chronicle::sql::parse(sql) {
                    Ok(chronicle::sql::Statement::Select { target, filters }) => {
                        match f.select(&target, &filters) {
                            Ok(rows) => {
                                for r in &rows {
                                    println!("{r}");
                                }
                                println!("({} row(s))", rows.len());
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    Ok(_) => println!("read-only follower: only SELECT runs here"),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
    match replica.stop() {
        Ok(_) => println!("bye"),
        Err(e) => {
            eprintln!("ingest ended with error: {e}");
            std::process::exit(1);
        }
    }
}

/// `repl connect <HOST:PORT>` — a SQL shell over the wire, against either
/// a leader (full SQL) or a follower's read-only listener (SELECT only).
fn connect_main(args: &[String]) {
    let [addr] = args else {
        eprintln!("usage: repl connect <HOST:PORT>");
        std::process::exit(1);
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "connected to {addr} ({} shard(s)) — SQL statements, or .stats / .quit",
        client.shards()
    );
    while let Some(line) = read_line("remote> ") {
        match line.as_str() {
            "" => continue,
            ".quit" | ".exit" => break,
            ".stats" => match client.stats() {
                Ok(s) => {
                    println!(
                        "appends: {}  tuples: {}  wal: {} records / {} bytes  \
                         checkpoints: {}",
                        s.appends, s.tuples_appended, s.wal_records, s.wal_bytes, s.checkpoints
                    );
                    println!(
                        "net: {} sessions, {} frames in, {} frames out, \
                         {} requests (p50 {} ns, p99 {} ns), {} WAL bytes shipped",
                        s.net_sessions,
                        s.net_frames_in,
                        s.net_frames_out,
                        s.net_requests,
                        s.net_latency_p50_nanos,
                        s.net_latency_p99_nanos,
                        s.net_shipped_bytes
                    );
                    if let (Some(applied), Some(lag)) = (s.follower_applied_lsn, s.replication_lag)
                    {
                        println!("follower: applied lsn {applied}, {lag} record(s) behind");
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            sql => match client.sql(sql) {
                Ok(outcome) => print_remote(outcome),
                Err(e) => println!("error: {e}"),
            },
        }
    }
    client.goodbye();
    println!("bye");
}
