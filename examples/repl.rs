//! An interactive shell for the chronicle database.
//!
//! Run with `cargo run --example repl` for an in-memory session, or
//! `cargo run --example repl -- /path/to/db` for a durable one (the path
//! is created on first use and recovered on every start). Then type
//! statements:
//!
//! ```text
//! chronicle> CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)
//! chronicle> CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller
//! chronicle> APPEND INTO calls VALUES (555, 12.5)
//! chronicle> SELECT * FROM totals
//! chronicle> .views          -- list views with their IM classes
//! chronicle> .stats          -- maintenance + durability statistics
//! chronicle> .checkpoint     -- persist views, truncate the WAL (\checkpoint works too)
//! chronicle> .quit
//! ```

use std::io::{BufRead, Write};

use chronicle::db::ExecOutcome;
use chronicle::prelude::*;

fn main() {
    let mut db = match std::env::args().nth(1) {
        Some(path) => match ChronicleDb::open(&path) {
            Ok(db) => {
                let s = db.stats();
                println!(
                    "opened `{path}` (checkpoint lsn {:?}, {} WAL records replayed)",
                    s.recovery_checkpoint_lsn, s.recovery_replayed_records
                );
                db
            }
            Err(e) => {
                eprintln!("cannot open `{path}`: {e}");
                std::process::exit(1);
            }
        },
        None => ChronicleDb::new(),
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("chronicle repl — SQL statements, or .views / .stats / .checkpoint / .quit");
    loop {
        print!("chronicle> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".views" => {
                for v in db.maintainer().iter_views() {
                    println!(
                        "{:<24} {:<10} {:<12} rows={:<8} {}",
                        v.name(),
                        v.expr().language_name(),
                        v.expr().im_class().to_string(),
                        v.len(),
                        v.expr()
                    );
                }
                continue;
            }
            ".stats" => {
                let s = db.stats();
                println!(
                    "appends: {}  tuples: {}  mean maintenance: {:.0} ns  p99: {} ns",
                    s.appends,
                    s.tuples_appended,
                    s.mean_maintenance_nanos(),
                    s.latency_percentile(0.99)
                );
                println!(
                    "router: {} guard-skips, {} interval-skips; work: {:?}",
                    s.skipped_by_guard, s.skipped_by_interval, s.work
                );
                if db.is_durable() {
                    println!(
                        "wal: {} records, {} bytes, {} flushes; checkpoints: {}",
                        s.wal_records, s.wal_bytes, s.wal_flushes, s.checkpoints
                    );
                }
                continue;
            }
            ".checkpoint" | "\\checkpoint" => {
                match db.checkpoint() {
                    Ok(lsn) => println!("checkpoint written through lsn {lsn}"),
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
            _ => {}
        }
        match db.execute(line) {
            Ok(ExecOutcome::Created(kind, name)) => println!("created {kind} `{name}`"),
            Ok(ExecOutcome::Appended(o)) => println!(
                "appended at {} ({} views maintained in {} ns)",
                o.seq,
                o.report.views.len(),
                o.report.elapsed_nanos
            ),
            Ok(ExecOutcome::RelationChanged(n)) => println!("{n} row(s) changed"),
            Ok(ExecOutcome::Rows(rows)) => {
                for r in &rows {
                    println!("{r}");
                }
                println!("({} row(s))", rows.len());
            }
            Ok(ExecOutcome::Dropped(name)) => println!("dropped `{name}`"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
