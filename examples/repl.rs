//! An interactive shell for the chronicle database.
//!
//! Run with `cargo run --example repl` for an in-memory session, or
//! `cargo run --example repl -- /path/to/db` for a durable one (the path
//! is created on first use and recovered on every start). Add
//! `shards=N` to run the maintenance engine hash-partitioned by
//! chronicle group into N shards (`cargo run --example repl -- /path/to/db
//! shards=4`); a durable sharded database must be reopened with the same
//! N it was created with. Add `salvage` to open under
//! [`RecoveryPolicy::Salvage`]: instead of refusing a corrupt disk, the
//! open recovers the maximal legal prefix, quarantines every untrusted
//! file, and prints the salvage report. Then type statements:
//!
//! ```text
//! chronicle> CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)
//! chronicle> CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller
//! chronicle> APPEND INTO calls VALUES (555, 12.5)
//! chronicle> SELECT * FROM totals
//! chronicle> .views          -- list views with their IM classes
//! chronicle> .stats          -- maintenance + durability statistics
//! chronicle> .checkpoint     -- persist views, truncate the WAL (\checkpoint works too)
//! chronicle> .scrub          -- read-only integrity check of every durable file
//! chronicle> .quit
//! ```

use std::io::{BufRead, Write};

use chronicle::db::{ExecOutcome, ShardedDb};
use chronicle::prelude::*;

/// The repl drives either a plain database or a sharded one behind the
/// same command surface.
enum Session {
    Single(Box<ChronicleDb>),
    Sharded(Box<ShardedDb>),
}

impl Session {
    fn execute(&mut self, sql: &str) -> Result<ExecOutcome, ChronicleError> {
        match self {
            Session::Single(db) => db.execute(sql),
            Session::Sharded(db) => db.execute(sql),
        }
    }

    fn stats(&self) -> chronicle::db::DbStats {
        match self {
            Session::Single(db) => db.stats().clone(),
            Session::Sharded(db) => db.stats(),
        }
    }

    fn is_durable(&self) -> bool {
        match self {
            Session::Single(db) => db.is_durable(),
            Session::Sharded(db) => db.shard(0).is_durable(),
        }
    }

    fn print_views(&self) {
        let print = |shard: Option<usize>, db: &ChronicleDb| {
            for v in db.maintainer().iter_views() {
                let origin = shard.map(|s| format!("s{s} ")).unwrap_or_default();
                println!(
                    "{origin}{:<24} {:<10} {:<12} rows={:<8} {}",
                    v.name(),
                    v.expr().language_name(),
                    v.expr().im_class().to_string(),
                    v.len(),
                    v.expr()
                );
            }
        };
        match self {
            Session::Single(db) => print(None, db),
            Session::Sharded(db) => {
                for (i, shard) in db.shards().iter().enumerate() {
                    print(Some(i), shard);
                }
            }
        }
    }

    fn scrub(&self) {
        if !self.is_durable() {
            println!("nothing to scrub: this session is in-memory");
            return;
        }
        let result = match self {
            Session::Single(db) => db.scrub(),
            Session::Sharded(db) => db.scrub(),
        };
        match result {
            Ok(report) => println!("{report}"),
            Err(e) => println!("scrub failed: {e}"),
        }
    }

    /// After a durable open: surface what salvage recovery had to do, if
    /// anything. Quiet on clean opens and under `Strict` (no report).
    fn print_salvage(&self) {
        match self {
            Session::Single(db) => {
                if let Some(sr) = &db.stats().salvage {
                    if !sr.is_trivial() {
                        print!("{sr}");
                    }
                }
            }
            Session::Sharded(db) => {
                for (i, sr) in db.salvage_reports() {
                    if !sr.is_trivial() {
                        println!("shard {i}:");
                        print!("{sr}");
                    }
                }
                if db.manifest_salvaged() {
                    println!("shard manifest was corrupt: quarantined and rewritten");
                }
            }
        }
    }

    fn checkpoint(&mut self) {
        match self {
            Session::Single(db) => match db.checkpoint() {
                Ok(lsn) => println!("checkpoint written through lsn {lsn}"),
                Err(e) => println!("error: {e}"),
            },
            Session::Sharded(db) => match db.checkpoint() {
                Ok(lsns) => {
                    for (i, lsn) in lsns.iter().enumerate() {
                        println!("shard {i}: checkpoint written through lsn {lsn}");
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        }
    }
}

fn main() {
    let mut path: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut recovery = RecoveryPolicy::Strict;
    for arg in std::env::args().skip(1) {
        if let Some(n) = arg.strip_prefix("shards=") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => {
                    eprintln!("invalid shard count `{n}` (want shards=N, N >= 1)");
                    std::process::exit(1);
                }
            }
        } else if arg == "salvage" {
            recovery = RecoveryPolicy::Salvage;
        } else {
            path = Some(arg);
        }
    }
    let opts = DurabilityOptions {
        recovery,
        ..DurabilityOptions::default()
    };
    let mut db = match (path, shards) {
        (Some(path), None) => match ChronicleDb::open_with(&path, opts) {
            Ok(db) => {
                let s = db.stats();
                println!(
                    "opened `{path}` (checkpoint lsn {:?}, {} WAL records replayed)",
                    s.recovery_checkpoint_lsn, s.recovery_replayed_records
                );
                let session = Session::Single(Box::new(db));
                session.print_salvage();
                session
            }
            Err(e) => {
                eprintln!("cannot open `{path}`: {e}");
                std::process::exit(1);
            }
        },
        (Some(path), Some(n)) => match ShardedDb::open_with(&path, n, opts) {
            Ok(db) => {
                let s = db.stats();
                println!(
                    "opened `{path}` across {n} shard(s) ({} WAL records replayed)",
                    s.recovery_replayed_records
                );
                let session = Session::Sharded(Box::new(db));
                session.print_salvage();
                session
            }
            Err(e) => {
                eprintln!("cannot open `{path}` with {n} shard(s): {e}");
                std::process::exit(1);
            }
        },
        (None, Some(n)) => Session::Sharded(Box::new(ShardedDb::new(n).expect("shards >= 1"))),
        (None, None) => Session::Single(Box::new(ChronicleDb::new())),
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("chronicle repl — SQL statements, or .views / .stats / .checkpoint / .scrub / .quit");
    loop {
        print!("chronicle> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".views" => {
                db.print_views();
                continue;
            }
            ".stats" => {
                let s = db.stats();
                println!(
                    "appends: {}  tuples: {}  mean maintenance: {:.0} ns  p99: {} ns",
                    s.appends,
                    s.tuples_appended,
                    s.mean_maintenance_nanos(),
                    s.latency_percentile(0.99)
                );
                println!(
                    "router: {} guard-skips, {} interval-skips; work: {:?}",
                    s.skipped_by_guard, s.skipped_by_interval, s.work
                );
                if db.is_durable() {
                    println!(
                        "wal: {} records, {} bytes, {} flushes; checkpoints: {}",
                        s.wal_records, s.wal_bytes, s.wal_flushes, s.checkpoints
                    );
                }
                continue;
            }
            ".checkpoint" | "\\checkpoint" => {
                db.checkpoint();
                continue;
            }
            ".scrub" => {
                db.scrub();
                continue;
            }
            _ => {}
        }
        match db.execute(line) {
            Ok(ExecOutcome::Created(kind, name)) => println!("created {kind} `{name}`"),
            Ok(ExecOutcome::Appended(o)) => println!(
                "appended at {} ({} views maintained in {} ns)",
                o.seq,
                o.report.views.len(),
                o.report.elapsed_nanos
            ),
            Ok(ExecOutcome::RelationChanged(n)) => println!("{n} row(s) changed"),
            Ok(ExecOutcome::Rows(rows)) => {
                for r in &rows {
                    println!("{r}");
                }
                println!("({} row(s))", rows.len());
            }
            Ok(ExecOutcome::Dropped(name)) => println!("dropped `{name}`"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
