//! An interactive shell for the chronicle database.
//!
//! Run with `cargo run --example repl` for an in-memory session, or
//! `cargo run --example repl -- /path/to/db` for a durable one (the path
//! is created on first use and recovered on every start). Add
//! `shards=N` to run the maintenance engine hash-partitioned by
//! chronicle group into N shards (`cargo run --example repl -- /path/to/db
//! shards=4`); a durable sharded database must be reopened with the same
//! N it was created with. Add `salvage` to open under
//! [`RecoveryPolicy::Salvage`]: instead of refusing a corrupt disk, the
//! open recovers the maximal legal prefix, quarantines every untrusted
//! file, and prints the salvage report. Then type statements:
//!
//! ```text
//! chronicle> CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)
//! chronicle> CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller
//! chronicle> APPEND INTO calls VALUES (555, 12.5)
//! chronicle> SELECT * FROM totals
//! chronicle> .views          -- list views with their IM classes
//! chronicle> .stats          -- maintenance + durability statistics
//! chronicle> .checkpoint     -- persist views, truncate the WAL (\checkpoint works too)
//! chronicle> .scrub          -- read-only integrity check of every durable file
//! chronicle> .quit
//! ```
//!
//! The same binary also speaks the wire protocol (`chronicle::net`). A
//! leading mode word picks the role:
//!
//! ```text
//! repl serve <path> [shards=N] [addr=HOST:PORT] [salvage]
//!     Open the database and serve SQL sessions + WAL shipping on
//!     addr (default 127.0.0.1:7878). The console stays interactive
//!     (.stats / .quit).
//! repl follow <leader HOST:PORT> <path> [ro=HOST:PORT] [salvage]
//!     Start a follower: ship the leader's WAL into a local database at
//!     <path> and keep views maintained. With ro=, also serve read-only
//!     SELECTs on that address. Console: .lag / .applied / SELECT … /
//!     .promote [addr=HOST:PORT] / .quit. `.promote` is the failover
//!     step: it stops ingest, bumps the leader term (fencing any stream
//!     the deposed leader still tries to ship), and turns this process
//!     into a serving leader on the given address.
//! repl connect <HOST:PORT[,HOST:PORT...]> [session=N]
//!     A SQL shell over the wire against a leader (full SQL) or a
//!     follower's ro= listener (SELECT only). With session=N every
//!     statement is stamped (session, seq) and sent through the retry
//!     client: timeouts, overload pushback, and fencing rotate through
//!     the comma-separated candidate addresses with backoff, and a
//!     stamp that was already applied is answered from the leader's
//!     dedupe cache instead of re-executing. `.session` inspects the
//!     stamp state (session id, next seq, retries, last term seen).
//! ```

use std::io::{BufRead, Write};

use chronicle::db::pipeline::{ShardedPipeline, ShardedPipelineHandle};
use chronicle::db::{ExecOutcome, ShardedDb};
use chronicle::net::{Client, RemoteOutcome, Replica, RetryClient, RetryPolicy, Server};
use chronicle::prelude::*;

/// The repl drives either a plain database or a sharded one behind the
/// same command surface.
enum Session {
    Single(Box<ChronicleDb>),
    Sharded(Box<ShardedDb>),
}

impl Session {
    fn execute(&mut self, sql: &str) -> Result<ExecOutcome, ChronicleError> {
        match self {
            Session::Single(db) => db.execute(sql),
            Session::Sharded(db) => db.execute(sql),
        }
    }

    fn stats(&self) -> chronicle::db::DbStats {
        match self {
            Session::Single(db) => db.stats().clone(),
            Session::Sharded(db) => db.stats(),
        }
    }

    fn is_durable(&self) -> bool {
        match self {
            Session::Single(db) => db.is_durable(),
            Session::Sharded(db) => db.shard(0).is_durable(),
        }
    }

    fn print_views(&self) {
        let print = |shard: Option<usize>, db: &ChronicleDb| {
            for v in db.maintainer().iter_views() {
                let origin = shard.map(|s| format!("s{s} ")).unwrap_or_default();
                println!(
                    "{origin}{:<24} {:<10} {:<12} rows={:<8} {}",
                    v.name(),
                    v.expr().language_name(),
                    v.expr().im_class().to_string(),
                    v.len(),
                    v.expr()
                );
            }
        };
        match self {
            Session::Single(db) => print(None, db),
            Session::Sharded(db) => {
                for (i, shard) in db.shards().iter().enumerate() {
                    print(Some(i), shard);
                }
            }
        }
    }

    fn scrub(&self) {
        if !self.is_durable() {
            println!("nothing to scrub: this session is in-memory");
            return;
        }
        let result = match self {
            Session::Single(db) => db.scrub(),
            Session::Sharded(db) => db.scrub(),
        };
        match result {
            Ok(report) => println!("{report}"),
            Err(e) => println!("scrub failed: {e}"),
        }
    }

    /// After a durable open: surface what salvage recovery had to do, if
    /// anything. Quiet on clean opens and under `Strict` (no report).
    fn print_salvage(&self) {
        match self {
            Session::Single(db) => {
                if let Some(sr) = &db.stats().salvage {
                    if !sr.is_trivial() {
                        print!("{sr}");
                    }
                }
            }
            Session::Sharded(db) => {
                for (i, sr) in db.salvage_reports() {
                    if !sr.is_trivial() {
                        println!("shard {i}:");
                        print!("{sr}");
                    }
                }
                if db.manifest_salvaged() {
                    println!("shard manifest was corrupt: quarantined and rewritten");
                }
            }
        }
    }

    fn checkpoint(&mut self) {
        match self {
            Session::Single(db) => match db.checkpoint() {
                Ok(lsn) => println!("checkpoint written through lsn {lsn}"),
                Err(e) => println!("error: {e}"),
            },
            Session::Sharded(db) => match db.checkpoint() {
                Ok(lsns) => {
                    for (i, lsn) in lsns.iter().enumerate() {
                        println!("shard {i}: checkpoint written through lsn {lsn}");
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(&args[1..]),
        Some("follow") => return follow_main(&args[1..]),
        Some("connect") => return connect_main(&args[1..]),
        _ => {}
    }
    let mut path: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut recovery = RecoveryPolicy::Strict;
    for arg in args {
        if let Some(n) = arg.strip_prefix("shards=") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => {
                    eprintln!("invalid shard count `{n}` (want shards=N, N >= 1)");
                    std::process::exit(1);
                }
            }
        } else if arg == "salvage" {
            recovery = RecoveryPolicy::Salvage;
        } else {
            path = Some(arg);
        }
    }
    let opts = DurabilityOptions {
        recovery,
        ..DurabilityOptions::default()
    };
    let mut db = match (path, shards) {
        (Some(path), None) => match ChronicleDb::open_with(&path, opts) {
            Ok(db) => {
                let s = db.stats();
                println!(
                    "opened `{path}` (checkpoint lsn {:?}, {} WAL records replayed)",
                    s.recovery_checkpoint_lsn, s.recovery_replayed_records
                );
                let session = Session::Single(Box::new(db));
                session.print_salvage();
                session
            }
            Err(e) => {
                eprintln!("cannot open `{path}`: {e}");
                std::process::exit(1);
            }
        },
        (Some(path), Some(n)) => match ShardedDb::open_with(&path, n, opts) {
            Ok(db) => {
                let s = db.stats();
                println!(
                    "opened `{path}` across {n} shard(s) ({} WAL records replayed)",
                    s.recovery_replayed_records
                );
                let session = Session::Sharded(Box::new(db));
                session.print_salvage();
                session
            }
            Err(e) => {
                eprintln!("cannot open `{path}` with {n} shard(s): {e}");
                std::process::exit(1);
            }
        },
        (None, Some(n)) => Session::Sharded(Box::new(ShardedDb::new(n).expect("shards >= 1"))),
        (None, None) => Session::Single(Box::new(ChronicleDb::new())),
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("chronicle repl — SQL statements, or .views / .stats / .checkpoint / .scrub / .quit");
    loop {
        print!("chronicle> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".views" => {
                db.print_views();
                continue;
            }
            ".stats" => {
                let s = db.stats();
                println!(
                    "appends: {}  tuples: {}  mean maintenance: {:.0} ns  p99: {} ns",
                    s.appends,
                    s.tuples_appended,
                    s.mean_maintenance_nanos(),
                    s.latency_percentile(0.99)
                );
                println!(
                    "router: {} guard-skips, {} interval-skips; work: {:?}",
                    s.skipped_by_guard, s.skipped_by_interval, s.work
                );
                if db.is_durable() {
                    println!(
                        "wal: {} records, {} bytes, {} flushes; checkpoints: {}",
                        s.wal_records, s.wal_bytes, s.wal_flushes, s.checkpoints
                    );
                }
                continue;
            }
            ".checkpoint" | "\\checkpoint" => {
                db.checkpoint();
                continue;
            }
            ".scrub" => {
                db.scrub();
                continue;
            }
            _ => {}
        }
        match db.execute(line) {
            Ok(ExecOutcome::Created(kind, name)) => println!("created {kind} `{name}`"),
            Ok(ExecOutcome::Appended(o)) => println!(
                "appended at {} ({} views maintained in {} ns)",
                o.seq,
                o.report.views.len(),
                o.report.elapsed_nanos
            ),
            Ok(ExecOutcome::RelationChanged(n)) => println!("{n} row(s) changed"),
            Ok(ExecOutcome::Rows(rows)) => {
                for r in &rows {
                    println!("{r}");
                }
                println!("({} row(s))", rows.len());
            }
            Ok(ExecOutcome::Dropped(name)) => println!("dropped `{name}`"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}

/// Prompt, read one trimmed console line; `None` on EOF or read error.
fn read_line(prompt: &str) -> Option<String> {
    print!("{prompt}");
    std::io::stdout().flush().ok();
    let mut line = String::new();
    match std::io::stdin().lock().read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim().to_string()),
        Err(e) => {
            eprintln!("read error: {e}");
            None
        }
    }
}

fn print_remote(outcome: RemoteOutcome) {
    match outcome {
        RemoteOutcome::Created(kind, name) => println!("created {kind} `{name}`"),
        RemoteOutcome::Appended { seq, at } => println!("appended at {seq} (chronon {at})"),
        RemoteOutcome::RelationChanged(n) => println!("{n} row(s) changed"),
        RemoteOutcome::Rows(rows) => {
            for r in &rows {
                println!("{r}");
            }
            println!("({} row(s))", rows.len());
        }
        RemoteOutcome::Dropped(name) => println!("dropped `{name}`"),
    }
}

/// `repl serve <path> [shards=N] [addr=HOST:PORT] [salvage]` — the leader:
/// open a durable database, serve SQL sessions and WAL shipping on a TCP
/// listener, and keep a small console for the operator.
fn serve_main(args: &[String]) {
    let mut path: Option<String> = None;
    let mut shards = 1usize;
    let mut addr = String::from("127.0.0.1:7878");
    let mut recovery = RecoveryPolicy::Strict;
    for arg in args {
        if let Some(n) = arg.strip_prefix("shards=") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => shards = n,
                _ => {
                    eprintln!("invalid shard count `{n}` (want shards=N, N >= 1)");
                    std::process::exit(1);
                }
            }
        } else if let Some(a) = arg.strip_prefix("addr=") {
            addr = a.to_string();
        } else if arg == "salvage" {
            recovery = RecoveryPolicy::Salvage;
        } else {
            path = Some(arg.clone());
        }
    }
    let Some(path) = path else {
        eprintln!("usage: repl serve <path> [shards=N] [addr=HOST:PORT] [salvage]");
        std::process::exit(1);
    };
    let opts = DurabilityOptions {
        recovery,
        ..DurabilityOptions::default()
    };
    let db = match ShardedDb::open_with(&path, shards, opts) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot open `{path}` with {shards} shard(s): {e}");
            std::process::exit(1);
        }
    };
    let pipeline = ShardedPipeline::start(db, 64);
    let server = match Server::start(pipeline.handle(), &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serving `{path}` ({shards} shard(s)) on {} — clients: `repl connect {0}`, \
         followers: `repl follow {0} <path>`",
        server.addr()
    );
    let handle = pipeline.handle();
    leader_console(&handle, &server);
    server.stop();
    pipeline.shutdown();
    println!("bye");
}

/// The serving leader's operator console (`.stats` / `.quit`), shared by
/// `repl serve` and a follower that just ran `.promote`.
fn leader_console(handle: &ShardedPipelineHandle, server: &Server) {
    while let Some(line) = read_line("leader> ") {
        match line.as_str() {
            "" => continue,
            ".quit" | ".exit" => break,
            ".stats" => match handle.stats() {
                Ok(s) => println!(
                    "appends: {}  tuples: {}  wal: {} records / {} bytes  \
                     checkpoints: {}  sessions accepted: {}",
                    s.appends,
                    s.tuples_appended,
                    s.wal_records,
                    s.wal_bytes,
                    s.checkpoints,
                    server.sessions_accepted()
                ),
                Err(e) => println!("error: {e}"),
            },
            other => {
                println!("unknown command `{other}` — SQL goes over the wire (`repl connect`)")
            }
        }
    }
}

/// `repl follow <leader HOST:PORT> <path> [ro=HOST:PORT] [salvage]` — a
/// follower: continuous WAL ingest from the leader into a local database,
/// optionally serving read-only SELECTs, with a console for lag and local
/// queries.
fn follow_main(args: &[String]) {
    let mut positional: Vec<String> = Vec::new();
    let mut ro: Option<String> = None;
    let mut recovery = RecoveryPolicy::Strict;
    for arg in args {
        if let Some(a) = arg.strip_prefix("ro=") {
            ro = Some(a.to_string());
        } else if arg == "salvage" {
            recovery = RecoveryPolicy::Salvage;
        } else {
            positional.push(arg.clone());
        }
    }
    let [leader, path] = positional.as_slice() else {
        eprintln!("usage: repl follow <leader HOST:PORT> <path> [ro=HOST:PORT] [salvage]");
        std::process::exit(1);
    };
    let opts = DurabilityOptions {
        recovery,
        ..DurabilityOptions::default()
    };
    let mut replica = match Replica::start(leader, path, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot follow {leader}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "following {leader} into `{path}` ({} shard(s))",
        replica
            .follower()
            .lock()
            .expect("follower lock")
            .shard_count()
    );
    if let Some(ro) = ro {
        match replica.serve(&ro) {
            Ok(a) => println!("read-only listener on {a} — `repl connect {a}`"),
            Err(e) => {
                eprintln!("cannot listen on {ro}: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut promote_addr: Option<String> = None;
    while let Some(line) = read_line("follower> ") {
        match line.as_str() {
            "" => continue,
            ".quit" | ".exit" => break,
            cmd if cmd == ".promote" || cmd.starts_with(".promote ") => {
                let rest = cmd[".promote".len()..].trim();
                let addr = rest.strip_prefix("addr=").unwrap_or(rest);
                promote_addr = Some(if addr.is_empty() {
                    // An ephemeral port: the bound address is printed once
                    // the listener is up.
                    String::from("127.0.0.1:0")
                } else {
                    addr.to_string()
                });
                break;
            }
            ".lag" => match replica.replication_lag() {
                Some(lag) => println!(
                    "{lag} record(s) behind the leader's durable frontier \
                     (connected: {})",
                    replica.connected()
                ),
                None => println!("no heartbeat yet (connected: {})", replica.connected()),
            },
            ".applied" => println!("applied lsns per shard: {:?}", replica.applied_lsns()),
            sql => {
                // Local reads against the continuously maintained views;
                // everything else belongs on the leader.
                let f = replica.follower();
                let f = f.lock().expect("follower lock");
                match chronicle::sql::parse(sql) {
                    Ok(chronicle::sql::Statement::Select { target, filters }) => {
                        match f.select(&target, &filters) {
                            Ok(rows) => {
                                for r in &rows {
                                    println!("{r}");
                                }
                                println!("({} row(s))", rows.len());
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    Ok(_) => println!("read-only follower: only SELECT runs here"),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
    let Some(addr) = promote_addr else {
        match replica.stop() {
            Ok(_) => println!("bye"),
            Err(e) => {
                eprintln!("ingest ended with error: {e}");
                std::process::exit(1);
            }
        }
        return;
    };
    // Failover: stop ingest, seal the replication state under a bumped
    // term (any stream the deposed leader still ships is answered with
    // the typed fencing error), and serve SQL sessions + WAL shipping
    // from this database. Retry clients find us through their candidate
    // address list.
    let db = match replica.promote() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("promotion failed: {e}");
            std::process::exit(1);
        }
    };
    let term = db.term();
    let pipeline = ShardedPipeline::start(db, 64);
    let server = match Server::start(pipeline.handle(), &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("promoted under term {term}, but cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "promoted: serving as leader under term {term} on {} — clients: \
         `repl connect {0}`, followers: `repl follow {0} <path>`",
        server.addr()
    );
    let handle = pipeline.handle();
    leader_console(&handle, &server);
    server.stop();
    pipeline.shutdown();
    println!("bye");
}

/// `repl connect <HOST:PORT[,...]> [session=N]` — a SQL shell over the
/// wire, against either a leader (full SQL) or a follower's read-only
/// listener (SELECT only). With `session=N` the shell runs through the
/// stamped [`RetryClient`] and survives failover by rotating through the
/// candidate addresses.
fn connect_main(args: &[String]) {
    let mut session: Option<u64> = None;
    let mut target: Option<String> = None;
    for arg in args {
        if let Some(s) = arg.strip_prefix("session=") {
            match s.parse::<u64>() {
                Ok(n) if n > 0 => session = Some(n),
                _ => {
                    eprintln!("invalid session id `{s}` (want session=N, N >= 1)");
                    std::process::exit(1);
                }
            }
        } else {
            target = Some(arg.clone());
        }
    }
    let Some(target) = target else {
        eprintln!("usage: repl connect <HOST:PORT[,HOST:PORT...]> [session=N]");
        std::process::exit(1);
    };
    match session {
        Some(session) => connect_stamped(&target, session),
        None => connect_plain(&target),
    }
}

fn print_wire_stats(s: &chronicle::net::WireStats) {
    println!(
        "appends: {}  tuples: {}  wal: {} records / {} bytes  \
         checkpoints: {}",
        s.appends, s.tuples_appended, s.wal_records, s.wal_bytes, s.checkpoints
    );
    println!(
        "net: {} sessions, {} frames in, {} frames out, \
         {} requests (p50 {} ns, p99 {} ns), {} WAL bytes shipped",
        s.net_sessions,
        s.net_frames_in,
        s.net_frames_out,
        s.net_requests,
        s.net_latency_p50_nanos,
        s.net_latency_p99_nanos,
        s.net_shipped_bytes
    );
    if let (Some(applied), Some(lag)) = (s.follower_applied_lsn, s.replication_lag) {
        println!("follower: applied lsn {applied}, {lag} record(s) behind");
    }
}

/// The sessionless shell: one plain connection, no stamps, no retries.
fn connect_plain(addr: &str) {
    if addr.contains(',') {
        eprintln!(
            "multiple candidate addresses need a session: \
             `repl connect {addr} session=N`"
        );
        std::process::exit(1);
    }
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "connected to {addr} ({} shard(s)) — SQL statements, or .stats / .quit",
        client.shards()
    );
    while let Some(line) = read_line("remote> ") {
        match line.as_str() {
            "" => continue,
            ".quit" | ".exit" => break,
            ".session" => println!(
                "no session: reconnect with `repl connect {addr} session=N` \
                 for stamped statements that survive retries and failover"
            ),
            ".stats" => match client.stats() {
                Ok(s) => print_wire_stats(&s),
                Err(e) => println!("error: {e}"),
            },
            sql => match client.sql(sql) {
                Ok(outcome) => print_remote(outcome),
                Err(e) => println!("error: {e}"),
            },
        }
    }
    client.goodbye();
    println!("bye");
}

/// The stamped shell: every statement carries `(session, seq)`, retries
/// back off and rotate through the candidate addresses on timeout,
/// overload, or fencing, and a stamp the leader already applied is
/// answered from its dedupe cache instead of re-executing.
fn connect_stamped(target: &str, session: u64) {
    let addrs: Vec<&str> = target
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        eprintln!("usage: repl connect <HOST:PORT[,HOST:PORT...]> [session=N]");
        std::process::exit(1);
    }
    let mut client = RetryClient::new(&addrs, session, RetryPolicy::default());
    println!(
        "session {session} against {} — SQL statements, or .session / .stats / .quit",
        addrs.join(", ")
    );
    while let Some(line) = read_line("remote> ") {
        match line.as_str() {
            "" => continue,
            ".quit" | ".exit" => break,
            ".session" => println!(
                "session {}: next seq {}, {} retr{}, {} reconnect(s), \
                 last leader term seen {}",
                client.session(),
                client.seq() + 1,
                client.retries(),
                if client.retries() == 1 { "y" } else { "ies" },
                client.reconnects(),
                client.last_term()
            ),
            ".stats" => match client.stats() {
                Ok(s) => print_wire_stats(&s),
                Err(e) => println!("error: {e}"),
            },
            sql => match client.sql(sql) {
                Ok(outcome) => print_remote(outcome),
                Err(e) => println!("error: {e}"),
            },
        }
    }
    client.goodbye();
    println!("bye");
}
