//! Seeded deterministic-simulation runner (the `verify.sh` gate and the
//! seed-reproduction workflow).
//!
//! ```text
//! cargo run --release --example sim -- [--base N] [--seeds N]
//!     [--shards N] [--ops N] [--budget-ms N] [--bit-rot] [--replication]
//!     [--failover]
//! ```
//!
//! Runs `--seeds` schedules starting at seed `--base`, alternating the
//! single-database and sharded topologies, until done or the time budget
//! is spent. With `--bit-rot` every power cut also flips bits in durable
//! files and recovery runs under the `Salvage` policy (with a Strict
//! fails-loudly probe on a fork of each rotted disk). With `--replication`
//! each seed instead drives a leader/follower pair over the simulated
//! wire, with seeded connection cuts and power cuts on either side. With
//! `--failover` each seed kills the leader mid-stream and promotes the
//! follower under a fenced term while sessioned clients retry — asserting
//! every acked statement survives, nothing applies twice, and the final
//! state matches a never-crashed oracle. On a failure it prints the one
//! seed that reproduces the run and exits nonzero; re-running with
//! `--base <seed> --seeds 1` (plus the same `--shards`/`--ops`/mode flag)
//! replays it deterministically.

use std::process::ExitCode;
use std::time::Instant;

use chronicle::sim::{
    run_failover_seed, run_replication_seed, run_seed, run_seed_bit_rot, run_seed_bit_rot_sharded,
    run_seed_sharded, FailoverReport, ReplicationReport, SimReport,
};
use chronicle::simkit::ScheduleConfig;

fn main() -> ExitCode {
    let mut base: u64 = 0;
    let mut seeds: u64 = 16;
    let mut shards: usize = 2;
    let mut ops: usize = 120;
    let mut budget_ms: u64 = u64::MAX;
    let mut bit_rot = false;
    let mut replication = false;
    let mut failover = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--base" => base = take("--base").parse().expect("--base: u64"),
            "--seeds" => seeds = take("--seeds").parse().expect("--seeds: u64"),
            "--shards" => shards = take("--shards").parse().expect("--shards: usize"),
            "--ops" => ops = take("--ops").parse().expect("--ops: usize"),
            "--budget-ms" => budget_ms = take("--budget-ms").parse().expect("--budget-ms: u64"),
            "--bit-rot" => bit_rot = true,
            "--replication" => replication = true,
            "--failover" => failover = true,
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg = ScheduleConfig {
        ops,
        ..ScheduleConfig::default()
    };
    let start = Instant::now();

    if failover {
        let mut totals = FailoverReport::default();
        let mut ran = 0u64;
        for seed in base..base.saturating_add(seeds) {
            if start.elapsed().as_millis() as u64 >= budget_ms {
                break;
            }
            // Even seeds pair single-shard nodes, odd seeds sharded ones.
            let n = if shards == 0 || seed % 2 == 0 {
                1
            } else {
                shards
            };
            match run_failover_seed(seed, n, &cfg) {
                Ok(r) => {
                    ran += 1;
                    totals.stamped_acked += r.stamped_acked;
                    totals.promotions += r.promotions;
                    totals.fencing_probes += r.fencing_probes;
                    totals.dedupe_retries += r.dedupe_retries;
                    totals.partitions += r.partitions;
                    totals.heartbeat_duplicates += r.heartbeat_duplicates;
                    totals.connection_cuts += r.connection_cuts;
                    totals.follower_kills += r.follower_kills;
                    totals.pump_cycles += r.pump_cycles;
                    totals.bytes_shipped += r.bytes_shipped;
                    totals.bytes_lost_in_flight += r.bytes_lost_in_flight;
                }
                Err(f) => {
                    eprintln!("{f}");
                    eprintln!(
                        "reproduce: cargo run --release --example sim -- \
                         --base {} --seeds 1 --shards {shards} --ops {ops} --failover",
                        f.seed
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        println!(
            "failover sim ok: {ran} seeds ({} acked stamps, {} promotions, \
             {} fencing probes, {} dedupe retries, {} partitions, {} heartbeat dups, \
             {} cuts, {} follower kills, {} pump cycles, {} bytes shipped, \
             {} bytes lost in flight) in {:?}",
            totals.stamped_acked,
            totals.promotions,
            totals.fencing_probes,
            totals.dedupe_retries,
            totals.partitions,
            totals.heartbeat_duplicates,
            totals.connection_cuts,
            totals.follower_kills,
            totals.pump_cycles,
            totals.bytes_shipped,
            totals.bytes_lost_in_flight,
            start.elapsed()
        );
        return ExitCode::SUCCESS;
    }

    if replication {
        let mut totals = ReplicationReport::default();
        let mut ran = 0u64;
        for seed in base..base.saturating_add(seeds) {
            if start.elapsed().as_millis() as u64 >= budget_ms {
                break;
            }
            // Even seeds pair single-shard nodes, odd seeds sharded ones.
            let n = if shards == 0 || seed % 2 == 0 {
                1
            } else {
                shards
            };
            match run_replication_seed(seed, n, &cfg) {
                Ok(r) => {
                    ran += 1;
                    totals.sql_acked += r.sql_acked;
                    totals.pump_cycles += r.pump_cycles;
                    totals.connection_cuts += r.connection_cuts;
                    totals.follower_kills += r.follower_kills;
                    totals.leader_kills += r.leader_kills;
                    totals.bytes_shipped += r.bytes_shipped;
                    totals.bytes_lost_in_flight += r.bytes_lost_in_flight;
                }
                Err(f) => {
                    eprintln!("{f}");
                    eprintln!(
                        "reproduce: cargo run --release --example sim -- \
                         --base {} --seeds 1 --shards {shards} --ops {ops} --replication",
                        f.seed
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        println!(
            "replication sim ok: {ran} seeds ({} acked stmts, {} pump cycles, \
             {} cuts, {} follower kills, {} leader kills, {} bytes shipped, \
             {} bytes lost in flight) in {:?}",
            totals.sql_acked,
            totals.pump_cycles,
            totals.connection_cuts,
            totals.follower_kills,
            totals.leader_kills,
            totals.bytes_shipped,
            totals.bytes_lost_in_flight,
            start.elapsed()
        );
        return ExitCode::SUCCESS;
    }

    let mut totals = SimReport::default();
    let mut halted = 0u64;
    let mut ran = 0u64;
    for seed in base..base.saturating_add(seeds) {
        if start.elapsed().as_millis() as u64 >= budget_ms {
            break;
        }
        // Even seeds drive the single-database topology, odd seeds the
        // sharded one, so one sweep covers both recovery paths.
        let single = shards == 0 || seed % 2 == 0;
        let result = match (single, bit_rot) {
            (true, false) => run_seed(seed, &cfg),
            (false, false) => run_seed_sharded(seed, shards, &cfg),
            (true, true) => run_seed_bit_rot(seed, &cfg),
            (false, true) => run_seed_bit_rot_sharded(seed, shards, &cfg),
        };
        match result {
            Ok(r) => {
                ran += 1;
                totals.sql_acked += r.sql_acked;
                totals.crashes += r.crashes;
                totals.recoveries += r.recoveries;
                totals.checkpoints += r.checkpoints;
                totals.moves += r.moves;
                totals.bit_rot_flips += r.bit_rot_flips;
                totals.salvaged_opens += r.salvaged_opens;
                totals.acked_lost += r.acked_lost;
                halted += u64::from(r.halted_on_divergence);
            }
            Err(f) => {
                eprintln!("{f}");
                eprintln!(
                    "reproduce: cargo run --release --example sim -- \
                     --base {} --seeds 1 --shards {shards} --ops {ops}{}",
                    f.seed,
                    if bit_rot { " --bit-rot" } else { "" }
                );
                return ExitCode::FAILURE;
            }
        }
    }
    print!(
        "sim ok: {ran} seeds ({} acked stmts, {} crashes, {} recoveries, {} checkpoints, \
         {} group moves",
        totals.sql_acked, totals.crashes, totals.recoveries, totals.checkpoints, totals.moves,
    );
    if bit_rot {
        print!(
            ", {} bits flipped, {} salvaged opens, {} acked stmts confessed lost, \
             {halted} halted",
            totals.bit_rot_flips, totals.salvaged_opens, totals.acked_lost,
        );
    }
    println!(") in {:?}", start.elapsed());
    ExitCode::SUCCESS
}
