//! Seeded deterministic-simulation runner (the `verify.sh` gate and the
//! seed-reproduction workflow).
//!
//! ```text
//! cargo run --release --example sim -- [--base N] [--seeds N]
//!     [--shards N] [--ops N] [--budget-ms N]
//! ```
//!
//! Runs `--seeds` schedules starting at seed `--base`, alternating the
//! single-database and sharded topologies, until done or the time budget
//! is spent. On a failure it prints the one seed that reproduces the run
//! and exits nonzero; re-running with `--base <seed> --seeds 1` (plus the
//! same `--shards`/`--ops`) replays it deterministically.

use std::process::ExitCode;
use std::time::Instant;

use chronicle::sim::{run_seed, run_seed_sharded, SimReport};
use chronicle::simkit::ScheduleConfig;

fn main() -> ExitCode {
    let mut base: u64 = 0;
    let mut seeds: u64 = 16;
    let mut shards: usize = 2;
    let mut ops: usize = 120;
    let mut budget_ms: u64 = u64::MAX;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--base" => base = take("--base").parse().expect("--base: u64"),
            "--seeds" => seeds = take("--seeds").parse().expect("--seeds: u64"),
            "--shards" => shards = take("--shards").parse().expect("--shards: usize"),
            "--ops" => ops = take("--ops").parse().expect("--ops: usize"),
            "--budget-ms" => budget_ms = take("--budget-ms").parse().expect("--budget-ms: u64"),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg = ScheduleConfig {
        ops,
        ..ScheduleConfig::default()
    };
    let start = Instant::now();
    let mut totals = SimReport::default();
    let mut ran = 0u64;
    for seed in base..base.saturating_add(seeds) {
        if start.elapsed().as_millis() as u64 >= budget_ms {
            break;
        }
        // Even seeds drive the single-database topology, odd seeds the
        // sharded one, so one sweep covers both recovery paths.
        let result = if shards == 0 || seed % 2 == 0 {
            run_seed(seed, &cfg)
        } else {
            run_seed_sharded(seed, shards, &cfg)
        };
        match result {
            Ok(r) => {
                ran += 1;
                totals.sql_acked += r.sql_acked;
                totals.crashes += r.crashes;
                totals.recoveries += r.recoveries;
                totals.checkpoints += r.checkpoints;
                totals.halted_on_divergence |= r.halted_on_divergence;
            }
            Err(f) => {
                eprintln!("{f}");
                eprintln!(
                    "reproduce: cargo run --release --example sim -- \
                     --base {} --seeds 1 --shards {shards} --ops {ops}",
                    f.seed
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "sim ok: {ran} seeds ({} acked stmts, {} crashes, {} recoveries, {} checkpoints) in {:?}",
        totals.sql_acked,
        totals.crashes,
        totals.recoveries,
        totals.checkpoints,
        start.elapsed()
    );
    ExitCode::SUCCESS
}
