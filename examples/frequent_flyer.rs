//! The frequent-flyer program of Examples 2.1 and 2.2.
//!
//! Run with `cargo run --example frequent_flyer`.
//!
//! * one chronicle of mileage transactions,
//! * a customers relation (account, name, address state),
//! * persistent views for mileage balance and miles flown,
//! * the New-Jersey bonus: *"each customer living in New Jersey gets a
//!   bonus of 500 miles on each flight"* — with the implicit temporal join:
//!   a flight qualifies only if it was made **during** the period of NJ
//!   residence, which the proactive-update rule delivers automatically,
//! * premier status (bronze/silver/gold) derived from miles via a tier
//!   schedule (§5.3).

use chronicle::prelude::*;
use chronicle::views::{Tier, TierSchedule};

fn main() -> Result<(), ChronicleError> {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE flights (sn SEQ, acct INT, miles INT)")?;
    db.execute(
        "CREATE RELATION customers (acct INT, name STRING, state STRING, PRIMARY KEY (acct))",
    )?;
    db.execute("INSERT INTO customers VALUES (1, 'alice', 'NJ'), (2, 'bob', 'CA')")?;

    // Example 2.1's three persistent views (premier status handled below).
    db.execute(
        "CREATE VIEW mileage_balance AS SELECT acct, SUM(miles) AS balance FROM flights GROUP BY acct",
    )?;
    db.execute(
        "CREATE VIEW miles_flown AS SELECT acct, SUM(miles) AS flown, COUNT(*) AS segments \
         FROM flights GROUP BY acct",
    )?;
    // Example 2.2's NJ bonus: 500 bonus miles per flight flown while the
    // customer lives in NJ. COUNT(*) over the temporal join gives the
    // number of qualifying flights.
    db.execute(
        "CREATE VIEW nj_bonus AS SELECT acct, COUNT(*) AS qualifying FROM flights \
         JOIN customers ON acct = acct WHERE state = 'NJ' GROUP BY acct",
    )?;

    // Alice flies twice while living in NJ.
    db.execute("APPEND INTO flights AT 10 VALUES (1, 1200)")?;
    db.execute("APPEND INTO flights AT 20 VALUES (1, 800)")?;
    // Bob flies once from CA (never qualifies).
    db.execute("APPEND INTO flights AT 25 VALUES (2, 3000)")?;

    // Alice moves to California. The update is *proactive*: it only
    // affects flights with later sequence numbers (§2.3). Her two earlier
    // flights keep their bonus.
    db.execute("UPDATE customers SET state = 'CA' WHERE acct = 1")?;
    db.execute("APPEND INTO flights AT 30 VALUES (1, 2500)")?;

    let bonus_miles = |db: &ChronicleDb, acct: i64| -> Result<i64, ChronicleError> {
        Ok(db
            .query_view_key("nj_bonus", &[Value::Int(acct)])?
            .and_then(|row| row.get(1).as_int())
            .unwrap_or(0)
            * 500)
    };

    println!("alice NJ bonus miles: {}", bonus_miles(&db, 1)?);
    println!("bob   NJ bonus miles: {}", bonus_miles(&db, 2)?);
    assert_eq!(bonus_miles(&db, 1)?, 1000, "two qualifying flights");
    assert_eq!(bonus_miles(&db, 2)?, 0);

    // Premier status: a §5.3 tier schedule over total miles. The incremental
    // mapping keeps status current after every flight — no month-end batch.
    let mut status = TierSchedule::new(vec![
        Tier {
            threshold: 0.0,
            rate: 0.0,
        }, // base
        Tier {
            threshold: 2_000.0,
            rate: 0.0,
        }, // bronze
        Tier {
            threshold: 4_000.0,
            rate: 0.0,
        }, // silver
        Tier {
            threshold: 10_000.0,
            rate: 0.0,
        }, // gold
    ])?;
    let names = ["member", "bronze", "silver", "gold"];
    for acct in [1i64, 2] {
        let balance = db
            .query_view_key("mileage_balance", &[Value::Int(acct)])?
            .and_then(|r| r.get(1).as_int())
            .unwrap_or(0);
        let st = status.apply(&[Value::Int(acct)], balance as f64);
        println!(
            "acct {acct}: balance {} (+{} bonus) -> {}",
            balance,
            bonus_miles(&db, acct)?,
            names[st.tier]
        );
    }

    // The whole history lives only in the views: the chronicle stored
    // nothing.
    let id = db.catalog().chronicle_id("flights")?;
    assert_eq!(db.catalog().chronicle(id).stored_len(), 0);
    println!("\nchronicle storage used: 0 tuples — the views carry the summary");
    Ok(())
}
