//! Stock trading with moving windows — §5.1's worked example.
//!
//! Run with `cargo run --example stock_window`.
//!
//! *"consider a periodic view for every day that computes the total number
//! of shares of a stock sold during the 30 days preceding that day ... we
//! should keep the total number of shares sold for each of the last 30
//! days separately, and derive the view as the sum of these 30 numbers."*
//!
//! This example runs the cyclic-buffer [`SlidingWindow`] next to the
//! general periodic-view family over the same sliding calendar and checks
//! they agree, then shows the cost difference.

use chronicle::algebra::{AggFunc, AggSpec, CaExpr, ScaExpr};
use chronicle::prelude::*;
use chronicle::views::SlidingWindow;
use chronicle::workload::TradeGen;

const DAY: i64 = 1; // one tick = one day for readability

fn main() -> Result<(), ChronicleError> {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE trades (sn SEQ, symbol STRING, shares INT, price FLOAT)")?;
    db.execute(
        "CREATE VIEW lifetime_volume AS SELECT symbol, SUM(shares) AS shares FROM trades GROUP BY symbol",
    )?;

    // The general mechanism: one view per overlapping 30-day window,
    // stepping daily.
    let trades_id = db.catalog().chronicle_id("trades")?;
    let window_expr = ScaExpr::group_agg(
        CaExpr::chronicle(db.catalog().chronicle(trades_id)),
        &["symbol"],
        vec![AggSpec::new(AggFunc::Sum(2), "shares")],
    )?;
    db.create_periodic_view(
        "window30",
        window_expr,
        Calendar::sliding(Chronon(0), 30 * DAY, DAY)?,
        Some(0), // windows expire the moment they close
    )?;

    // The specialized mechanism: the cyclic buffer of 30 daily sub-sums.
    let mut cyclic = SlidingWindow::new(Chronon(0), 30, DAY, vec![0], vec![AggFunc::Sum(1)])?;

    // 120 days of trading, a handful of trades per day.
    let mut gen = TradeGen::new(42);
    let mut day = 0i64;
    for i in 0..600usize {
        day = (i / 5) as i64;
        let row = gen.next_row();
        cyclic.insert(
            Chronon(day),
            &Tuple::new(vec![row[0].clone(), row[1].clone()]),
        )?;
        db.append("trades", Chronon(day), &[row])?;
    }

    // Compare today's 30-day totals, both mechanisms, for every symbol.
    let window30 = db.periodic_view("window30")?;
    // The window *ending* today started 29 days ago; its calendar index is
    // its start day.
    let window_idx = (day - 29).max(0) as u64;
    println!("symbol | cyclic 30-day shares | periodic-view shares");
    let mut checked = 0;
    for sym in ["T", "IBM", "GE", "XON", "MO", "DD", "KO", "PG"] {
        let key = [Value::str(sym)];
        let cyc = cyclic.query(&key, Chronon(day))?[0].clone();
        let per = window30
            .query(window_idx, &key)
            .map(|r| r.get(1).clone())
            .unwrap_or(Value::Null);
        println!("{sym:6} | {cyc:>20} | {per:>20}");
        assert_eq!(cyc, per, "mechanisms must agree for {sym}");
        checked += 1;
    }
    println!("\n{checked} symbols verified: cyclic buffer == periodic views");

    // Cost comparison: the cyclic buffer did one bucket update per trade;
    // the periodic family maintained up to 30 window views per trade.
    let (live, closed, expired) = window30.counts();
    println!(
        "periodic family: {live} live windows, {closed} closed, {expired} expired; \
         cyclic buffer: {} accumulator updates total ({}/trade)",
        cyclic.updates(),
        cyclic.updates() / 600
    );

    // Lifetime volume still flows from the ordinary persistent view.
    let rows = db.query_view("lifetime_volume")?;
    let total: i64 = rows.iter().filter_map(|r| r.get(1).as_int()).sum();
    println!("total shares traded (lifetime view): {total}");
    Ok(())
}
