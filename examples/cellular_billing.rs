//! Cellular billing — the paper's §1 motivating application.
//!
//! Run with `cargo run --example cellular_billing`.
//!
//! * *"a summary query that computes the total number of minutes of calls
//!   made in the current billing month from a phone number. This query
//!   could be executed whenever a cellular phone is turned on"* — a
//!   periodic persistent view over a monthly calendar (§5.1),
//! * *"the total number of minutes of calls made from a given cellular
//!   number since the number was assigned"* — an ordinary persistent view,
//! * the tiered discount plan of §5.3, maintained incrementally.

use chronicle::prelude::*;
use chronicle::views::TierSchedule;
use chronicle::workload::CallGen;

const DAY: i64 = 86_400;
const MONTH: i64 = 30 * DAY;

fn main() -> Result<(), ChronicleError> {
    let mut db = ChronicleDb::new();
    db.execute(
        "CREATE CHRONICLE calls (sn SEQ, caller INT, callee INT, minutes FLOAT, cost FLOAT)",
    )?;

    // Lifetime totals (since the number was assigned).
    db.execute(
        "CREATE VIEW lifetime AS SELECT caller, SUM(minutes) AS minutes, COUNT(*) AS calls \
         FROM calls GROUP BY caller",
    )?;
    // Current-billing-month totals: a periodic view family over a monthly
    // calendar; closed months are kept two months for statements, then
    // expire (space reuse for an infinite calendar).
    db.execute(&format!(
        "CREATE PERIODIC VIEW monthly AS SELECT caller, SUM(minutes) AS minutes, SUM(cost) AS cost \
         FROM calls GROUP BY caller OVER CALENDAR EVERY {MONTH} EXPIRE AFTER {}",
        2 * MONTH
    ))?;

    // Simulate three months of traffic for 50 subscribers.
    let mut gen = CallGen::new(7, 50);
    let mut discount = TierSchedule::us_telephone_1995();
    let mut t = 0i64;
    let month_of = |t: i64| (t / MONTH) as u64;
    let mut current_month = 0u64;
    for i in 0..3_000usize {
        t += (i as i64 % 97) * 60 + 30; // irregular call arrival
        if month_of(t) != current_month {
            // Month rolled over: close the discount period.
            let finals = discount.close_period();
            let discounted: usize = finals.values().filter(|s| s.tier > 0).count();
            println!(
                "month {current_month} closed: {} active subscribers, {discounted} earned a discount",
                finals.len()
            );
            current_month = month_of(t);
        }
        let row = gen.next_row();
        let caller = row[0].clone();
        let cost = row[3].as_float().expect("cost");
        db.append("calls", Chronon(t), &[row])?;
        discount.apply(&[caller], cost);
    }

    // "Phone turned on": show this month's minutes for subscriber 7 —
    // a point lookup against the active periodic view.
    let monthly = db.periodic_view("monthly")?;
    let this_month = month_of(t);
    let on_screen = monthly
        .query(this_month, &[Value::Int(7)])
        .map(|row| row.get(1).as_float().unwrap_or(0.0))
        .unwrap_or(0.0);
    println!("\nsubscriber 7, minutes this month: {on_screen:.1}");

    // Customer-care agent: lifetime minutes.
    if let Some(row) = db.query_view_key("lifetime", &[Value::Int(7)])? {
        println!(
            "subscriber 7, lifetime: {:.1} minutes over {} calls",
            row.get(1).as_float().unwrap_or(0.0),
            row.get(2)
        );
    }

    // Mid-month discount state is always current (no batch job needed).
    let st = discount.get(&[Value::Int(7)]);
    println!(
        "subscriber 7, running bill: ${:.2} gross, tier {} -> ${:.2} after discount",
        st.total, st.tier, st.discounted
    );

    let (live, closed, expired) = monthly.counts();
    println!("\nperiodic views: {live} live, {closed} closed, {expired} expired (space reused)");
    Ok(())
}
