//! Composite-event detection over a transaction chronicle — the §6
//! "active databases" incarnation of the chronicle model.
//!
//! Run with `cargo run --example fraud_events`.
//!
//! The event algebra (a variant of regular expressions) is just another
//! view-definition language L: its persistent view is the per-key NFA
//! state set, maintained history-lessly — O(pattern states) per event, no
//! event log kept. Here a bank watches two patterns per account while the
//! balances view is maintained from the same appends:
//!
//! * `withdrawal{3}` — three withdrawals in a row,
//! * `login ; .* ; large_transfer` — a transfer any time after a login.

use chronicle::prelude::*;
use chronicle::views::{EventMatcher, Pattern};
use chronicle::workload::AtmGen;

fn main() -> Result<(), ChronicleError> {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT, kind STRING)")?;
    db.execute(
        "CREATE VIEW balances AS SELECT acct, SUM(amount) AS balance FROM atm GROUP BY acct",
    )?;

    let mut burst = EventMatcher::new(&Pattern::repeat("withdrawal", 3))?;
    let mut laundering = EventMatcher::new(&Pattern::then_eventually(
        Pattern::Event("deposit".into()),
        Pattern::Event("withdrawal".into()),
    ))?;
    println!(
        "patterns compiled: burst={} NFA states, laundering={} states (per-key space bound)\n",
        burst.state_bound(),
        laundering.state_bound()
    );

    let mut gen = AtmGen::new(99, 6);
    let mut burst_alerts = 0u64;
    for i in 0..400usize {
        let row = gen.next_row();
        let acct = row[0].clone();
        let kind = row[2].as_str().expect("kind").to_string();
        db.append("atm", Chronon(i as i64), &[row])?;
        if burst.on_event(std::slice::from_ref(&acct), &kind) {
            burst_alerts += 1;
            if burst_alerts <= 5 {
                let balance = db
                    .query_view_key("balances", std::slice::from_ref(&acct))?
                    .and_then(|r| r.get(1).as_float())
                    .unwrap_or(0.0);
                println!(
                    "ALERT txn #{i}: acct {acct} made 3 withdrawals in a row (balance now ${balance:.2})"
                );
            }
        }
        laundering.on_event(&[acct], &kind);
    }

    println!("\ntotal burst alerts: {burst_alerts}");
    for acct in 0..6i64 {
        println!(
            "acct {acct}: {:>3} burst matches, {:>3} deposit→withdrawal matches",
            burst.match_count(&[Value::Int(acct)]),
            laundering.match_count(&[Value::Int(acct)])
        );
    }
    println!(
        "\n{} events processed; no event history stored anywhere — only NFA state sets",
        burst.events_processed()
    );
    Ok(())
}
