//! Consumer banking — the Chemical Bank scenario of §1.
//!
//! Run with `cargo run --example banking_atm`.
//!
//! The paper cites the February 18, 1994 Chemical Bank incident, where
//! hand-written balance-update code double-charged ATM withdrawals. Here
//! `dollar_balance` is a *declared* persistent view: the maintenance logic
//! is derived from the definition, so the class of bug is structurally
//! impossible. The example also demonstrates:
//!
//! * the concurrent append pipeline (many ATMs, one maintainer),
//! * a deliberately buggy procedural updater side-by-side (the status quo),
//! * the ATM precondition: *"a summary field (dollar_balance) be updated as
//!   the transaction is executed, since the summary query needs to be made
//!   before the next ATM withdrawal"*.

use chronicle::db::baseline::ProceduralSummary;
use chronicle::db::pipeline::Pipeline;
use chronicle::prelude::*;
use chronicle::workload::AtmGen;

fn main() -> Result<(), ChronicleError> {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT, kind STRING)")?;
    db.execute(
        "CREATE VIEW balances AS SELECT acct, SUM(amount) AS dollar_balance, COUNT(*) AS txns \
         FROM atm GROUP BY acct",
    )?;

    // The status-quo comparator: hand-written updating code with the
    // classic double-post bug (withdrawals applied twice).
    let mut buggy = ProceduralSummary::new(vec![1], |old, t| {
        let amount = t.get(2).as_float().unwrap_or(0.0);
        if amount < 0.0 {
            old + 2.0 * amount // the Chemical Bank bug
        } else {
            old + amount
        }
    });

    // Four ATMs post transactions concurrently through the pipeline.
    let pipeline = Pipeline::start(db, 256);
    let mut handles = Vec::new();
    let (tx, rx) = std::sync::mpsc::channel::<Tuple>();
    for atm_id in 0..4u64 {
        let h = pipeline.handle();
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut gen = AtmGen::new(atm_id, 8);
            for _ in 0..250usize {
                let row = gen.next_row();
                // Wall-clock ties across concurrent ATMs are fine: the
                // group's chronon only needs to be non-decreasing.
                let out = h
                    .append("atm", Chronon(0), vec![row.clone()])
                    .expect("pipeline append");
                // Ship the same record to the buggy procedural code path.
                let mut values = vec![Value::Seq(out.seq)];
                values.extend(row);
                tx.send(Tuple::new(values)).expect("collector alive");
            }
        }));
    }
    drop(tx);
    for t in rx {
        buggy.on_tuple(&t);
    }
    for h in handles {
        h.join().expect("atm thread");
    }
    let db = pipeline.shutdown();

    // Compare balances.
    println!("acct | chronicle view | buggy procedural code | diff");
    let mut worst = 0.0f64;
    for acct in 0..8i64 {
        let key = [Value::Int(acct)];
        let correct = db
            .query_view_key("balances", &key)?
            .and_then(|r| r.get(1).as_float())
            .unwrap_or(0.0);
        let bugged = buggy.get(&key);
        let diff = (correct - bugged).abs();
        worst = worst.max(diff);
        println!("{acct:4} | {correct:14.2} | {bugged:21.2} | {diff:8.2}");
    }
    println!("\nworst divergence caused by the hand-written updater: ${worst:.2}");
    assert!(worst > 0.0, "the buggy updater diverges");

    // The ATM precondition: the balance is queryable immediately after the
    // transaction, at point-lookup cost.
    let p99 = db.stats().latency_percentile(0.99);
    println!(
        "appends: {}, p99 maintenance latency: {p99} ns — balances are current before the next withdrawal",
        db.stats().appends
    );
    Ok(())
}
