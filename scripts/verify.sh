#!/usr/bin/env bash
# Tier-1 verify gate for the chronicle workspace.
#
# The workspace is hermetic (zero external dependencies — see README
# "Build"), so everything here runs with --offline against an empty
# registry. Any new external dependency breaks this script by design.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== examples (offline) =="
cargo build --offline --examples

echo "== benches compile (offline) =="
cargo bench --offline --no-run 2>/dev/null || cargo build --offline -p chronicle-bench --benches

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== crash-recovery gate (offline) =="
# The durability suites: exact-prefix recovery at every torn-write cut
# point, plus the restart/checkpoint round trips.
cargo test -q --offline --test restart
cargo test -q --offline --test failure_injection

echo "== deterministic simulation gate (offline) =="
# Seeded crash/fault schedules against the durable engine over the
# in-memory fault-injecting filesystem (DESIGN.md §11), alternating
# single and sharded topologies. On failure the runner prints the single
# u64 seed (and the exact command) that replays the run byte-for-byte.
cargo run -q --offline --release --example sim -- \
    --base 0 --seeds 300 --ops 120 --budget-ms 90000
cargo run -q --offline --release --example sim -- \
    --base 5000 --seeds 100 --shards 3 --ops 240 --budget-ms 60000
# Placement sweep: wider sharded schedules so MOVE GROUP pseudo-statements
# (heavy-light relocations, DESIGN.md §16) land between crashes — every
# recovery must reproduce WAL-logged placement, adopt interrupted moves
# that rolled forward, and leave each group owned by exactly one shard.
cargo run -q --offline --release --example sim -- \
    --base 30000 --seeds 100 --shards 4 --ops 180 --budget-ms 60000

echo "== bit-rot salvage gate (offline) =="
# The same schedules with seeded bit rot injected at every power cut and
# recovery running under RecoveryPolicy::Salvage (DESIGN.md §12): every
# open must land on a prefix of the acknowledged history with the dropped
# suffix exactly enumerated by the salvage report, quarantined files
# preserved, and Strict probes refusing the same damage loudly.
cargo run -q --offline --release --example sim -- \
    --bit-rot --base 10000 --seeds 300 --ops 120 --budget-ms 90000
cargo run -q --offline --release --example sim -- \
    --bit-rot --base 20000 --seeds 100 --shards 3 --ops 180 --budget-ms 60000

echo "== salvage mutation checks (offline) =="
# Prove the gate has teeth: sabotage the salvage path through the
# test-only CHRONICLE_MUTATE backdoor and require the sweep to FAIL.
# `no_quarantine` deletes untrusted files instead of preserving them;
# `drop_salvage_report` blanks the loss accounting. Either escaping the
# sweep means the harness stopped checking what it claims to check.
if CHRONICLE_MUTATE=no_quarantine cargo run -q --offline --release --example sim -- \
    --bit-rot --base 10000 --seeds 50 --ops 120 --budget-ms 60000 >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: no_quarantine was not caught by the bit-rot sweep"
    exit 1
fi
if CHRONICLE_MUTATE=drop_salvage_report cargo run -q --offline --release --example sim -- \
    --bit-rot --base 10000 --seeds 50 --ops 120 --budget-ms 60000 >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: drop_salvage_report was not caught by the bit-rot sweep"
    exit 1
fi

echo "== z-set consolidation mutation check (offline) =="
# Prove the differential oracle suite has teeth: sabotage zero-weight
# elimination through the test-only CHRONICLE_MUTATE backdoor
# (`skip_consolidation` keeps fully-retracted rows/groups visible) and
# require the suite to FAIL — the deterministic +1/−1 residue pin
# guarantees the catch at a fixed seed.
if CHRONICLE_MUTATE=skip_consolidation cargo test -q --offline --test oracle_equivalence >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: skip_consolidation was not caught by the oracle suite"
    exit 1
fi

echo "== batch-vs-tuple differential gate (offline) =="
# The vectorized columnar kernels against the per-tuple interpreter:
# byte-identical view snapshots and durable artifacts, bit-identical
# work counters, on single and sharded engines.
cargo test -q --offline --test oracle_equivalence vectorized

echo "== vectorized-kernel mutation check (offline) =="
# Prove the batch oracle suite has teeth: force every view onto the
# scalar interpreter through the test-only CHRONICLE_MUTATE backdoor
# (`scalar_fallback` — results stay identical by design, so the
# observable is the vectorized-execution counter) and require the gate
# test to FAIL.
if CHRONICLE_MUTATE=scalar_fallback cargo test -q --offline --test oracle_equivalence \
    vectorized_path_is_exercised >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: scalar_fallback was not caught by the batch oracle suite"
    exit 1
fi

echo "== replication gate (offline) =="
# Leader/follower pairs over the simulated wire (DESIGN.md §14): seeded
# connection cuts and power cuts on either side, mid-segment. The
# follower must stay a legal prefix of the leader's acked statements at
# every kill and converge byte-for-byte once the faults stop; the one
# reproducing u64 seed is printed on failure. 400 seeds across the
# single-shard and sharded topologies.
cargo run -q --offline --release --example sim -- \
    --replication --base 0 --seeds 300 --shards 2 --ops 120 --budget-ms 90000
cargo run -q --offline --release --example sim -- \
    --replication --base 1000 --seeds 100 --shards 4 --ops 120 --budget-ms 60000
# End-to-end over real sockets, at the default and a wider shard count.
cargo test -q --offline -p chronicle-net
SHARDS=4 cargo test -q --offline -p chronicle-net --test replication

echo "== failover gate (offline) =="
# Leader failover under seeded chaos (DESIGN.md §17): sessioned clients
# issue stamped statements while the wire suffers partitions, heartbeat
# retransmits, connection cuts, and follower power cuts; the leader is
# killed mid-stream and the follower promoted under a fenced term while
# every client retries. Each seed asserts every acked statement survives
# promotion, no stamp applies twice, stale-term streams get the typed
# fencing error, and the final state matches a never-crashed oracle
# byte-for-byte. 400 seeds across single-shard and sharded topologies.
cargo run -q --offline --release --example sim -- \
    --failover --base 0 --seeds 300 --shards 2 --ops 120 --budget-ms 90000
cargo run -q --offline --release --example sim -- \
    --failover --base 1000 --seeds 100 --shards 4 --ops 120 --budget-ms 60000

echo "== failover mutation checks (offline) =="
# Prove the failover gate has teeth. `skip_fencing` lets a deposed term's
# stream past the term check — the post-promotion fencing probe must
# fail. `skip_session_dedupe` bypasses the session dedupe table so a
# retried stamp re-executes — the retry's state-unchanged assertion must
# fail. Both are caught deterministically from seed 0.
if CHRONICLE_MUTATE=skip_fencing cargo run -q --offline --release --example sim -- \
    --failover --base 0 --seeds 25 --shards 2 --ops 120 --budget-ms 60000 >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: skip_fencing was not caught by the failover sweep"
    exit 1
fi
if CHRONICLE_MUTATE=skip_session_dedupe cargo run -q --offline --release --example sim -- \
    --failover --base 0 --seeds 25 --shards 2 --ops 120 --budget-ms 60000 >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: skip_session_dedupe was not caught by the failover sweep"
    exit 1
fi

echo "== failover bench gate (offline) =="
# E19 at scale 0: promotion must complete, the post-failover retry storm
# must be answered entirely from the dedupe cache with zero state change,
# and the stale-term probe must be fenced after every promotion.
cargo test -q --offline -p chronicle-bench --lib e19

echo "== wire-codec mutation check (offline) =="
# Prove the codec tests have teeth: disable frame CRC verification
# through the test-only CHRONICLE_MUTATE backdoor and require the
# net suite to FAIL — the exhaustive single-bit-flip test guarantees
# the catch deterministically.
if CHRONICLE_MUTATE=skip_frame_crc cargo test -q --offline -p chronicle-net --lib >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: skip_frame_crc was not caught by the wire-codec tests"
    exit 1
fi

echo "== skew-resilient placement gate (offline) =="
# E18 on deterministic work counters: Zipf(1.1) traffic over an
# adversarially hashed group set, one online heavy-light rebalance must
# cut the critical-path maintenance work >=3x versus static FNV placement
# while total work stays bit-identical and view snapshots byte-equal.
cargo test -q --offline -p chronicle-bench --test e18_gate

echo "== static-placement mutation check (offline) =="
# Prove the skew gate has teeth: disable the heavy-light classifier
# through the test-only CHRONICLE_MUTATE backdoor (`static_placement`
# makes every rebalance plan empty) and require the E18 gate to FAIL —
# with no relocations the adversarial skew stays on one shard and the
# >=3x assertion cannot hold.
if CHRONICLE_MUTATE=static_placement cargo test -q --offline -p chronicle-bench \
    --test e18_gate >/dev/null 2>&1; then
    echo "MUTATION ESCAPED: static_placement was not caught by the E18 skew gate"
    exit 1
fi

echo "== sharded maintenance gate (offline) =="
# The concurrent-shard property tests: sharded view states must be
# byte-identical to the single-threaded reference at SHARDS=4, for
# append-only chronicle workloads and mixed relation-DML schedules alike.
SHARDS=4 cargo test -q --offline --test maintenance_independence
SHARDS=4 cargo test -q --offline --test oracle_equivalence
# End-to-end reopen through the repl: write a durable database in one
# process, abandon it without a clean shutdown, and query the recovered
# view from a second process.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --offline --example repl -- "$tmp/db" <<'EOF' >/dev/null
CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)
CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller
APPEND INTO calls VALUES (7, 2.5)
APPEND INTO calls VALUES (7, 2.5)
EOF
cargo run -q --offline --example repl -- "$tmp/db" <<'EOF' | grep -q "(1 row(s))"
SELECT * FROM totals
EOF

echo "verify: OK"
