#!/usr/bin/env bash
# Tier-1 verify gate for the chronicle workspace.
#
# The workspace is hermetic (zero external dependencies — see README
# "Build"), so everything here runs with --offline against an empty
# registry. Any new external dependency breaks this script by design.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== examples (offline) =="
cargo build --offline --examples

echo "== benches compile (offline) =="
cargo bench --offline --no-run 2>/dev/null || cargo build --offline -p chronicle-bench --benches

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "verify: OK"
